#!/usr/bin/env python3
"""Quickstart: simulate the CPlant baseline scheduler on a synthetic trace.

Generates a 5%-scale calibrated CPlant/Ross workload, runs the paper's
baseline policy (no-guarantee backfilling + fairshare priority + 24 h
starvation queue), and prints the user, system, and fairness metrics.

Run:  python examples/quickstart.py
"""

from repro import GeneratorConfig, generate_cplant_workload, run_policy


def main() -> None:
    # a ~660-job slice of the trace; same offered-load profile as the paper
    workload = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=42)
    print(workload.describe())
    print()

    run = run_policy(workload, "cplant24.nomax.all")

    s, f = run.summary, run.fairness
    print("baseline CPlant scheduler (cplant24.nomax.all)")
    print(f"  average wait time      : {s.avg_wait:>12,.0f} s")
    print(f"  average turnaround     : {s.avg_turnaround:>12,.0f} s   (Eq. 1)")
    print(f"  average slowdown       : {s.avg_slowdown:>12,.1f}")
    print(f"  utilization            : {100 * s.utilization:>11.1f} %   (Eq. 2)")
    print(f"  loss of capacity       : {100 * run.loss_of_capacity:>11.2f} %   (Eq. 4)")
    print()
    print("fairness (hybrid fairshare fair-start-time metric, Section 4.1)")
    print(f"  jobs missing their FST : {100 * f.percent_unfair:>11.2f} %")
    print(f"  average miss time      : {f.average_miss_time:>12,.0f} s   (Eq. 5)")
    print(f"  avg miss of unfair jobs: {f.average_miss_of_unfair:>12,.0f} s")


if __name__ == "__main__":
    main()
