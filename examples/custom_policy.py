#!/usr/bin/env python3
"""Writing a custom scheduling policy against the public API.

Implements a widest-job-first EASY backfilling scheduler — wide jobs are
the ones the paper shows being treated unfairly, so give them the head
reservation outright — and evaluates it with the same metrics as the
paper's policies (hybrid FST fairness, turnaround, loss of capacity).

This demonstrates the extension points a downstream user gets:

* subclass :class:`repro.BaseScheduler` (or any concrete scheduler),
* plug in an ordering policy,
* attach the standard observers and compare with the registry policies.

Run:  python examples/custom_policy.py
"""

from repro import (
    Cluster,
    Engine,
    GeneratorConfig,
    HybridFSTObserver,
    LossOfCapacityObserver,
    fairness_stats,
    generate_cplant_workload,
    run_policy,
    summarize,
)
from repro.metrics.loc import loc_of
from repro.sched.easy import EasyBackfillScheduler
from repro.sched.queues import widest_first_order


class WidestFirstEasyScheduler(EasyBackfillScheduler):
    """EASY backfilling where the queue is ordered widest-job-first
    (submit time breaks ties), so the head reservation always protects the
    hardest-to-place job."""

    def __init__(self, **kw) -> None:
        super().__init__(priority="fcfs", **kw)
        self.ordering = widest_first_order
        self.name = "easy.widest-first"


def evaluate_custom(workload):
    scheduler = WidestFirstEasyScheduler()
    fst_obs = HybridFSTObserver()
    loc_obs = LossOfCapacityObserver()
    engine = Engine(
        Cluster(workload.system_size),
        scheduler,
        workload.jobs,
        observers=[fst_obs, loc_obs],
    )
    result = engine.run()
    return (
        summarize(result),
        fairness_stats(result.jobs, result.fst("hybrid")),
        loc_of(result),
    )


def main() -> None:
    workload = generate_cplant_workload(GeneratorConfig(scale=0.08), seed=21)
    print(workload.describe())
    print()

    summary, fairness, loc = evaluate_custom(workload)
    baseline = run_policy(workload, "cplant24.nomax.all")

    header = f"{'policy':<24}{'%unfair':>9}{'avg miss':>12}{'avg TAT':>12}{'LOC%':>8}"
    print(header)
    print(
        f"{'easy.widest-first':<24}{100 * fairness.percent_unfair:>8.2f}%"
        f"{fairness.average_miss_time:>12,.0f}{summary.avg_turnaround:>12,.0f}"
        f"{100 * loc:>7.2f}%"
    )
    print(
        f"{'cplant24.nomax.all':<24}{100 * baseline.percent_unfair:>8.2f}%"
        f"{baseline.average_miss_time:>12,.0f}"
        f"{baseline.summary.avg_turnaround:>12,.0f}"
        f"{100 * baseline.loss_of_capacity:>7.2f}%"
    )
    print()
    print("widest-first protects wide jobs aggressively; watch what it does")
    print("to the turnaround of everyone else relative to the baseline.")


if __name__ == "__main__":
    main()
