#!/usr/bin/env python3
"""The CPlant compute process allocator (CPA) in action.

The paper's abstract: "A separate compute process allocator (CPA) ensures
that the jobs on the machines are not too fragmented in order to maximize
throughput."  This example runs the baseline scheduling policy on a
placement-aware cluster under four allocation strategies and reports how
compact the resulting allocations are — the CPA's whole purpose.

Run:  python examples/cpa_allocation.py
"""

from repro import GeneratorConfig, generate_cplant_workload
from repro.alloc import (
    BestFitAllocator,
    FirstFitAllocator,
    PlacedCluster,
    RandomAllocator,
    SpanMinimizingAllocator,
    placement_stats,
)
from repro.core.engine import Engine, KillPolicy
from repro.sched.noguarantee import NoGuaranteeScheduler


def main() -> None:
    workload = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=3)
    print(workload.describe())
    print()

    strategies = [
        FirstFitAllocator(),
        BestFitAllocator(),
        SpanMinimizingAllocator(),
        RandomAllocator(seed=1),
    ]

    print(f"{'strategy':<12}{'mean span':>11}{'p95 span':>10}"
          f"{'%contiguous':>13}{'work-weighted':>15}")
    for strategy in strategies:
        cluster = PlacedCluster(workload.system_size, strategy)
        Engine(cluster, NoGuaranteeScheduler(), workload.jobs,
               kill_policy=KillPolicy.IF_NEEDED).run()
        st = placement_stats(cluster.placements)
        print(f"{strategy.name:<12}{st.mean_span_ratio:>11.2f}"
              f"{st.p95_span_ratio:>10.2f}"
              f"{100 * st.contiguous_fraction:>12.1f}%"
              f"{st.work_weighted_span_ratio:>15.2f}")

    print()
    print("span ratio 1.0 = every allocation contiguous on the 1D node")
    print("ordering; higher = fragmented jobs suffering cross-traffic.")
    print("The scheduling metrics of the paper are placement-independent,")
    print("which is why its simulator (and ours) defaults to counting only.")


if __name__ == "__main__":
    main()
