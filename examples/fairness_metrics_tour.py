#!/usr/bin/env python3
"""A tour of the four fairness metrics from Section 4.

Runs one scheduler on one small workload and evaluates it under:

1. the CONS_P fair-start times (Srinivasan et al.),
2. the Sabin/Sadayappan no-later-arrival FSTs (actual policy re-simulated),
3. the resource-equality deficits (share-based, scheduler-independent),
4. the paper's hybrid fairshare FST (this paper's contribution),

showing how the verdicts differ on the same schedule — the motivation for
Section 4.1.

Run:  python examples/fairness_metrics_tour.py
"""

import numpy as np

from repro import (
    Cluster,
    Engine,
    HybridFSTObserver,
    consp_fst,
    fairness_stats,
    random_workload,
    resource_equality_deficits,
    sabin_fst,
)
from repro.sched.noguarantee import NoGuaranteeScheduler


def main() -> None:
    workload = random_workload(150, system_size=64, seed=4, load=1.2, n_users=6)
    print(workload.describe())
    print()

    # simulate the CPlant baseline with the hybrid observer attached
    fst_obs = HybridFSTObserver()
    engine = Engine(
        Cluster(workload.system_size),
        NoGuaranteeScheduler(),
        workload.jobs,
        observers=[fst_obs],
    )
    result = engine.run()
    jobs = result.jobs

    # 1. CONS_P: one global conservative perfect-estimate schedule
    consp = consp_fst(workload.jobs, workload.system_size)
    st_consp = fairness_stats(jobs, consp)

    # 2. Sabin/Sadayappan: re-run the actual policy without later arrivals
    sabin = sabin_fst(workload.jobs, workload.system_size,
                      lambda: NoGuaranteeScheduler())
    st_sabin = fairness_stats(jobs, sabin)

    # 3. resource equality: deserved-vs-received share deficits
    deficits = resource_equality_deficits(jobs, workload.system_size)
    mean_deficit = float(np.mean(list(deficits.values())))

    # 4. the hybrid fairshare FST recorded during the simulation
    st_hybrid = fairness_stats(jobs, result.fst("hybrid"))

    print(f"{'metric':<34}{'%unfair':>9}{'avg miss (s)':>14}")
    print(f"{'CONS_P FST':<34}{100 * st_consp.percent_unfair:>8.2f}%"
          f"{st_consp.average_miss_time:>14,.0f}")
    print(f"{'Sabin no-later-arrival FST':<34}{100 * st_sabin.percent_unfair:>8.2f}%"
          f"{st_sabin.average_miss_time:>14,.0f}")
    print(f"{'hybrid fairshare FST (this paper)':<34}{100 * st_hybrid.percent_unfair:>8.2f}%"
          f"{st_hybrid.average_miss_time:>14,.0f}")
    print(f"{'resource equality':<34}{'--':>9}{mean_deficit:>14,.0f}  (mean deficit, proc-s)")
    print()
    print("CONS_P judges against a fixed FCFS-conservative gold standard;")
    print("Sabin's FST judges against the policy itself without later jobs;")
    print("the hybrid judges against a no-backfill schedule in *fairshare*")
    print("order from the live scheduler state - the order Sandia considers")
    print("socially just.")


if __name__ == "__main__":
    main()
