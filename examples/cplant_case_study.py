#!/usr/bin/env python3
"""The paper's full case study in miniature.

Runs all nine scheduling policies of Section 5.5 on a reduced synthetic
CPlant/Ross trace and prints the Figure 8/9/14/15/17/19 comparisons.

Run:  python examples/cplant_case_study.py [--scale 0.1] [--seed 7]
(scale 1.0 reproduces the full 13,236-job / 231-day study; takes minutes.)
"""

import argparse

from repro import PAPER_POLICIES, GeneratorConfig, generate_cplant_workload
from repro.experiments import figures as F
from repro.experiments.runner import run_suite


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=0.1)
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    workload = generate_cplant_workload(
        GeneratorConfig(scale=args.scale), seed=args.seed
    )
    print(workload.describe())
    print()

    suite = run_suite(workload, PAPER_POLICIES, progress=True)
    print()

    for render, data in [
        (F.render_fig08, F.fig08_percent_unfair_minor(suite)),
        (F.render_fig09, F.fig09_miss_time_minor(suite)),
        (F.render_fig14, F.fig14_percent_unfair_all(suite)),
        (F.render_fig15, F.fig15_miss_time_all(suite)),
        (F.render_fig17, F.fig17_turnaround_all(suite)),
        (F.render_fig19, F.fig19_loc_all(suite)),
    ]:
        print(render(data))
        print()

    best = min(suite, key=lambda k: suite[k].average_miss_time)
    print(f"lowest average miss time: {best} "
          f"({suite[best].average_miss_time:,.0f} s)")
    print("paper's conclusion to compare against: 72 h runtime limits have "
          "the largest effect on fairness, loss of capacity, and turnaround.")


if __name__ == "__main__":
    main()
