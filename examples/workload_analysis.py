#!/usr/bin/env python3
"""Workload characterization: Tables 1-2 and Figures 3-7.

Generates the full-scale synthetic CPlant/Ross trace, prints the category
tables against the paper's published numbers, the weekly offered-load /
utilization series under the baseline policy, and the estimate-quality
views.  Optionally exports the trace as SWF for use with other simulators.

Run:  python examples/workload_analysis.py [--swf-out trace.swf]
"""

import argparse

from repro import GeneratorConfig, generate_cplant_workload, write_swf
from repro.experiments import figures as F
from repro.experiments.runner import run_policy
from repro.experiments.tables import (
    render_table1,
    render_table2,
    table1_job_counts,
    table2_proc_hours,
)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--swf-out", default=None,
                    help="also write the trace in Standard Workload Format")
    args = ap.parse_args()

    workload = generate_cplant_workload(
        GeneratorConfig(scale=args.scale), seed=args.seed
    )
    print(workload.describe())
    print()

    print(render_table1(table1_job_counts(workload)))
    print()
    print(render_table2(table2_proc_hours(workload)))
    print()

    print("simulating the baseline policy for Figure 3 ...")
    baseline = run_policy(workload, "cplant24.nomax.all")
    print(F.render_fig03(F.fig03_weekly_load(baseline, workload)))
    print()
    print(F.render_fig04(F.fig04_runtime_vs_nodes(workload)))
    print()
    print(F.render_fig05(F.fig05_estimates(workload)))
    print()
    print(F.render_fig06(F.fig06_overestimation_vs_runtime(workload)))
    print()
    print(F.render_fig07(F.fig07_overestimation_vs_nodes(workload)))

    if args.swf_out:
        write_swf(workload, args.swf_out)
        print(f"\nwrote {args.swf_out} (SWF v2)")


if __name__ == "__main__":
    main()
