"""Figure 9: average fair-start miss time, minor-change policies.

Paper shape: introducing the 72 h maximum runtime lowers the average miss
time; restricting the starvation queue alone does not beat the runtime
limit.
"""

from repro.experiments.figures import fig09_miss_time_minor, render_fig09


def test_fig09_miss_time_minor(benchmark, suite, emit, shape):
    data = benchmark(fig09_miss_time_minor, suite)
    emit("fig09_miss_time_minor", render_fig09(data))
    assert all(v >= 0.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant24.72max.all"] < base * 1.1
        assert data["cplant72.72max.fair"] < base
