"""Figure 9: average fair-start miss time, minor-change policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig09");
``repro paper build --only fig09`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig09_miss_time_minor = bench_shim("fig09")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig09"))
