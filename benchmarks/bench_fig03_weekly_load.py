"""Figure 3: weekly offered load vs actual utilization.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig03");
``repro paper build --only fig03`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig03_weekly_load = bench_shim("fig03")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig03"))
