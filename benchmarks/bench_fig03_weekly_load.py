"""Figure 3: weekly offered load vs actual utilization."""

from repro.experiments.figures import fig03_weekly_load, render_fig03


def test_fig03_weekly_load(benchmark, suite, workload, emit, shape):
    series = benchmark(fig03_weekly_load, suite["cplant24.nomax.all"], workload)
    emit("fig03_weekly_load", render_fig03(series))
    assert (series.utilization <= 1.0 + 1e-9).all()
    if shape:
        # the paper's signature load shape: overload weeks exist and
        # high-load weeks push utilization up hard
        assert series.offered_load.max() > 1.0
        assert series.utilization.max() > 0.8
