"""Figure 17: average turnaround time, all nine policies.

Paper shape: plain conservative scheduling often costs turnaround time;
the 72 h limit's coarse preemption repairs it (cons.72max competitive).
"""

from repro.experiments.figures import fig17_turnaround_all, render_fig17


def test_fig17_turnaround_all(benchmark, suite, emit, shape):
    data = benchmark(fig17_turnaround_all, suite)
    emit("fig17_tat_all", render_fig17(data))
    assert all(v > 0.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        # the all-modifications baseline variant and the limited
        # conservative schemes sit at or below the original scheduler
        assert data["cplant72.72max.fair"] < base
        assert data["consdyn.72max"] < base * 1.25
