"""Figure 17: average turnaround time, all nine policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig17");
``repro paper build --only fig17`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig17_turnaround_all = bench_shim("fig17")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig17"))
