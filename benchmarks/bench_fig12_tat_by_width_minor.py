"""Figure 12: average turnaround time by width, minor-change policies.

Paper shape: wide jobs carry far larger turnaround times than narrow
ones under the baseline; the runtime limit improves wide-job progress.
"""

import numpy as np

from repro.experiments.figures import (
    fig12_turnaround_by_width_minor,
    render_fig12,
)


def test_fig12_turnaround_by_width_minor(benchmark, suite, emit, shape):
    data = benchmark(fig12_turnaround_by_width_minor, suite)
    emit("fig12_tat_by_width_minor", render_fig12(data))
    if shape:
        base = data["cplant24.nomax.all"]
        assert np.nanmean(base[7:]) > np.nanmean(base[:4])
