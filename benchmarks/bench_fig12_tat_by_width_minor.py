"""Figure 12: average turnaround time by width, minor-change policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig12");
``repro paper build --only fig12`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig12_turnaround_by_width_minor = bench_shim("fig12")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig12"))
