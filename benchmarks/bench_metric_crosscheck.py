"""Cross-metric validation: the hybrid FST against CONS_P and Sabin FSTs.

Section 4 motivates the hybrid metric as sitting *between* CONS_P (one
global gold-standard schedule) and the Sabin/Sadayappan FST (the actual
policy re-run without later arrivals).  This benchmark computes all three
on one baseline-policy schedule (small trace — Sabin is O(n) simulations)
and reports how their verdicts compare.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy
from repro.metrics.fairness import (
    HybridFSTObserver,
    consp_fst,
    fairness_stats,
    sabin_fst,
)
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.workload.generator import random_workload


@pytest.fixture(scope="module")
def schedule():
    # a small high-load trace (Sabin FST is O(n) full simulations); load
    # 1.2 creates the queueing the metrics exist to judge
    wl = random_workload(260, system_size=64, seed=11, load=1.2, n_users=8)
    obs = HybridFSTObserver()
    res = Engine(Cluster(wl.system_size), NoGuaranteeScheduler(), wl.jobs,
                 observers=[obs], kill_policy=KillPolicy.NEVER).run()
    return wl, res


@pytest.fixture(scope="module")
def verdicts(schedule):
    wl, res = schedule
    hybrid = fairness_stats(res.jobs, res.fst("hybrid"))
    consp = fairness_stats(res.jobs, consp_fst(wl.jobs, wl.system_size))
    sabin = fairness_stats(
        res.jobs, sabin_fst(wl.jobs, wl.system_size, NoGuaranteeScheduler),
    )
    return {"hybrid": hybrid, "CONS_P": consp, "sabin": sabin}


def test_metric_crosscheck(benchmark, verdicts, emit):
    benchmark(lambda: {k: v.percent_unfair for k, v in verdicts.items()})
    lines = ["Cross-metric comparison (baseline policy, 260-job high-load trace)",
             f"{'metric':<10}{'%unfair':>9}{'avg miss':>11}"]
    for name, st in verdicts.items():
        lines.append(f"{name:<10}{100 * st.percent_unfair:>8.2f}%"
                     f"{st.average_miss_time:>11,.0f}")
    emit("metric_crosscheck", "\n".join(lines))
    # every metric flags some unfairness on the no-guarantee baseline, and
    # none of them flags everything
    for st in verdicts.values():
        assert 0.0 < st.percent_unfair < 0.9
