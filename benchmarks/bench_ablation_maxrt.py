"""Ablation: sweep the maximum-runtime threshold (24/48/72/120 h).

The paper fixes 72 h; this sweep asks how sensitive the fairness and
packing gains are to the cut-off.  Expected: tighter limits keep improving
LOC/turnaround (more preemption points) with diminishing returns, at the
price of more chunks.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy
from repro.experiments.config import BenchConfig
from repro.metrics.fairness import fairness_stats
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.workload.generator import GeneratorConfig, generate_cplant_workload
from repro.workload.transforms import split_by_runtime_limit

HOUR = 3600.0
LIMITS = (24, 48, 72, 120)


@pytest.fixture(scope="module")
def trace():
    cfg = BenchConfig.from_env()
    return generate_cplant_workload(
        GeneratorConfig(scale=min(cfg.scale, 0.2)), seed=cfg.seed
    )


@pytest.fixture(scope="module")
def sweep(trace):
    from repro.metrics.loc import LossOfCapacityObserver, loc_of
    from repro.metrics.fairness import HybridFSTObserver
    from repro.workload.transforms import parent_view

    out = {}
    for hours in LIMITS:
        wl = split_by_runtime_limit(trace, hours * HOUR)
        fst_obs, loc_obs = HybridFSTObserver(), LossOfCapacityObserver()
        res = Engine(
            Cluster(wl.system_size), NoGuaranteeScheduler(), wl.jobs,
            observers=[fst_obs, loc_obs], kill_policy=KillPolicy.IF_NEEDED,
        ).run()
        jobs = parent_view(res.jobs)
        fst = {}
        for j in res.jobs:
            if not j.is_chunk:
                fst[j.id] = res.fst("hybrid")[j.id]
            elif j.chunk_index == 0:
                fst[j.parent_id] = res.fst("hybrid")[j.id]
        out[hours] = (fairness_stats(jobs, fst), loc_of(res), len(res.jobs))
    return out


def test_ablation_max_runtime(benchmark, sweep, emit):
    benchmark(lambda: {h: s[0].average_miss_time for h, s in sweep.items()})
    lines = ["Ablation: maximum-runtime threshold (baseline scheduler)",
             "limit_h  %unfair  avg_miss   LOC%   scheduler_jobs"]
    for h, (st, loc, njobs) in sweep.items():
        lines.append(
            f"{h:7d}  {100 * st.percent_unfair:6.2f}%  {st.average_miss_time:8,.0f}"
            f"  {100 * loc:5.2f}%  {njobs:8d}"
        )
    emit("ablation_maxrt", "\n".join(lines))
    # tighter limits mean more scheduler-visible jobs
    counts = [sweep[h][2] for h in LIMITS]
    assert counts == sorted(counts, reverse=True)
