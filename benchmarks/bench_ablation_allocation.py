"""Ablation: CPA allocation strategies under the baseline scheduler.

The paper's abstract credits a separate compute process allocator with
keeping jobs "not too fragmented".  This benchmark runs the baseline
scheduling policy on a placement-aware cluster and compares the locality
each CPA strategy achieves (work-weighted span ratio: 1.0 = every
allocation contiguous).
"""

import pytest

from repro.alloc import (
    BestFitAllocator,
    FirstFitAllocator,
    PlacedCluster,
    RandomAllocator,
    SpanMinimizingAllocator,
    placement_stats,
)
from repro.core.engine import Engine, KillPolicy
from repro.experiments.config import BenchConfig
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.workload.generator import GeneratorConfig, generate_cplant_workload

STRATEGIES = {
    "first-fit": FirstFitAllocator,
    "best-fit": BestFitAllocator,
    "span-min": SpanMinimizingAllocator,
    "random": lambda: RandomAllocator(seed=1),
}


@pytest.fixture(scope="module")
def trace():
    cfg = BenchConfig.from_env()
    return generate_cplant_workload(
        GeneratorConfig(scale=min(cfg.scale, 0.1)), seed=cfg.seed
    )


@pytest.fixture(scope="module")
def sweep(trace):
    out = {}
    for name, mk in STRATEGIES.items():
        cluster = PlacedCluster(trace.system_size, mk())
        Engine(cluster, NoGuaranteeScheduler(), trace.jobs,
               kill_policy=KillPolicy.IF_NEEDED).run()
        out[name] = placement_stats(cluster.placements)
    return out


def test_ablation_allocation_strategy(benchmark, sweep, emit):
    data = benchmark(
        lambda: {n: s.work_weighted_span_ratio for n, s in sweep.items()}
    )
    lines = ["Ablation: CPA allocation strategy (baseline scheduler)",
             "strategy   mean_span  p95_span  %contiguous  work_weighted_span"]
    for name, st in sweep.items():
        lines.append(
            f"{name:<10} {st.mean_span_ratio:9.2f}  {st.p95_span_ratio:8.2f}"
            f"  {100 * st.contiguous_fraction:10.1f}%"
            f"  {st.work_weighted_span_ratio:18.2f}"
        )
    emit("ablation_allocation", "\n".join(lines))
    # locality-aware strategies beat random scatter
    assert data["span-min"] < data["random"]
    assert data["first-fit"] < data["random"]