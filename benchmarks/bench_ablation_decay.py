"""Ablation: fairshare decay factor sweep.

The paper says usage "decayed every 24 hours" without the constant
(DESIGN.md substitution #3).  This sweep shows how the choice moves the
fairness metrics under the baseline policy: factor 1.0 never forgets
(long-run FCFS-by-total-usage), factor ~0 forgets daily (near-FCFS).
"""

import pytest

from repro.experiments.config import BenchConfig
from repro.experiments.runner import run_policy
from repro.workload.generator import GeneratorConfig, generate_cplant_workload

FACTORS = (0.1, 0.25, 0.5, 0.75, 0.9)


@pytest.fixture(scope="module")
def trace():
    cfg = BenchConfig.from_env()
    return generate_cplant_workload(
        GeneratorConfig(scale=min(cfg.scale, 0.2)), seed=cfg.seed
    )


@pytest.fixture(scope="module")
def sweep(trace):
    return {
        f: run_policy(trace, "cplant24.nomax.all",
                      scheduler_overrides={"decay_factor": f})
        for f in FACTORS
    }


def test_ablation_decay_factor(benchmark, sweep, emit):
    data = benchmark(lambda: {f: r.percent_unfair for f, r in sweep.items()})
    lines = ["Ablation: fairshare decay factor (baseline scheduler)",
             "factor  %unfair  avg_miss      TAT    LOC%"]
    for f, r in sweep.items():
        lines.append(
            f"{f:6.2f}  {100 * r.percent_unfair:6.2f}%  {r.average_miss_time:8,.0f}"
            f"  {r.summary.avg_turnaround:8,.0f}  {100 * r.loss_of_capacity:5.2f}%"
        )
    emit("ablation_decay", "\n".join(lines))
    assert len(data) == len(FACTORS)
    counts = {r.summary.n_jobs for r in sweep.values()}
    assert len(counts) == 1  # same trace population under every factor
