"""Fairness matrix: policy x hybrid-FST reference order.

Thin shim: the data projection, renderer, and the exact-fairness check
(FCFS-no-backfill must be perfectly fair under the FCFS reference order)
are registered in ``repro.artifacts.registry`` ("matrix");
``repro paper build --only matrix`` builds the same artifact through the
content-addressed cell cache, and ``repro matrix`` sweeps it across
scenarios.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_matrix_policy_fairness = bench_shim("matrix")

if __name__ == "__main__":
    raise SystemExit(main_shim("matrix"))
