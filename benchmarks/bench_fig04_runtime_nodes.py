"""Figure 4: the runtime x nodes scatter of the submitted jobs.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig04");
``repro paper build --only fig04`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig04_runtime_vs_nodes = bench_shim("fig04")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig04"))
