"""Figure 4: the runtime x nodes scatter of the submitted jobs."""

import numpy as np

from repro.experiments.figures import fig04_runtime_vs_nodes, render_fig04


def test_fig04_runtime_vs_nodes(benchmark, workload, emit):
    data = benchmark(fig04_runtime_vs_nodes, workload)
    emit("fig04_runtime_nodes", render_fig04(data))
    # "standard" node allocations: powers of two dominate (Section 2.2)
    nodes = data["nodes"].astype(int)
    pow2 = np.mean((nodes & (nodes - 1)) == 0)
    assert pow2 > 0.4
