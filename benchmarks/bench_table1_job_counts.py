"""Table 1: number of jobs in each length/width category.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("table1");
``repro paper build --only table1`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_table1_job_counts = bench_shim("table1")

if __name__ == "__main__":
    raise SystemExit(main_shim("table1"))
