"""Table 1: number of jobs in each length/width category."""

from repro.experiments.tables import render_table1, table1_job_counts


def test_table1_job_counts(benchmark, workload, emit):
    cmp = benchmark(table1_job_counts, workload)
    emit("table1_job_counts", render_table1(cmp))
    # the generator reproduces Table 1 cellwise (proportionally at scale<1)
    assert cmp.l1_rel_error < 0.25
