"""Macro benchmark: end-to-end simulation throughput, per policy.

This is the number the performance trajectory tracks (see
``docs/PERFORMANCE.md`` and ``tools/bench_trajectory.py``): wall-clock
time of :func:`repro.experiments.runner.run_policy` — the whole stack the
campaign layer multiplies out, i.e. engine + scheduler + reservation
profile + HybridFST/LOC observers + metric derivation — on a generated
CPlant-like trace.

Alongside throughput it records each run's :meth:`SimulationResult.digest`
so a perf PR can prove its numbers describe *the same simulation* as the
baseline (byte-identical results, not a behavior change).

Usage::

    PYTHONPATH=src python benchmarks/bench_fulltrace.py                 # default scale
    PYTHONPATH=src python benchmarks/bench_fulltrace.py --scale 1.0 \
        --out BENCH_4.json --label post

Also collectable by pytest (smoke scale, asserts throughput > 0) so CI
catches import/collection breakage without paying for a full trace.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: the headline policy (conservative backfilling + fairshare priority,
#: measured with the HybridFSTObserver attached) plus one representative
#: of each other scheduler family.
DEFAULT_POLICIES = (
    "cons.nomax",
    "consdyn.nomax",
    "cplant24.nomax.all",
    "easy.fairshare",
)


def bench_policy(workload, policy: str, repeat: int = 1,
                 counters: bool = False) -> dict:
    """Run one policy ``repeat`` times; report the best wall time.

    With ``counters=True`` an extra (untimed) run collects the hot-path
    counter registry — kept out of the timed runs so the reported seconds
    measure the zero-overhead disabled configuration.
    """
    from repro.experiments.runner import run_policy

    best = None
    events = jobs = 0
    digest = ""
    for _ in range(repeat):
        t0 = time.perf_counter()
        run = run_policy(workload, policy)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
        events = run.result.events_processed
        jobs = len(run.result.jobs)
        digest = run.result.digest()
    rec = {
        "seconds": round(best, 4),
        "runs_per_sec": round(1.0 / best, 4),
        "events_per_sec": round(events / best, 1),
        "jobs_per_sec": round(jobs / best, 1),
        "events": events,
        "jobs": jobs,
        "digest": digest,
    }
    if counters:
        from repro.obs.counters import collect

        with collect() as c:
            counted = run_policy(workload, policy)
        if counted.result.digest() != digest:
            raise AssertionError(
                f"{policy}: digest changed with counters enabled"
            )
        rec["counters"] = c.as_dict()
    return rec


def run_bench(scale: float, seed: int, policies, repeat: int = 1,
              progress: bool = True, counters: bool = False) -> dict:
    from repro.experiments.config import BenchConfig, bench_workload

    wl = bench_workload(BenchConfig(scale=scale, seed=seed))
    report = {
        "bench": "fulltrace",
        "scale": scale,
        "seed": seed,
        "n_jobs": len(wl.jobs),
        "system_size": wl.system_size,
        "python": platform.python_version(),
        "policies": {},
    }
    for policy in policies:
        if progress:
            print(f"[bench] {policy} ...", flush=True)
        rec = bench_policy(wl, policy, repeat=repeat, counters=counters)
        report["policies"][policy] = rec
        if progress:
            print(
                f"[bench] {policy}: {rec['seconds']:.2f}s "
                f"({rec['events_per_sec']:.0f} events/s, "
                f"{rec['jobs_per_sec']:.0f} jobs/s)",
                flush=True,
            )
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=0.2,
                    help="fraction of the full trace (1.0 = 13,236 jobs)")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--policies", nargs="*", default=list(DEFAULT_POLICIES))
    ap.add_argument("--repeat", type=int, default=1,
                    help="runs per policy; best time is reported")
    ap.add_argument("--counters", action="store_true",
                    help="record hot-path counters (one extra untimed "
                         "run per policy)")
    ap.add_argument("--out", type=Path, default=None,
                    help="write/update a BENCH_*.json report here")
    ap.add_argument("--label", default="post",
                    help="section of the report to fill: 'baseline' or 'post'")
    args = ap.parse_args(argv)

    report = run_bench(args.scale, args.seed, args.policies,
                       repeat=args.repeat, counters=args.counters)
    if args.out is not None:
        merged = {}
        if args.out.exists():
            merged = json.loads(args.out.read_text())
        merged[args.label] = report
        base = merged.get("baseline", {}).get("policies", {})
        post = merged.get("post", {}).get("policies", {})
        if base and post:
            merged["speedup"] = {
                p: round(base[p]["seconds"] / post[p]["seconds"], 2)
                for p in post if p in base
            }
            merged["digests_match"] = {
                p: base[p]["digest"] == post[p]["digest"]
                for p in post if p in base
            }
        args.out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"[bench] wrote {args.out}")
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


# -- pytest smoke wrapper ------------------------------------------------------

def test_fulltrace_smoke():
    """Tiny-scale sanity run so CI catches breakage cheaply."""
    report = run_bench(scale=0.02, seed=7, policies=("cons.nomax",),
                       progress=False, counters=True)
    rec = report["policies"]["cons.nomax"]
    assert rec["events_per_sec"] > 0
    assert rec["jobs"] == report["n_jobs"]
    # the counter pass rode along and saw the simulation's hot paths fire
    assert rec["counters"]["engine.events"] == rec["events"]
    assert rec["counters"]["profile.reserve_fitted"] > 0


if __name__ == "__main__":
    sys.exit(main())
