"""Table 2: processor-hours in each length/width category."""

from repro.experiments.tables import render_table2, table2_proc_hours


def test_table2_proc_hours(benchmark, workload, emit):
    cmp = benchmark(table2_proc_hours, workload)
    emit("table2_proc_hours", render_table2(cmp))
    assert cmp.l1_rel_error < 0.35
