"""Table 2: processor-hours in each length/width category.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("table2");
``repro paper build --only table2`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_table2_proc_hours = bench_shim("table2")

if __name__ == "__main__":
    raise SystemExit(main_shim("table2"))
