"""Figure 11: average turnaround time, minor-change policies.

Paper shape: the enhancements do not hurt average turnaround; most improve
it, with the runtime limit's coarse preemption the strongest lever.
"""

from repro.experiments.figures import fig11_turnaround_minor, render_fig11


def test_fig11_turnaround_minor(benchmark, suite, emit, shape):
    data = benchmark(fig11_turnaround_minor, suite)
    emit("fig11_tat_minor", render_fig11(data))
    assert all(v > 0.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant24.72max.all"] <= base * 1.05
        assert data["cplant72.72max.fair"] < base
