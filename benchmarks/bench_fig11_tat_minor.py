"""Figure 11: average turnaround time, minor-change policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig11");
``repro paper build --only fig11`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig11_turnaround_minor = bench_shim("fig11")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig11"))
