"""Shared benchmark fixtures.

One synthetic CPlant trace and one nine-policy simulation suite are built
per session and shared by every figure benchmark (the paper's figures are
projections of the same simulations).  Scale knobs:

* default          — REPRO_BENCH_SCALE=0.2 (~2,600 jobs, ~10 weeks)
* full trace       — REPRO_BENCH_FULL=1    (13,236 jobs, 33 weeks)

Each benchmark prints its figure/table in the paper's layout (visible in
the terminal) and writes it to benchmarks/reports/<name>.txt.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.artifacts import SHAPE_MIN_JOBS
from repro.experiments.config import BenchConfig, bench_workload
from repro.experiments.runner import run_suite
from repro.sched.registry import PAPER_POLICIES

REPORTS = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def workload():
    return bench_workload(BenchConfig.from_env())


@pytest.fixture(scope="session")
def shape(workload):
    """True when the trace is large enough to assert the paper's shapes."""
    return len(workload) >= SHAPE_MIN_JOBS


@pytest.fixture(scope="session")
def suite(workload):
    """All nine paper policies simulated once on the shared trace."""
    return run_suite(workload, PAPER_POLICIES, progress=True)


@pytest.fixture(scope="session")
def baseline(suite):
    return suite["cplant24.nomax.all"]


@pytest.fixture
def emit(capsys):
    """Print a rendered figure/table (uncaptured) and archive it."""

    def _emit(name: str, text: str) -> None:
        REPORTS.mkdir(exist_ok=True)
        (REPORTS / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit
