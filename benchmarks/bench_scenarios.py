"""Scenario library sweep: fairness across workload regimes.

Builds every registered scenario at bench scale and runs the CPlant
baseline policy plus conservative backfilling on each, printing the
cross-regime fairness picture the paper could not draw from its single
trace: which regimes make the baseline unfair, and whether conservative
backfilling's advantage survives them.  Also times scenario construction
(generation + transform pipeline) separately from simulation.
"""

from __future__ import annotations

import time

from repro.experiments.config import BenchConfig
from repro.experiments.runner import run_suite
from repro.scenarios import all_scenarios

POLICIES = ("cplant24.nomax.all", "cons.nomax")

#: scenarios are cheaper than the full calibrated trace study; cap the
#: scale so ten regimes x two policies stay in benchmark budget
MAX_SCALE = 0.1


def _bench_params(sc, scale: float) -> dict:
    defaults = sc.param_defaults()
    if "scale" in defaults:
        return {"scale": scale}
    if "n_jobs" in defaults:
        return {"n_jobs": max(200, int(defaults["n_jobs"] * scale * 10))}
    return {}


def test_scenario_sweep(emit):
    cfg = BenchConfig.from_env()
    scale = min(cfg.scale, MAX_SCALE)
    lines = [
        f"scenario sweep — scale={scale}, seed={cfg.seed}, "
        f"policies={', '.join(POLICIES)}",
        f"{'scenario':<24}{'jobs':>6}{'build':>8}{'sim':>8}"
        f"{'%unfair base':>14}{'%unfair cons':>14}{'TAT ratio':>11}",
    ]
    for sc in all_scenarios():
        params = _bench_params(sc, scale)
        t0 = time.perf_counter()
        wl = sc.build(seed=cfg.seed, **params)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        suite = run_suite(wl, POLICIES, **dict(sc.options))
        t_sim = time.perf_counter() - t0
        base, cons = (suite[k] for k in POLICIES)
        ratio = (cons.average_turnaround / base.average_turnaround
                 if base.average_turnaround > 0 else float("nan"))
        lines.append(
            f"{sc.name:<24}{len(wl):>6}{t_build:>7.2f}s{t_sim:>7.2f}s"
            f"{100 * base.percent_unfair:>13.2f}%"
            f"{100 * cons.percent_unfair:>13.2f}%{ratio:>11.2f}"
        )
        # every policy must schedule every trace job in every regime
        assert base.summary.n_jobs == cons.summary.n_jobs > 0
    emit("bench_scenarios", "\n".join(lines))
