"""Ablation: reservation depth sweep (0 = no guarantee ... inf = dynamic).

The paper's introduction notes production schedulers sit between
aggressive and conservative by reserving for the first n queued jobs;
this sweep walks that spectrum under the fairshare priority and shows the
fairness/packing trade the nine named policies sample endpoints of.
"""

import math

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy
from repro.experiments.config import BenchConfig
from repro.metrics.fairness import HybridFSTObserver, fairness_stats
from repro.metrics.loc import LossOfCapacityObserver, loc_of
from repro.metrics.standard import summarize
from repro.sched.depthk import DepthKScheduler
from repro.workload.generator import GeneratorConfig, generate_cplant_workload

DEPTHS = (0, 1, 2, 4, 16, math.inf)


@pytest.fixture(scope="module")
def trace():
    cfg = BenchConfig.from_env()
    return generate_cplant_workload(
        GeneratorConfig(scale=min(cfg.scale, 0.2)), seed=cfg.seed
    )


@pytest.fixture(scope="module")
def sweep(trace):
    out = {}
    for depth in DEPTHS:
        fst_obs, loc_obs = HybridFSTObserver(), LossOfCapacityObserver()
        res = Engine(
            Cluster(trace.system_size), DepthKScheduler(depth=depth),
            trace.jobs, observers=[fst_obs, loc_obs],
            kill_policy=KillPolicy.IF_NEEDED,
        ).run()
        out[depth] = (
            fairness_stats(res.jobs, res.fst("hybrid")),
            summarize(res),
            loc_of(res),
        )
    return out


def test_ablation_reservation_depth(benchmark, sweep, emit):
    data = benchmark(lambda: {d: s[0].percent_unfair for d, s in sweep.items()})
    lines = ["Ablation: reservation depth (fairshare priority)",
             "depth  %unfair  avg_miss      TAT    LOC%"]
    for d, (st, summ, loc) in sweep.items():
        label = "inf" if math.isinf(d) else str(int(d))
        lines.append(
            f"{label:>5}  {100 * st.percent_unfair:6.2f}%  "
            f"{st.average_miss_time:8,.0f}  {summ.avg_turnaround:8,.0f}  "
            f"{100 * loc:5.2f}%"
        )
    emit("ablation_depth", "\n".join(lines))
    assert len(data) == len(DEPTHS)
