"""Figure 6: the overestimation factor falls with runtime."""

import numpy as np

from repro.experiments.figures import (
    fig06_overestimation_vs_runtime,
    render_fig06,
)


def test_fig06_overestimation_vs_runtime(benchmark, workload, emit):
    data = benchmark(fig06_overestimation_vs_runtime, workload)
    emit("fig06_overest_runtime", render_fig06(data))
    rt, f = data["runtime"], data["factor"]
    ok = (rt > 0) & np.isfinite(f)
    short = np.median(f[ok & (rt < 900)])
    long_ = np.median(f[ok & (rt > 86_400)])
    assert short > 2 * long_  # the wedge
