"""Figure 6: the overestimation factor falls with runtime.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig06");
``repro paper build --only fig06`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig06_overestimation_vs_runtime = bench_shim("fig06")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig06"))
