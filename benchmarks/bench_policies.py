"""Simulation throughput per policy: how fast each scheduler chews
through a fixed trace.  This is the only benchmark family where wall-clock
time is itself the result (the figure benchmarks time cheap projections of
a shared suite)."""

import pytest

from repro.experiments.runner import run_policy
from repro.sched.registry import PAPER_POLICIES
from repro.workload.generator import GeneratorConfig, generate_cplant_workload


@pytest.fixture(scope="module")
def timing_trace():
    # small and fixed regardless of REPRO_BENCH_SCALE: these runs are
    # repeated by the timer
    return generate_cplant_workload(GeneratorConfig(scale=0.05, weeks=5), seed=13)


@pytest.mark.parametrize("policy", PAPER_POLICIES)
def test_policy_simulation_speed(benchmark, timing_trace, policy):
    run = benchmark.pedantic(
        run_policy, args=(timing_trace, policy), rounds=2, iterations=1,
    )
    assert run.summary.n_jobs == len(timing_trace)
