"""Figure 10: average miss time by job width, minor-change policies.

Paper shape: unfairness concentrates in the wide categories — wide jobs
rely on the starvation queue and miss hardest.
"""

import numpy as np

from repro.experiments.figures import fig10_miss_by_width_minor, render_fig10


def test_fig10_miss_by_width_minor(benchmark, suite, emit, shape):
    data = benchmark(fig10_miss_by_width_minor, suite)
    emit("fig10_miss_by_width_minor", render_fig10(data))
    if shape:
        base = data["cplant24.nomax.all"]
        # wide half of the categories misses more than the narrow half
        narrow = np.nanmean(base[:5])
        wide = np.nanmean(base[5:])
        assert wide > narrow
