"""Figure 10: average miss time by job width, minor-change policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig10");
``repro paper build --only fig10`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig10_miss_by_width_minor = bench_shim("fig10")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig10"))
