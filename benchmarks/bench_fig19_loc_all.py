"""Figure 19: loss of capacity, all nine policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig19");
``repro paper build --only fig19`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig19_loc_all = bench_shim("fig19")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig19"))
