"""Figure 19: loss of capacity, all nine policies.

Paper shape: the conservative scheme with 72 h limits packs best (lowest
LOC of the conservative family); dynamic reservations without limits pay
the largest LOC.
"""

from repro.experiments.figures import fig19_loc_all, render_fig19


def test_fig19_loc_all(benchmark, suite, emit, shape):
    data = benchmark(fig19_loc_all, suite)
    emit("fig19_loc_all", render_fig19(data))
    assert all(0.0 <= v < 1.0 for v in data.values())
    if shape:
        assert data["cons.72max"] < data["cons.nomax"]
        assert data["consdyn.72max"] < data["consdyn.nomax"]
        assert data["cons.72max"] < data["consdyn.nomax"]
