"""Figure 14: percent of unfair jobs, all nine policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig14");
``repro paper build --only fig14`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig14_percent_unfair_all = bench_shim("fig14")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig14"))
