"""Figure 14: percent of unfair jobs, all nine policies.

Paper shape: conservative-with-dynamic-reservations has the fewest unfair
jobs of all policies.
"""

from repro.experiments.figures import fig14_percent_unfair_all, render_fig14


def test_fig14_percent_unfair_all(benchmark, suite, emit, shape):
    data = benchmark(fig14_percent_unfair_all, suite)
    emit("fig14_percent_unfair_all", render_fig14(data))
    if shape:
        # dynamic reservations track the fairshare ideal closely: fewer
        # unfair jobs than the baseline and the plain conservative scheme
        # (at full scale they are the global minimum, as in the paper)
        dyn = min(data["consdyn.nomax"], data["consdyn.72max"])
        assert dyn < data["cplant24.nomax.all"]
        assert dyn < data["cons.nomax"]
        assert dyn < data["cons.72max"]
