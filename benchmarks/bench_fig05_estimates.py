"""Figure 5: user wall-clock estimates vs actual runtimes.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig05");
``repro paper build --only fig05`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig05_estimates = bench_shim("fig05")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig05"))
