"""Figure 5: user wall-clock estimates vs actual runtimes."""

import numpy as np

from repro.experiments.figures import fig05_estimates, render_fig05


def test_fig05_estimates(benchmark, workload, emit):
    data = benchmark(fig05_estimates, workload)
    emit("fig05_estimates", render_fig05(data))
    # most jobs overestimate; a small tail of killed/aborted jobs ran past
    # their estimate (Section 2.2)
    over = (data["wcl"] >= data["runtime"]).mean()
    under = (data["wcl"] < 0.95 * data["runtime"]).mean()
    assert over > 0.85
    assert 0.0 < under < 0.1
