"""Figure 8: percent of jobs missing their fair start time (minor changes).

Paper shape: every enhanced policy reduces the percentage below the
baseline; the three-modification combination reduces it the most.
"""

from repro.experiments.figures import fig08_percent_unfair_minor, render_fig08


def test_fig08_percent_unfair_minor(benchmark, suite, emit, shape):
    data = benchmark(fig08_percent_unfair_minor, suite)
    emit("fig08_percent_unfair_minor", render_fig08(data))
    assert all(0.0 <= v <= 1.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant72.nomax.all"] < base
        assert data["cplant24.nomax.fair"] < base
        # the combination is among the best of the minor-change family
        assert data["cplant72.72max.fair"] < base
