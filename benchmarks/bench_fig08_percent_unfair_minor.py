"""Figure 8: percent of jobs missing their fair start time (minor changes).

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig08");
``repro paper build --only fig08`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig08_percent_unfair_minor = bench_shim("fig08")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig08"))
