"""Figure 18: turnaround time by width, conservative comparison set.

Paper shape: wide jobs fare better under conservative reservations than
under the reservation-free baseline.
"""

import numpy as np

from repro.experiments.figures import (
    fig18_turnaround_by_width_cons,
    render_fig18,
)


def test_fig18_turnaround_by_width_cons(benchmark, suite, emit, shape):
    data = benchmark(fig18_turnaround_by_width_cons, suite)
    emit("fig18_tat_by_width_cons", render_fig18(data))
    for series in data.values():
        assert series.shape == (11,)
        assert np.nanmax(series) >= 0
    if shape:
        base_wide = np.nansum(data["cplant24.nomax.all"][6:])
        cons_wide = np.nansum(data["cons.72max"][6:])
        assert cons_wide < base_wide * 1.5
