"""Figure 18: turnaround time by width, conservative comparison set.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig18");
``repro paper build --only fig18`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig18_turnaround_by_width_cons = bench_shim("fig18")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig18"))
