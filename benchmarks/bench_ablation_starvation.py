"""Ablation: starvation-queue entry threshold sweep (12/24/48/72/120 h).

The paper compares 24 h vs 72 h; the sweep fills in the curve.  Expected:
longer thresholds reduce how many jobs jump the fairshare order (fewer
unfair jobs) but the jobs that do starve wait longer (larger misses for
the wide categories).
"""

import pytest

from repro.experiments.config import BenchConfig
from repro.experiments.runner import run_policy
from repro.workload.generator import GeneratorConfig, generate_cplant_workload

HOUR = 3600.0
THRESHOLDS = (12, 24, 48, 72, 120)


@pytest.fixture(scope="module")
def trace():
    cfg = BenchConfig.from_env()
    return generate_cplant_workload(
        GeneratorConfig(scale=min(cfg.scale, 0.2)), seed=cfg.seed
    )


@pytest.fixture(scope="module")
def sweep(trace):
    return {
        h: run_policy(
            trace, "cplant24.nomax.all",
            scheduler_overrides={"starvation_threshold": h * HOUR},
        )
        for h in THRESHOLDS
    }


def test_ablation_starvation_threshold(benchmark, sweep, emit):
    data = benchmark(lambda: {h: r.percent_unfair for h, r in sweep.items()})
    lines = ["Ablation: starvation-queue entry threshold (baseline scheduler)",
             "hours  %unfair  avg_miss      TAT    LOC%"]
    for h, r in sweep.items():
        lines.append(
            f"{h:5d}  {100 * r.percent_unfair:6.2f}%  {r.average_miss_time:8,.0f}"
            f"  {r.summary.avg_turnaround:8,.0f}  {100 * r.loss_of_capacity:5.2f}%"
        )
    emit("ablation_starvation", "\n".join(lines))
    assert len(data) == len(THRESHOLDS)
