"""Figure 13: loss of capacity, minor-change policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig13");
``repro paper build --only fig13`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig13_loc_minor = bench_shim("fig13")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig13"))
