"""Figure 13: loss of capacity, minor-change policies.

Paper shape: the 72 h runtime limit improves (lowers) the loss of
capacity relative to the baseline.
"""

from repro.experiments.figures import fig13_loc_minor, render_fig13


def test_fig13_loc_minor(benchmark, suite, emit, shape):
    data = benchmark(fig13_loc_minor, suite)
    emit("fig13_loc_minor", render_fig13(data))
    for v in data.values():
        assert 0.0 <= v < 0.5
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant24.72max.all"] < base * 1.05
