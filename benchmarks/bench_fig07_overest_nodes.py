"""Figure 7: the overestimation factor is roughly unrelated to width."""

import numpy as np

from repro.experiments.figures import (
    fig07_overestimation_vs_nodes,
    render_fig07,
)


def test_fig07_overestimation_vs_nodes(benchmark, workload, emit):
    data = benchmark(fig07_overestimation_vs_nodes, workload)
    emit("fig07_overest_nodes", render_fig07(data))
    nd, f = data["nodes"], data["factor"]
    ok = np.isfinite(f) & (f > 0)
    # medians across narrow/wide halves stay within a small factor of each
    # other ("appears unrelated to the node selection")
    narrow = np.median(f[ok & (nd <= 16)])
    wide = np.median(f[ok & (nd > 16)])
    assert max(narrow, wide) / min(narrow, wide) < 5.0
