"""Figure 7: the overestimation factor is roughly unrelated to width.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig07");
``repro paper build --only fig07`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig07_overestimation_vs_nodes = bench_shim("fig07")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig07"))
