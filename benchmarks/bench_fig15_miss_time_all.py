"""Figure 15: average miss time, all nine policies.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig15");
``repro paper build --only fig15`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig15_miss_time_all = bench_shim("fig15")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig15"))
