"""Figure 15: average miss time, all nine policies.

Paper shape: conservative policies *without* runtime limits pay for their
fewer unfair jobs with larger average miss times (consdyn.nomax is the
outlier bar in the paper); adding the 72 h limit repairs this.
"""

from repro.experiments.figures import fig15_miss_time_all, render_fig15


def test_fig15_miss_time_all(benchmark, suite, emit, shape):
    data = benchmark(fig15_miss_time_all, suite)
    emit("fig15_miss_time_all", render_fig15(data))
    assert all(v >= 0.0 for v in data.values())
    if shape:
        # runtime limits lower the conservative-family miss times
        assert data["cons.72max"] < data["cons.nomax"] * 1.2
        assert data["consdyn.72max"] < data["consdyn.nomax"] * 1.1
        # the dynamic no-limit policy misses hard when it misses
        assert data["consdyn.nomax"] > data["cplant72.72max.fair"]
