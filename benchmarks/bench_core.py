"""Microbenchmarks for the hot data structures: the reservation profile
(every backfilling decision) and the NumPy list scheduler (every hybrid
FST evaluation)."""

import numpy as np

from repro.core.listsched import ListScheduler
from repro.core.profile import ReservationProfile

rng = np.random.default_rng(0)
N_OPS = 500
STARTS = rng.uniform(0, 1e5, N_OPS)
DURS = rng.uniform(60, 3600, N_OPS)
NODES = rng.integers(1, 256, N_OPS)


def profile_churn():
    p = ReservationProfile(1024)
    placed = []
    for k in range(N_OPS):
        s = p.earliest_fit(int(NODES[k]), float(DURS[k]), float(STARTS[k]))
        p.reserve(s, s + float(DURS[k]), int(NODES[k]))
        placed.append((s, s + float(DURS[k]), int(NODES[k])))
        if k % 3 == 0 and placed:
            s0, e0, n0 = placed.pop(0)
            p.release(max(s0, p.times[0]), e0, n0)
    return len(p)


def listsched_churn():
    ls = ListScheduler(1024)
    for k in range(N_OPS):
        ls.place(int(NODES[k]), float(DURS[k]), float(STARTS[k]))
    return ls.makespan()


def test_profile_fit_reserve_release(benchmark):
    segments = benchmark(profile_churn)
    assert segments > 0


def test_list_scheduler_placement(benchmark):
    makespan = benchmark(listsched_churn)
    assert makespan > 0
