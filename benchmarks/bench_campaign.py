"""Campaign executor scaling: parallel fan-out vs the serial path, and
warm-cache replay.

Eight independent cells (two policies x four seeds) are simulated three
ways — serially in-process, across a worker pool, and again against a
warm on-disk cache.  On a multi-core machine the pool's wall-clock should
approach serial/min(jobs, cores) (cells are embarrassingly parallel; the
overhead is one fork + one workload build per worker), and the cached
replay should be near-instant regardless of core count.
"""

from __future__ import annotations

import json
import os
import time

from repro.campaign import CampaignCache, CampaignSpec, run_campaign

JOBS = 4

SPEC = CampaignSpec.from_dict({
    "name": "bench-campaign",
    "policies": ["easy.fcfs", "cons.nomax"],
    "workloads": [
        {"kind": "random", "n_jobs": 600, "system_size": 64, "load": 1.2,
         "seeds": [1, 2, 3, 4]},
    ],
})


def _timed(**kwargs):
    t0 = time.perf_counter()
    result = run_campaign(SPEC, **kwargs)
    return result, time.perf_counter() - t0


def test_parallel_speedup_and_cache_replay(tmp_path, emit):
    serial, t_serial = _timed(jobs=1, cache=None)
    parallel, t_parallel = _timed(jobs=JOBS, cache=None)
    cache = CampaignCache(tmp_path / "cache")
    _timed(jobs=JOBS, cache=cache)          # populate
    replay, t_replay = _timed(jobs=JOBS, cache=cache)

    cores = os.cpu_count() or 1
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    emit(
        "bench_campaign",
        "\n".join([
            f"campaign scaling — {serial.n_cells} cells, "
            f"--jobs {JOBS}, {cores} cores",
            f"  serial   (--jobs 1): {t_serial:8.2f} s",
            f"  parallel (--jobs {JOBS}): {t_parallel:8.2f} s   "
            f"speedup x{speedup:.2f} (ideal x{min(JOBS, cores)})",
            f"  warm cache replay  : {t_replay:8.2f} s   "
            f"({replay.n_cached}/{replay.n_cells} cells from cache)",
        ]),
    )

    # correctness regardless of path: identical aggregates everywhere
    docs = [json.dumps(r.aggregate(), sort_keys=True)
            for r in (serial, parallel, replay)]
    assert docs[0] == docs[1] == docs[2]
    assert replay.n_cached == replay.n_cells

    if cores >= 2:
        # loose floor: half the ideal speedup still clears it comfortably
        assert speedup > 1.3
    assert t_replay < t_serial
