"""Figure 16: average miss time by width, conservative comparison set.

Thin shim: the data projection, renderer, and the paper's qualitative
shape check are registered in ``repro.artifacts.registry`` ("fig16");
``repro paper build --only fig16`` builds the same artifact through the
content-addressed cell cache.
"""

from repro.artifacts.shim import bench_shim, main_shim

test_fig16_miss_by_width_cons = bench_shim("fig16")

if __name__ == "__main__":
    raise SystemExit(main_shim("fig16"))
