"""Figure 16: average miss time by width, conservative comparison set.

Paper shape: conservative backfilling reduces the unfairness of wide jobs
relative to the baseline — "important as the supercomputers are purchased
to efficiently run parallel code".
"""

import numpy as np

from repro.experiments.figures import fig16_miss_by_width_cons, render_fig16


def test_fig16_miss_by_width_cons(benchmark, suite, emit, shape):
    data = benchmark(fig16_miss_by_width_cons, suite)
    emit("fig16_miss_by_width_cons", render_fig16(data))
    if shape:
        base_wide = np.nansum(data["cplant24.nomax.all"][6:])
        cons_wide = np.nansum(data["cons.72max"][6:])
        assert cons_wide < base_wide * 1.5
