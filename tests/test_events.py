"""Unit tests for the event queue."""

import pytest

from repro.core.events import EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "b")
        q.push(1.0, EventKind.ARRIVAL, "a")
        q.push(9.0, EventKind.ARRIVAL, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_kind_tiebreak_completion_before_arrival(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, "arrive")
        q.push(1.0, EventKind.COMPLETION, "complete")
        q.push(1.0, EventKind.DECAY_TICK, "decay")
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.COMPLETION, EventKind.ARRIVAL, EventKind.DECAY_TICK,
        ]

    def test_insertion_order_within_kind(self):
        q = EventQueue()
        for name in "abc":
            q.push(1.0, EventKind.ARRIVAL, name)
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]


class TestCancellation:
    def test_cancelled_events_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.ARRIVAL, "dead")
        q.push(2.0, EventKind.ARRIVAL, "live")
        q.cancel(ev)
        assert q.pop().payload == "live"

    def test_len_tracks_cancellation(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.ARRIVAL)
        assert len(q) == 1
        q.cancel(ev)
        assert len(q) == 0
        assert not q

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, EventKind.ARRIVAL)
        q.push(2.0, EventKind.ARRIVAL)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 1


class TestEdges:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        ev = q.push(3.0, EventKind.ARRIVAL)
        q.push(7.0, EventKind.ARRIVAL)
        assert q.peek_time() == 3.0
        q.cancel(ev)
        assert q.peek_time() == 7.0
