"""Unit tests for the reservation profile."""

import pytest

from repro.core.profile import ProfileError, ReservationProfile


class TestBasics:
    def test_initial_state(self):
        p = ReservationProfile(10)
        assert p.available_at(0.0) == 10
        assert p.available_at(1e9) == 10

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ReservationProfile(0)

    def test_reserve_reduces_window(self):
        p = ReservationProfile(10)
        p.reserve(100.0, 200.0, 4)
        assert p.available_at(50.0) == 10
        assert p.available_at(100.0) == 6
        assert p.available_at(199.0) == 6
        assert p.available_at(200.0) == 10

    def test_release_restores(self):
        p = ReservationProfile(10)
        p.reserve(100.0, 200.0, 4)
        p.release(100.0, 200.0, 4)
        p.coalesce()
        assert p.segments() == [(0.0, float("inf"), 10)]

    def test_overlapping_reservations_stack(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 3)
        p.reserve(50.0, 150.0, 3)
        assert p.available_at(25.0) == 7
        assert p.available_at(75.0) == 4
        assert p.available_at(125.0) == 7

    def test_over_subscription_raises_and_preserves_state(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 8)
        before = p.segments()
        with pytest.raises(ProfileError, match="over-subscription"):
            p.reserve(50.0, 60.0, 3)
        assert p.segments() == before

    def test_release_beyond_capacity_raises(self):
        p = ReservationProfile(10)
        with pytest.raises(ProfileError, match="capacity"):
            p.release(0.0, 10.0, 1)

    def test_empty_interval_rejected(self):
        p = ReservationProfile(10)
        with pytest.raises(ValueError):
            p.reserve(5.0, 5.0, 1)


class TestEarliestFit:
    def test_fits_immediately_when_free(self):
        p = ReservationProfile(10)
        assert p.earliest_fit(4, 50.0, 0.0) == 0.0

    def test_respects_earliest(self):
        p = ReservationProfile(10)
        assert p.earliest_fit(4, 50.0, 33.0) == 33.0

    def test_waits_for_blocker_end(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 8)
        assert p.earliest_fit(4, 50.0, 0.0) == 100.0

    def test_fits_alongside_narrow_blocker(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 4)
        assert p.earliest_fit(6, 50.0, 0.0) == 0.0
        assert p.earliest_fit(7, 50.0, 0.0) == 100.0

    def test_window_must_span_duration(self):
        # hole of length 50 between blockers; a 60-long job must wait
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 8)
        p.reserve(150.0, 300.0, 8)
        assert p.earliest_fit(4, 50.0, 0.0) == 100.0
        assert p.earliest_fit(4, 60.0, 0.0) == 300.0

    def test_uses_hole_exactly(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 8)
        p.reserve(150.0, 300.0, 8)
        start = p.earliest_fit(2, 1000.0, 0.0)
        assert start == 0.0  # 2 nodes free throughout

    def test_wider_than_size_raises(self):
        with pytest.raises(ProfileError):
            ReservationProfile(10).earliest_fit(11, 1.0, 0.0)

    def test_fit_then_reserve_roundtrip(self):
        p = ReservationProfile(16)
        placed = []
        for i, (n, d) in enumerate([(8, 100), (8, 50), (8, 50), (16, 10)]):
            s = p.earliest_fit(n, d, 0.0)
            p.reserve(s, s + d, n)
            placed.append(s)
        # two 8-wide fit side by side, third waits for the 50-end,
        # full-width job waits for everything
        assert placed == [0.0, 0.0, 50.0, 100.0]


class TestAdvanceCoalesce:
    def test_advance_trims_history(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 4)
        p.reserve(200.0, 300.0, 2)
        p.advance(150.0)
        assert p.times[0] == 150.0
        assert p.available_at(150.0) == 10
        assert p.available_at(250.0) == 8

    def test_advance_into_active_segment(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 4)
        p.advance(50.0)
        assert p.available_at(50.0) == 6

    def test_coalesce_merges_equal_segments(self):
        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 4)
        p.release(0.0, 100.0, 4)
        p.coalesce()
        assert len(p.times) == 1

    def test_invariants_checker(self):
        p = ReservationProfile(10)
        p.reserve(10.0, 20.0, 3)
        p.check_invariants()
        p.avail[-1] = 5  # corrupt the unbounded tail
        with pytest.raises(ProfileError):
            p.check_invariants()
