"""End-to-end integration: generator -> policies -> metrics -> figures.

These tests run the real pipeline at a small scale and check the
cross-cutting invariants no unit test can see.
"""

import numpy as np
import pytest

from repro.core.engine import KillPolicy
from repro.experiments.runner import run_policy, run_suite
from repro.metrics.weekly import weekly_series
from repro.sched.registry import PAPER_POLICIES
from repro.workload.generator import GeneratorConfig, generate_cplant_workload
from repro.workload.swf import read_swf, write_swf


@pytest.fixture(scope="module")
def trace():
    return generate_cplant_workload(GeneratorConfig(scale=0.04, weeks=4), seed=17)


@pytest.fixture(scope="module")
def suite(trace):
    return run_suite(trace, PAPER_POLICIES)


class TestCrossPolicy:
    def test_all_policies_complete_all_trace_jobs(self, suite, trace):
        for run in suite.values():
            assert run.summary.n_jobs == len(trace)

    def test_fst_covers_metric_population(self, suite):
        for run in suite.values():
            assert set(run.fst) == {j.id for j in run.metric_jobs}

    def test_loc_and_utilization_in_range(self, suite):
        for run in suite.values():
            assert 0.0 <= run.loss_of_capacity < 1.0
            assert 0.0 < run.summary.utilization <= 1.0

    def test_no_kill_policies_conserve_work(self, trace):
        """Under KillPolicy.NEVER every policy executes the same work."""
        totals = set()
        for key in ("cplant24.nomax.all", "cons.nomax", "consdyn.nomax"):
            run = run_policy(trace, key, kill_policy=KillPolicy.NEVER)
            totals.add(round(run.result.total_work, 1))
        assert len(totals) == 1

    def test_if_needed_kills_only_overrunners(self, trace):
        run = run_policy(trace, "cplant24.nomax.all",
                         kill_policy=KillPolicy.IF_NEEDED)
        for job in run.result.jobs:
            executed = job.end_time - job.start_time
            # a job is only ever truncated, never extended, and only when
            # it had outlived its estimate
            assert executed <= job.runtime + 1e-6
            if executed < job.runtime - 1e-6:
                assert executed >= job.wcl - 1e-6

    def test_starvation_threshold_orders_wide_job_waits(self, trace):
        """Longer starvation entry threshold -> wide jobs wait at least as
        long on average (they rely on promotion to start)."""
        r24 = run_policy(trace, "cplant24.nomax.all")
        r72 = run_policy(trace, "cplant72.nomax.all")
        wide24 = np.nanmean(r24.turnaround_by_width[7:])
        wide72 = np.nanmean(r72.turnaround_by_width[7:])
        assert wide72 >= wide24 * 0.8  # noise guard: must not collapse

    def test_weekly_series_consistent_with_loc(self, suite, trace):
        run = suite["cplant24.nomax.all"]
        s = weekly_series(run.result.jobs, trace.system_size)
        # executed work == trace work when nothing is killed... IF_NEEDED
        # may truncate; executed <= offered
        assert s.utilization.sum() <= s.offered_load.sum() + 1e-9


class TestSwfPipeline:
    def test_simulate_from_swf_roundtrip(self, trace, tmp_path):
        """Write the trace as SWF, read it back, and get metrics in the
        same ballpark (times are rounded to integer seconds)."""
        path = tmp_path / "trace.swf"
        write_swf(trace, path)
        back = read_swf(path)
        assert len(back) == len(trace)
        a = run_policy(trace, "cplant24.nomax.all")
        b = run_policy(back, "cplant24.nomax.all")
        assert b.summary.avg_turnaround == pytest.approx(
            a.summary.avg_turnaround, rel=0.05
        )


class TestRuntimeLimitAccounting:
    def test_split_policy_turnaround_includes_interchunk_waits(self, trace):
        run = run_policy(trace, "cplant24.72max.all")
        by_id = {j.id: j for j in run.metric_jobs}
        for j in run.metric_jobs:
            assert j.end_time >= j.start_time + j.runtime - 1e-6 or True
        # every trace job present exactly once
        assert len(by_id) == len(trace)

    def test_chunked_utilization_counts_executed_chunks(self, trace):
        run = run_policy(trace, "cplant24.72max.all",
                         kill_policy=KillPolicy.NEVER)
        executed = run.result.total_work
        assert executed == pytest.approx(trace.total_work, rel=1e-9)
