"""Tests for the width x length category grid."""

import numpy as np
import pytest

from repro.workload import categories as C
from repro.workload.cplant import TABLE1_COUNTS, TABLE2_PROC_HOURS


class TestClassification:
    @pytest.mark.parametrize("nodes,expect", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4),
        (17, 5), (32, 5), (33, 6), (64, 6), (65, 7), (128, 7), (129, 8),
        (256, 8), (257, 9), (512, 9), (513, 10), (1024, 10), (100000, 10),
    ])
    def test_width_category_boundaries(self, nodes, expect):
        assert C.width_category(nodes) == expect

    @pytest.mark.parametrize("rt,expect", [
        (0.0, 0), (899.0, 0), (900.0, 1), (3599.0, 1), (3600.0, 2),
        (4 * 3600.0 - 1, 2), (4 * 3600.0, 3), (8 * 3600.0, 4),
        (16 * 3600.0, 5), (24 * 3600.0 - 1, 5), (86400.0, 6),
        (2 * 86400.0 - 1, 6), (2 * 86400.0, 7), (1e9, 7),
    ])
    def test_length_category_boundaries(self, rt, expect):
        assert C.length_category(rt) == expect

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            C.width_category(0)
        with pytest.raises(ValueError):
            C.length_category(-1.0)

    def test_vectorized_matches_scalar(self):
        nodes = [1, 7, 33, 513, 2, 128]
        rts = [10.0, 3600.0, 90000.0, 900.0, 4e5, 0.0]
        assert list(C.width_categories(nodes)) == [C.width_category(n) for n in nodes]
        assert list(C.length_categories(rts)) == [C.length_category(r) for r in rts]

    def test_bounds_contain(self):
        for cat, (lo, hi) in enumerate(C.WIDTH_BOUNDS):
            assert C.width_bounds_contain(cat, lo)
            if hi is not None:
                assert C.width_bounds_contain(cat, hi)
                assert not C.width_bounds_contain(cat, hi + 1)

    def test_labels_align(self):
        assert len(C.WIDTH_LABELS) == C.N_WIDTH
        assert len(C.LENGTH_LABELS) == C.N_LENGTH


class TestCategoryMatrix:
    def test_counts(self):
        nodes = [1, 1, 16, 600]
        rts = [100.0, 100.0, 3600.0, 100.0]
        m = C.category_matrix(nodes, rts)
        assert m[0, 0] == 2
        assert m[4, 2] == 1
        assert m[10, 0] == 1
        assert m.sum() == 4

    def test_weighted(self):
        m = C.category_matrix([4], [7200.0], weights=[8.0])
        assert m[2, 2] == 8.0

    def test_paper_tables_shape(self):
        assert TABLE1_COUNTS.shape == (C.N_WIDTH, C.N_LENGTH)
        assert TABLE2_PROC_HOURS.shape == (C.N_WIDTH, C.N_LENGTH)

    def test_paper_tables_consistent(self):
        """Cells with jobs should (mostly) have hours and vice versa.  The
        paper's own tables carry two anomalies we preserve verbatim:
        (513+, 1-4 h) lists 1 job / 0 proc-hours, and (513+, 4-8 h) lists
        0 jobs / 3183 proc-hours."""
        jobs_no_hours = (TABLE1_COUNTS > 0) & (TABLE2_PROC_HOURS == 0)
        hours_no_jobs = (TABLE1_COUNTS == 0) & (TABLE2_PROC_HOURS > 0)
        assert jobs_no_hours.sum() == 1 and jobs_no_hours[10, 2]
        assert hours_no_jobs.sum() == 1 and hours_no_jobs[10, 3]

    def test_format_table_renders(self):
        txt = C.format_category_table(TABLE1_COUNTS.astype(float), "Table 1")
        assert "513+" in txt
        assert "2+ days" in txt
        assert txt.splitlines()[0] == "Table 1"

    def test_format_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            C.format_category_table(np.zeros((2, 2)), "bad")
