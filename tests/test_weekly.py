"""Tests for the Figure 3 weekly offered-load/utilization series."""

import pytest

from repro.metrics.weekly import WEEK, format_weekly, weekly_series
from tests.conftest import make_job


def completed(id, submit, start, end, nodes):
    j = make_job(id=id, submit=submit, nodes=nodes,
                 runtime=max(end - start, 1.0), wcl=max(end - start, 1.0))
    j.state = j.state.COMPLETED
    j.start_time, j.end_time = start, end
    return j


class TestWeeklySeries:
    def test_single_week(self):
        jobs = [completed(1, 0.0, 0.0, WEEK / 2, nodes=4)]
        s = weekly_series(jobs, system_size=8)
        assert len(s) == 1
        # offered: 4 nodes x half a week / (8 x week) = 0.25
        assert s.offered_load[0] == pytest.approx(0.25)
        assert s.utilization[0] == pytest.approx(0.25)

    def test_execution_spanning_weeks(self):
        jobs = [completed(1, 0.0, 0.0, 2 * WEEK, nodes=8)]
        s = weekly_series(jobs, system_size=8)
        assert len(s) == 2
        assert s.utilization[0] == pytest.approx(1.0)
        assert s.utilization[1] == pytest.approx(1.0)
        # all offered work lands in the submit week
        assert s.offered_load[0] == pytest.approx(2.0)
        assert s.offered_load[1] == pytest.approx(0.0)

    def test_offered_load_can_exceed_one(self):
        jobs = [completed(i, 100.0 * i, 1e6 + i, 1e6 + i + WEEK, nodes=8)
                for i in range(1, 4)]
        s = weekly_series(jobs, system_size=8)
        assert s.offered_load[0] > 1.0

    def test_utilization_never_exceeds_one(self, heavy_workload):
        from repro.core.cluster import Cluster
        from repro.core.engine import Engine
        from repro.sched.noguarantee import NoGuaranteeScheduler

        res = Engine(Cluster(heavy_workload.system_size),
                     NoGuaranteeScheduler(), heavy_workload.jobs).run()
        s = weekly_series(res.jobs, heavy_workload.system_size)
        assert (s.utilization <= 1.0 + 1e-9).all()

    def test_total_work_conserved(self, small_workload):
        from repro.core.cluster import Cluster
        from repro.core.engine import Engine
        from repro.sched.nobackfill import NoBackfillScheduler

        res = Engine(Cluster(small_workload.system_size),
                     NoBackfillScheduler("fcfs"), small_workload.jobs).run()
        s = weekly_series(res.jobs, small_workload.system_size)
        executed = s.utilization.sum() * WEEK * small_workload.system_size
        expected = sum(j.nodes * (j.end_time - j.start_time) for j in res.jobs)
        assert executed == pytest.approx(expected, rel=1e-9)

    def test_empty(self):
        s = weekly_series([], 8)
        assert len(s) == 0

    def test_incomplete_rejected(self):
        with pytest.raises(ValueError):
            weekly_series([make_job()], 8)

    def test_format(self):
        jobs = [completed(1, 0.0, 0.0, WEEK / 2, nodes=4)]
        txt = format_weekly(weekly_series(jobs, 8))
        assert "offered%" in txt
        assert len(txt.splitlines()) == 2
