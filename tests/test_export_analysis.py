"""Tests for results export and workload analysis."""

import json

import pytest

from repro.cli import main
from repro.experiments.export import (
    export_per_job_csv,
    export_suite_csv,
    export_suite_json,
    load_suite_json,
    policy_run_record,
)
from repro.experiments.runner import run_suite
from repro.workload.analysis import (
    analyze,
    arrival_pattern,
    estimate_quality,
    render_analysis,
    user_activity,
)
from repro.workload.generator import GeneratorConfig, generate_cplant_workload
from repro.workload.model import Workload
from tests.conftest import make_job


@pytest.fixture(scope="module")
def tiny_suite():
    wl = generate_cplant_workload(GeneratorConfig(scale=0.02, weeks=4), seed=2)
    return wl, run_suite(wl, ["cplant24.nomax.all", "cons.nomax"])


class TestExport:
    def test_record_is_json_serializable(self, tiny_suite):
        _, suite = tiny_suite
        rec = policy_run_record(suite["cons.nomax"])
        text = json.dumps(rec)
        assert "fairness" in text

    def test_suite_json_roundtrip(self, tiny_suite, tmp_path):
        _, suite = tiny_suite
        path = tmp_path / "suite.json"
        export_suite_json(suite, path)
        back = load_suite_json(path)
        assert set(back) == set(suite)
        rec = back["cplant24.nomax.all"]
        assert rec["summary"]["n_jobs"] == suite["cplant24.nomax.all"].summary.n_jobs
        assert len(rec["miss_by_width"]) == 11

    def test_suite_csv(self, tiny_suite, tmp_path):
        _, suite = tiny_suite
        path = tmp_path / "suite.csv"
        export_suite_csv(suite, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(suite)
        assert lines[0].startswith("policy,")

    def test_per_job_csv(self, tiny_suite, tmp_path):
        wl, suite = tiny_suite
        path = tmp_path / "jobs.csv"
        export_per_job_csv(suite["cons.nomax"], path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(wl)
        header = lines[0].split(",")
        assert "fst" in header and "miss_time" in header

    def test_cli_export(self, tmp_path, capsys):
        rc = main([
            "export", "--scale", "0.02", "--seed", "1",
            "--policies", "cplant24.nomax.all",
            "--json", str(tmp_path / "s.json"),
            "--csv", str(tmp_path / "s.csv"),
        ])
        assert rc == 0
        assert (tmp_path / "s.json").exists()
        assert (tmp_path / "s.csv").exists()

    def test_cli_export_requires_target(self, capsys):
        rc = main(["export", "--scale", "0.02", "--seed", "1",
                   "--policies", "cplant24.nomax.all"])
        assert rc == 1


class TestAnalysis:
    def test_estimate_quality_fractions_sum(self):
        wl = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=5)
        est = estimate_quality(wl)
        total = est.exact_fraction + est.over_fraction + est.under_fraction
        assert total == pytest.approx(1.0, abs=1e-9)
        assert est.median_factor_short > est.median_factor_long

    def test_user_activity_zipf(self):
        wl = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=5)
        usr = user_activity(wl)
        assert usr.n_users > 10
        assert 0.0 < usr.gini_work <= 1.0
        assert usr.top5_work_share > 5 / usr.n_users  # concentrated

    def test_arrival_pattern_work_hours_bias(self):
        wl = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=5)
        arr = arrival_pattern(wl)
        assert arr.work_hours_fraction > 10 / 24  # above uniform
        assert 0 <= arr.busiest_hour < 24

    def test_empty_workload(self):
        wl = Workload([], system_size=8)
        assert arrival_pattern(wl).jobs_per_day == 0.0
        assert user_activity(wl).n_users == 0

    def test_analyze_and_render(self):
        wl = Workload([make_job(id=1, submit=9 * 3600.0, nodes=2,
                                runtime=100.0, wcl=200.0)], system_size=8)
        out = analyze(wl)
        assert set(out) == {"describe", "estimates", "arrivals", "users"}
        txt = render_analysis(wl)
        assert "estimate quality" in txt
        assert "user population" in txt

    def test_cli_analyze(self, capsys):
        rc = main(["analyze", "--scale", "0.02", "--seed", "1"])
        assert rc == 0
        assert "arrival pattern" in capsys.readouterr().out
