"""CLI tests (argument wiring and output plumbing, small scales only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        sub = {a.dest: a for a in parser._actions}["command"]
        assert set(sub.choices) == {
            "generate", "run", "compare", "figures", "tables", "policies",
            "analyze", "export", "sweep", "scenarios", "paper", "trace",
            "matrix", "cache", "serve",
        }

    def test_run_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "bogus"])


class TestCommands:
    def test_policies_lists_all_nine(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for key in ("cplant24.nomax.all", "cons.72max", "consdyn.nomax"):
            assert key in out

    def test_policies_lists_the_frontier(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for key in ("easy.srpt", "fsp.easy", "rr.user"):
            assert key in out

    def test_matrix_writes_text_and_json(self, tmp_path, capsys):
        argv = [
            "matrix", "--policies", "fcfs.nobackfill,rr.user",
            "--orders", "fairshare,fcfs", "--scale", "0.01", "--seed", "3",
            "--no-cache", "--quiet",
            "--out", str(tmp_path / "matrix.txt"),
            "--json", str(tmp_path / "matrix.json"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "policy x reference-order fairness matrix" in out
        assert "2 policies x 2 orders x 1 scenarios" in out
        text = (tmp_path / "matrix.txt").read_text()
        assert "rr.user" in text
        import json as _json

        doc = _json.loads((tmp_path / "matrix.json").read_text())
        assert doc["config"]["policies"] == ["fcfs.nobackfill", "rr.user"]
        assert "cplant-baseline" in doc["matrix"]

    def test_matrix_rejects_unknown_axis_values(self, capsys):
        assert main(["matrix", "--orders", "bogus", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown reference order" in err
        assert main(["matrix", "--policies", "nope", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown policy" in err

    def test_generate_writes_swf(self, tmp_path, capsys):
        out = tmp_path / "t.swf"
        rc = main(["generate", "--scale", "0.02", "--seed", "1",
                   "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert out.read_text().startswith("; Version: 2")

    def test_run_prints_metrics(self, capsys):
        rc = main(["run", "--scale", "0.02", "--seed", "1",
                   "--policy", "cplant24.nomax.all"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg turnaround" in out
        assert "percent unfair" in out

    def test_run_from_swf(self, tmp_path, capsys):
        swf = tmp_path / "t.swf"
        main(["generate", "--scale", "0.02", "--seed", "1", "--out", str(swf)])
        capsys.readouterr()
        rc = main(["run", "--swf", str(swf), "--policy", "easy.fcfs"])
        assert rc == 0
        assert "utilization" in capsys.readouterr().out

    def test_compare_subset(self, capsys):
        rc = main(["compare", "--scale", "0.02", "--seed", "1",
                   "--policies", "cplant24.nomax.all,cons.nomax"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cons.nomax" in out

    def test_tables(self, capsys):
        rc = main(["tables", "--scale", "0.02", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out


class TestScenariosCommands:
    def test_list_names_every_registered_scenario(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_describe_shows_recipe(self, capsys):
        assert main(["scenarios", "describe", "heavy-tail-runtimes"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "runtime_tail" in out

    def test_run_prints_standard_report(self, capsys):
        rc = main(["scenarios", "run", "wide-jobs", "--seed", "1",
                   "--set", "n_jobs=80", "--policies", "easy.fcfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy: easy.fcfs" in out
        assert "percent unfair" in out

    def test_run_unknown_scenario_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["scenarios", "run", "bogus-regime"])

    def test_run_unknown_param_fails_fast(self):
        with pytest.raises(ValueError, match="no parameter"):
            main(["scenarios", "run", "wide-jobs", "--set", "bogus=1"])

    def test_export_writes_swf(self, tmp_path, capsys):
        out = tmp_path / "scen.swf"
        rc = main(["scenarios", "export", "bursty-arrivals", "--seed", "2",
                   "--set", "scale=0.02", "--out", str(out)])
        assert rc == 0
        assert out.read_text().startswith("; Version: 2")
