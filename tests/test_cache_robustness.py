"""Cache crash-consistency and repair: interrupted puts, integrity
verification, tmp-orphan sweeping, and the verify/prune maintenance ops."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignCache, CampaignSpec, cell_key
from repro.campaign import faults
from repro.campaign.faults import FaultPlan, FaultRule, InjectedCrashError


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


def _cell():
    spec = CampaignSpec.from_dict({
        "name": "cache-robustness",
        "policies": ["easy.fcfs"],
        "workloads": [{"kind": "random", "n_jobs": 10, "system_size": 8,
                       "seeds": [1]}],
    })
    return spec.expand()[0]


METRICS_V1 = {"summary.avg_wait": 1.0}
METRICS_V2 = {"summary.avg_wait": 2.0}


class TestCrashConsistency:
    def test_interrupted_put_keeps_old_entry_and_orphan_is_reaped(
            self, tmp_path):
        """The satellite scenario end to end: a put dies mid-write, the
        old entry survives untorn, and the next open sweeps the orphan."""
        cell = _cell()
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        cache.put(key, cell, METRICS_V1)

        faults.install(FaultPlan(rules=(
            FaultRule(site="cache.put", kind="crash", tokens=(key,)),
        )))
        with pytest.raises(InjectedCrashError):
            cache.put(key, cell, METRICS_V2)
        faults.clear()

        # the old entry survives and reads back whole — no torn record
        assert cache.get(key) == METRICS_V1
        # the dead writer left exactly one tmp orphan behind
        orphans = list(tmp_path.glob("??/*.tmp"))
        assert len(orphans) == 1

        # ... which the next open (grace elapsed) reaps
        reopened = CampaignCache(tmp_path, tmp_grace=0.0)
        assert list(tmp_path.glob("??/*.tmp")) == []
        assert reopened.get(key) == METRICS_V1

    def test_fresh_tmp_files_survive_the_grace_window(self, tmp_path):
        cell = _cell()
        cache = CampaignCache(tmp_path)
        cache.put(cell_key(cell), cell, METRICS_V1)
        live = tmp_path / cell_key(cell)[:2] / "writer-in-flight.tmp"
        live.write_text("partial")
        CampaignCache(tmp_path, tmp_grace=3600.0)
        assert live.exists()  # presumed owned by a live concurrent writer

    def test_corrupt_fault_lands_a_truncated_entry(self, tmp_path):
        cell = _cell()
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        faults.install(FaultPlan(rules=(
            FaultRule(site="cache.put", kind="corrupt", tokens=(key,)),
        )))
        cache.put(key, cell, METRICS_V1)
        faults.clear()
        assert cache.get(key) is None  # truncated entry reads as a miss
        assert cache.stats.corrupt == 1


class TestIntegrity:
    def test_get_rejects_tampered_metrics(self, tmp_path):
        cell = _cell()
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        path = cache.put(key, cell, METRICS_V1)
        doc = json.loads(path.read_text())
        doc["metrics"]["summary.avg_wait"] = 99.0  # bit-flip, digest stale
        path.write_text(json.dumps(doc, sort_keys=True) + "\n")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_verify_classifies_the_store(self, tmp_path):
        cell = _cell()
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        cache.put(key, cell, METRICS_V1)

        bad = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{ not json")
        orphan = tmp_path / "ab" / "dead.tmp"
        orphan.write_text("partial")

        audit = cache.verify()
        assert audit.n_entries == 2
        assert audit.n_ok == 1
        assert audit.n_corrupt == 1
        assert audit.n_tmp == 1
        assert audit.corrupt[0][1] == "not JSON"
        assert not audit.ok

    def test_prune_removes_corrupt_and_reaps_tmp(self, tmp_path):
        cell = _cell()
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        cache.put(key, cell, METRICS_V1)
        bad = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("truncated{")
        (tmp_path / "ab" / "dead.tmp").write_text("partial")

        audit = cache.prune()
        assert audit.n_corrupt == 1 and audit.n_tmp == 1
        assert not bad.exists()
        assert list(tmp_path.glob("??/*.tmp")) == []
        assert cache.get(key) == METRICS_V1  # sound entries untouched

    def test_prune_quarantine_moves_instead_of_deleting(self, tmp_path):
        cache = CampaignCache(tmp_path)
        bad = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{ not json")
        cache.prune(quarantine=True)
        assert not bad.exists()
        assert (tmp_path / "quarantine" / bad.name).exists()


class TestCLI:
    def test_cache_verify_and_prune_commands(self, tmp_path, capsys):
        from repro.cli import main

        cell = _cell()
        cache = CampaignCache(tmp_path)
        cache.put(cell_key(cell), cell, METRICS_V1)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "1 entries — 1 ok, 0 corrupt" in capsys.readouterr().out

        bad = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{ not json")
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        assert "corrupt" in capsys.readouterr().out

        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        assert not bad.exists()
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0

    def test_cache_verify_json_output(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "verify", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_entries"] == 0 and doc["corrupt"] == []


def test_schema_bump_reads_as_miss_not_corrupt(tmp_path):
    """Entries from another schema are invalidation, not damage — verify
    must not flag them and get() must count a plain miss."""
    from repro.campaign.cache import CACHE_SCHEMA

    cell = _cell()
    key = cell_key(cell)
    cache = CampaignCache(tmp_path)
    path = cache.put(key, cell, METRICS_V1)
    doc = json.loads(path.read_text())
    doc["schema"] = CACHE_SCHEMA - 1
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")

    assert cache.get(key) is None
    assert cache.stats.corrupt == 0
    audit = cache.verify()
    assert audit.n_other_schema == 1 and audit.n_corrupt == 0
