"""Edge cases and failure injection for the engine and schedulers."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy
from repro.core.job import JobState
from repro.core.results import SimulationResult
from repro.sched.base import BaseScheduler
from repro.sched.conservative import ConservativeScheduler
from repro.sched.dynamic import DynamicReservationScheduler
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from tests.conftest import make_job


class TestZeroAndTinyJobs:
    @pytest.mark.parametrize("factory", [
        lambda: NoBackfillScheduler("fcfs"),
        lambda: NoGuaranteeScheduler(),
        lambda: ConservativeScheduler(),
        lambda: DynamicReservationScheduler(),
    ])
    def test_zero_runtime_jobs(self, factory):
        """Aborted trace jobs have runtime 0; they must flow through every
        policy without wedging the event loop."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=4, runtime=0.0, wcl=60.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=100.0, wcl=100.0),
            make_job(id=3, submit=1.0, nodes=4, runtime=0.0, wcl=60.0),
        ]
        res = Engine(Cluster(8), factory(), jobs, validate=True).run()
        by = res.job_by_id()
        assert by[1].end_time == by[1].start_time
        assert all(j.state is JobState.COMPLETED for j in res.jobs)

    def test_simultaneous_identical_arrivals(self):
        jobs = [make_job(id=i, submit=100.0, nodes=4, runtime=50.0)
                for i in range(1, 8)]
        res = Engine(Cluster(8), NoGuaranteeScheduler(), jobs,
                     validate=True).run()
        starts = sorted(j.start_time for j in res.jobs)
        # two at a time on an 8-node machine
        assert starts[0] == starts[1] == 100.0
        assert len(res.jobs) == 7

    def test_empty_workload(self):
        res = Engine(Cluster(8), NoBackfillScheduler("fcfs"), []).run()
        assert res.jobs == []
        assert res.makespan == 0.0


class TestMisbehavingScheduler:
    class GreedyLiar(BaseScheduler):
        """Starts jobs without checking capacity: the cluster must throw."""

        def schedule(self, now, reason):
            for job in list(self.queue):
                self.start(job, now)

    def test_overallocation_surfaces(self):
        jobs = [make_job(id=1, nodes=6), make_job(id=2, nodes=6)]
        with pytest.raises(Exception, match="nodes"):
            Engine(Cluster(8), self.GreedyLiar(), jobs).run()

    class Sitter(BaseScheduler):
        """Never starts anything: the engine must detect the wedge."""

        def schedule(self, now, reason):
            return

    def test_never_starting_scheduler_detected(self):
        jobs = [make_job(id=1)]
        engine = Engine(Cluster(8), self.Sitter(), jobs)
        with pytest.raises(RuntimeError, match="stranded"):
            engine.run()


class TestResults:
    def test_result_rejects_incomplete_jobs(self):
        job = make_job(id=1)
        with pytest.raises(ValueError, match="did not complete"):
            SimulationResult(jobs=[job], cluster_size=8, end_time=0.0)

    def test_fst_series_missing(self):
        res = Engine(Cluster(8), NoBackfillScheduler("fcfs"),
                     [make_job(id=1)]).run()
        with pytest.raises(KeyError, match="observer"):
            res.fst("hybrid")

    def test_total_work_accounts_kills(self):
        jobs = [make_job(id=1, nodes=4, runtime=1000.0, wcl=100.0)]
        res = Engine(Cluster(8), NoBackfillScheduler("fcfs"), jobs,
                     kill_policy=KillPolicy.AT_WCL).run()
        assert res.total_work == pytest.approx(400.0)


class TestDecayTick:
    def test_decay_ticks_survive_simulation_span(self):
        """Multi-day gaps between jobs: the decay tick chain must not die
        early (it reschedules while events remain)."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, user=1),
            make_job(id=2, submit=5 * 86400.0, nodes=8, runtime=100.0, user=2),
        ]
        sched = NoGuaranteeScheduler()
        Engine(Cluster(8), sched, jobs).run()
        # user 1's usage decayed across the 5-day gap (query past the last
        # settle point, which is the final decay tick)
        last = sched.tracker._last_settle
        assert sched.tracker.usage_of(1, last) < 800.0 * 0.2

    def test_no_decay_events_when_factor_is_one(self):
        sched = NoBackfillScheduler("fcfs", decay_factor=1.0)
        engine = Engine(Cluster(8), sched, [make_job(id=1)])
        res = engine.run()
        # only one arrival + one completion processed
        assert res.events_processed == 2


class TestConservativeEdges:
    def test_wide_then_narrow_same_instant(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=3, submit=0.0, nodes=1, runtime=5.0),
        ]
        res = Engine(Cluster(8), ConservativeScheduler(), jobs,
                     validate=True).run()
        assert res.job_by_id()[3].start_time >= 0.0

    def test_many_overruns_at_once(self):
        # four jobs all exceeding their estimates simultaneously
        jobs = [make_job(id=i, submit=0.0, nodes=2, runtime=1000.0, wcl=50.0)
                for i in range(1, 5)]
        jobs.append(make_job(id=9, submit=10.0, nodes=8, runtime=20.0, wcl=20.0))
        res = Engine(Cluster(8), ConservativeScheduler(), jobs,
                     validate=True).run()
        assert res.job_by_id()[9].start_time >= 1000.0

    def test_overrun_extension_configurable(self):
        sched = ConservativeScheduler(overrun_extension=10.0)
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=500.0, wcl=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=10.0, wcl=10.0),
        ]
        res = Engine(Cluster(8), sched, jobs, validate=True).run()
        assert res.job_by_id()[2].start_time == 500.0
