"""Tests for wait/turnaround/slowdown/utilization/makespan (Section 3.2)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.metrics import standard as S
from repro.sched.nobackfill import NoBackfillScheduler
from tests.conftest import make_job


def completed(id=1, submit=0.0, start=10.0, end=110.0, nodes=4):
    job = make_job(id=id, submit=submit, nodes=nodes,
                   runtime=end - start, wcl=end - start)
    job.state = job.state.COMPLETED
    job.start_time = start
    job.end_time = end
    return job


class TestUserMetrics:
    def test_wait_times(self):
        jobs = [completed(1, submit=0.0, start=30.0, end=50.0)]
        assert S.wait_times(jobs)[0] == 30.0
        assert S.average_wait(jobs) == 30.0

    def test_turnaround_equation1(self):
        jobs = [
            completed(1, submit=0.0, start=0.0, end=100.0),
            completed(2, submit=50.0, start=100.0, end=250.0),
        ]
        # (100 + 200) / 2
        assert S.average_turnaround(jobs) == 150.0

    def test_slowdown_bounded(self):
        short = completed(1, submit=0.0, start=100.0, end=101.0)
        # executed 1s; bound 10 prevents a 101x explosion
        assert S.slowdowns([short], bound=10.0)[0] == pytest.approx(10.1)

    def test_incomplete_jobs_rejected(self):
        with pytest.raises(ValueError, match="completed"):
            S.average_wait([make_job()])

    def test_empty_lists(self):
        assert S.average_turnaround([]) == 0.0
        assert S.average_wait([]) == 0.0
        assert S.average_slowdown([]) == 0.0


class TestSystemMetrics:
    def test_makespan_equation3(self):
        jobs = [
            completed(1, start=50.0, end=150.0),
            completed(2, start=100.0, end=400.0),
        ]
        assert S.makespan(jobs) == 350.0

    def test_utilization_equation2(self):
        # one 4-node job for 100s on an 8-node machine over a 100s makespan
        jobs = [completed(1, start=0.0, end=100.0, nodes=4)]
        assert S.utilization(jobs, system_size=8) == 0.5

    def test_utilization_full_packing(self):
        jobs = [
            completed(1, start=0.0, end=100.0, nodes=4),
            completed(2, start=0.0, end=100.0, nodes=4),
        ]
        assert S.utilization(jobs, system_size=8) == 1.0

    def test_empty(self):
        assert S.makespan([]) == 0.0
        assert S.utilization([], 8) == 0.0


class TestSummarize:
    def test_summary_from_simulation(self, small_workload):
        res = Engine(
            Cluster(small_workload.system_size),
            NoBackfillScheduler("fcfs"),
            small_workload.jobs,
        ).run()
        s = S.summarize(res)
        assert s.n_jobs == len(small_workload)
        assert 0.0 < s.utilization <= 1.0
        assert s.avg_turnaround >= s.avg_wait
        assert s.avg_slowdown >= 1.0
        d = s.as_dict()
        assert set(d) == {"n_jobs", "avg_wait", "avg_turnaround",
                          "avg_slowdown", "utilization", "makespan"}
