"""Tests for the queue-depth observer."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.metrics.queue import QueueObserver, queue_series_to_arrays
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from tests.conftest import make_job


def run_with_queue(jobs, size=8, record=False, sched=None):
    obs = QueueObserver(record_series=record)
    res = Engine(Cluster(size), sched or NoBackfillScheduler("fcfs"),
                 jobs, observers=[obs]).run()
    return obs, res


class TestQueueStats:
    def test_no_queueing(self):
        obs, _ = run_with_queue([make_job(id=1, nodes=4, runtime=100.0)])
        st = obs.stats()
        assert st.time_avg_queue_length == 0.0
        assert st.max_queue_length == 1  # momentarily queued at arrival
        assert st.longest_busy_queue_spell == 0.0

    def test_known_backlog(self):
        # two full-machine jobs at t=0: the second queues for 100 s
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=100.0),
        ]
        obs, _ = run_with_queue(jobs)
        st = obs.stats()
        # queue holds 1 job (8 nodes) over [0, 100) of the 200 s span
        assert st.time_avg_queue_length == pytest.approx(0.5)
        assert st.time_avg_queued_nodes == pytest.approx(4.0)
        assert st.max_queued_nodes == 8
        assert st.longest_busy_queue_spell == pytest.approx(100.0)

    def test_spell_resets_when_queue_drains(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=50.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=50.0),   # waits 50
            make_job(id=3, submit=1000.0, nodes=8, runtime=50.0),
            make_job(id=4, submit=1000.0, nodes=8, runtime=50.0),  # waits 50
        ]
        obs, _ = run_with_queue(jobs)
        assert obs.stats().longest_busy_queue_spell == pytest.approx(50.0)

    def test_series_recording(self):
        jobs = [make_job(id=i, submit=float(i), nodes=8, runtime=10.0)
                for i in range(1, 4)]
        obs, _ = run_with_queue(jobs, record=True)
        t, lens, nodes = queue_series_to_arrays(obs.series)
        assert len(t) == len(lens) == len(nodes)
        assert lens.max() >= 1
        assert (t[1:] >= t[:-1]).all()

    def test_empty_series_helper(self):
        t, lens, n = queue_series_to_arrays([])
        assert len(t) == 0

    def test_collect_into_result(self):
        jobs = [make_job(id=1, nodes=4, runtime=10.0)]
        obs, res = run_with_queue(jobs)
        assert "queue_stats" in res.series

    def test_with_real_scheduler(self, heavy_workload):
        obs, _ = run_with_queue(
            heavy_workload.jobs, size=heavy_workload.system_size,
            sched=NoGuaranteeScheduler(),
        )
        st = obs.stats()
        assert st.time_avg_queue_length > 0.0
        assert st.max_queue_length >= 1
