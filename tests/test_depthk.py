"""Tests for reservation-depth-k backfilling."""

import math

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.sched.depthk import DepthKScheduler
from repro.sched.dynamic import DynamicReservationScheduler
from repro.sched.easy import EasyBackfillScheduler
from tests.conftest import make_job


def simulate(sched, jobs, size=8):
    return Engine(Cluster(size), sched, jobs, validate=True).run()


def scenario():
    """Running 4-wide job; queued: wide head, long narrow, short narrow."""
    return [
        make_job(id=1, submit=0.0, nodes=4, runtime=100.0),
        make_job(id=2, submit=10.0, nodes=8, runtime=100.0),   # head
        make_job(id=3, submit=20.0, nodes=4, runtime=500.0),   # long narrow
        make_job(id=4, submit=21.0, nodes=4, runtime=50.0),    # short narrow
    ]


class TestDepthSemantics:
    def test_depth0_is_greedy_no_guarantee(self):
        res = simulate(DepthKScheduler(depth=0, priority="fcfs"), scenario())
        by = res.job_by_id()
        # nothing protects the wide job: the long narrow one jumps in
        assert by[3].start_time == 20.0
        assert by[2].start_time >= 500.0

    def test_depth1_matches_easy_protection(self):
        res = simulate(DepthKScheduler(depth=1, priority="fcfs"), scenario())
        by = res.job_by_id()
        # head reserved at t=100; the long narrow job would delay it
        assert by[2].start_time == 100.0
        assert by[3].start_time >= 100.0
        # the short one fits in the hole before the reservation
        assert by[4].start_time == 21.0

    def test_depth1_equals_easy_on_scenario(self):
        a = simulate(DepthKScheduler(depth=1, priority="fcfs"), scenario())
        b = simulate(EasyBackfillScheduler(priority="fcfs"), scenario())
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja.start_time == jb.start_time

    def test_depth_inf_equals_dynamic(self):
        jobs = [make_job(id=i, submit=i * 7.0, nodes=(i % 5) + 2,
                         runtime=60.0 + 10 * i, user=(i % 3) + 1)
                for i in range(1, 25)]
        a = simulate(DepthKScheduler(depth=math.inf), jobs, size=16)
        b = simulate(DynamicReservationScheduler(), jobs, size=16)
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja.start_time == pytest.approx(jb.start_time)

    def test_deeper_protects_more(self):
        """With depth 2 the long narrow job (rank 2 after head) gets a
        reservation too, so nothing can cut in front of it."""
        res1 = simulate(DepthKScheduler(depth=2, priority="fcfs"), scenario())
        by = res1.job_by_id()
        assert by[2].start_time == 100.0
        assert by[3].start_time == 200.0  # right behind the head

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DepthKScheduler(depth=-1)
        with pytest.raises(ValueError):
            DepthKScheduler(depth=2.5)


class TestDepthKInvariants:
    @pytest.mark.parametrize("depth", [0, 1, 2, 4, math.inf])
    def test_completes_heavy_workload(self, depth, heavy_workload):
        res = Engine(
            Cluster(heavy_workload.system_size),
            DepthKScheduler(depth=depth),
            heavy_workload.jobs,
            validate=True,
        ).run()
        assert len(res.jobs) == len(heavy_workload)

    def test_overrun_handled(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=500.0, wcl=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, wcl=50.0),
        ]
        res = simulate(DepthKScheduler(depth=2), jobs)
        assert res.job_by_id()[2].start_time >= 500.0

    def test_registry_entries(self):
        from repro.sched.registry import get_policy

        sched = get_policy("depth2.fairshare").make_scheduler()
        assert isinstance(sched, DepthKScheduler)
        assert sched.depth == 2
