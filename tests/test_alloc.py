"""Tests for the CPA allocation substrate."""

import pytest

from repro.alloc.allocators import (
    BestFitAllocator,
    FirstFitAllocator,
    RandomAllocator,
    SpanMinimizingAllocator,
    _free_intervals,
)
from repro.alloc.metrics import (
    average_span_ratio,
    fragmentation_of,
    placement_stats,
)
from repro.alloc.placed_cluster import PlacedCluster, Placement
from repro.core.cluster import AllocationError
from repro.core.engine import Engine
from repro.sched.noguarantee import NoGuaranteeScheduler
from tests.conftest import make_job

import numpy as np


class TestFreeIntervals:
    def test_single_run(self):
        assert _free_intervals(np.array([3, 4, 5])) == [(0, 3)]

    def test_multiple_runs(self):
        out = _free_intervals(np.array([0, 1, 5, 6, 7, 9]))
        assert out == [(0, 2), (2, 3), (5, 1)]

    def test_empty(self):
        assert _free_intervals(np.array([], dtype=np.int64)) == []


class TestStrategies:
    FREE = [0, 1, 2, 5, 6, 7, 8, 9, 15]  # runs of 3, 5, 1

    def test_first_fit_prefers_lowest_fitting_run(self):
        assert FirstFitAllocator().select(self.FREE, 2) == [0, 1]
        assert FirstFitAllocator().select(self.FREE, 4) == [5, 6, 7, 8]

    def test_first_fit_fallback_when_fragmented(self):
        # no run holds 7; greedy from the left
        assert FirstFitAllocator().select(self.FREE, 7) == [0, 1, 2, 5, 6, 7, 8]

    def test_best_fit_prefers_tightest_run(self):
        # a 1-wide request should take the singleton run at 15
        assert BestFitAllocator().select(self.FREE, 1) == [15]
        # a 3-wide request exactly fits the 3-run
        assert BestFitAllocator().select(self.FREE, 3) == [0, 1, 2]

    def test_span_min_finds_compact_window(self):
        assert SpanMinimizingAllocator().select(self.FREE, 4) == [5, 6, 7, 8]
        # 6 nodes: window [2..9] (span 8) beats [0..8] (span 9... compare)
        sel = SpanMinimizingAllocator().select(self.FREE, 6)
        assert len(sel) == 6
        span = sel[-1] - sel[0] + 1
        # brute-force optimum
        free = sorted(self.FREE)
        best = min(free[i + 5] - free[i] + 1 for i in range(len(free) - 5))
        assert span == best

    def test_random_is_deterministic_per_seed(self):
        a = RandomAllocator(seed=3).select(self.FREE, 4)
        b = RandomAllocator(seed=3).select(self.FREE, 4)
        assert a == b
        assert len(set(a)) == 4

    def test_insufficient_nodes_raises(self):
        with pytest.raises(ValueError, match="only"):
            FirstFitAllocator().select([1, 2], 3)

    def test_bad_count_raises(self):
        with pytest.raises(ValueError):
            FirstFitAllocator().select([1, 2], 0)


class TestPlacedCluster:
    def test_lifecycle_tracks_nodes(self):
        c = PlacedCluster(8)
        a = make_job(id=1, nodes=3)
        c.start(a, 0.0)
        assert c.nodes_of(a) == [0, 1, 2]
        assert c.free_node_indices() == [3, 4, 5, 6, 7]
        c.finish(a, 10.0)
        assert c.free_node_indices() == list(range(8))
        assert len(c.placements) == 1
        assert c.placements[0].span == 3

    def test_fragmentation_emerges_and_heals(self):
        c = PlacedCluster(8)
        a, b, d = (make_job(id=i, nodes=2) for i in (1, 2, 3))
        c.start(a, 0.0)  # 0,1
        c.start(b, 0.0)  # 2,3
        c.start(d, 0.0)  # 4,5
        c.finish(b, 1.0)  # hole at 2,3
        assert fragmentation_of(c.free_node_indices()) > 0.0
        wide = make_job(id=4, nodes=4)
        c.start(wide, 2.0)  # must use 2,3,6,7 -> non-contiguous
        assert c.nodes_of(wide) == [2, 3, 6, 7]
        c.check_invariants()

    def test_nodes_of_requires_running(self):
        c = PlacedCluster(8)
        with pytest.raises(AllocationError):
            c.nodes_of(make_job(id=1))

    def test_drop_in_for_engine(self, small_workload):
        cluster = PlacedCluster(small_workload.system_size,
                                SpanMinimizingAllocator())
        Engine(cluster, NoGuaranteeScheduler(), small_workload.jobs,
               validate=True).run()
        assert len(cluster.placements) == len(small_workload)
        stats = placement_stats(cluster.placements)
        assert stats.mean_span_ratio >= 1.0
        assert 0.0 <= stats.contiguous_fraction <= 1.0


class TestAllocMetrics:
    def test_fragmentation_bounds(self):
        assert fragmentation_of([]) == 0.0
        assert fragmentation_of([4, 5, 6]) == 0.0
        frag = fragmentation_of([0, 2, 4, 6])
        assert frag == pytest.approx(0.75)

    def test_span_ratio_contiguous(self):
        p = Placement(1, (3, 4, 5), 0.0, 10.0)
        assert average_span_ratio([p]) == 1.0

    def test_span_ratio_scattered(self):
        p = Placement(1, (0, 9), 0.0, 10.0)
        assert average_span_ratio([p]) == 5.0

    def test_stats_weighting(self):
        tight = Placement(1, (0, 1), 0.0, 1.0)          # tiny work
        loose = Placement(2, (0, 7), 0.0, 1000.0)       # big work, ratio 4
        st = placement_stats([tight, loose])
        assert st.work_weighted_span_ratio > st.mean_span_ratio / 2
        assert st.n_placements == 2

    def test_stats_empty(self):
        st = placement_stats([])
        assert st.n_placements == 0
        assert st.mean_span_ratio == 1.0
