"""Tests for the fairness-metric extensions (alternative bases and the
load-weighted aggregate the paper mentions)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.metrics.fairness import HybridFSTObserver, fairness_stats
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.workload.generator import random_workload
from tests.conftest import make_job


class TestFcfsBasis:
    def test_basis_validation(self):
        with pytest.raises(ValueError, match="basis"):
            HybridFSTObserver(basis="seniority")

    def test_fcfs_basis_orders_by_arrival(self):
        """Under the FCFS basis, a light user's later job does NOT jump
        the hypothetical queue."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, user=1),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, user=2),
            make_job(id=3, submit=20.0, nodes=8, runtime=50.0, user=3),
        ]

        def run(basis):
            sched = NoGuaranteeScheduler()
            sched.tracker._usage[2] = 1e9  # user 2 very heavy
            obs = HybridFSTObserver(basis=basis)
            res = Engine(Cluster(8), sched, jobs, observers=[obs]).run()
            key = "fst_hybrid" if basis == "fairshare" else "fst_hybrid_fcfs"
            return res.series[key]

        fair = run("fairshare")
        fcfs = run("fcfs")
        # fairshare basis: job 3 (light user) goes before heavy job 2
        assert fair[3] == 100.0
        # FCFS basis: job 2 keeps its place, job 3 queues behind it
        assert fcfs[2] == 100.0
        assert fcfs[3] == 150.0

    def test_series_key_separation(self):
        jobs = [make_job(id=1, runtime=10.0)]
        obs_a = HybridFSTObserver(basis="fairshare")
        obs_b = HybridFSTObserver(basis="fcfs")
        res = Engine(Cluster(8), NoGuaranteeScheduler(), jobs,
                     observers=[obs_a, obs_b]).run()
        assert "fst_hybrid" in res.series
        assert "fst_hybrid_fcfs" in res.series

    def test_both_bases_agree_on_single_user_fcfs_load(self):
        wl = random_workload(40, system_size=16, seed=6, load=1.0, n_users=1)
        obs_a = HybridFSTObserver(basis="fairshare")
        obs_b = HybridFSTObserver(basis="fcfs")
        Engine(Cluster(16), NoGuaranteeScheduler(), wl.jobs,
               observers=[obs_a, obs_b]).run()
        # one user: fairshare order degenerates to FCFS
        assert obs_a.fst == obs_b.fst


class TestLoadWeightedUnfairness:
    def _completed(self, id, start, nodes, runtime):
        j = make_job(id=id, submit=0.0, nodes=nodes, runtime=runtime)
        j.state = j.state.COMPLETED
        j.start_time, j.end_time = start, start + runtime
        return j

    def test_percent_unfair_load_weighs_big_jobs(self):
        small_unfair = self._completed(1, start=100.0, nodes=1, runtime=10.0)
        big_fair = self._completed(2, start=0.0, nodes=100, runtime=1000.0)
        fst = {1: 0.0, 2: 0.0}
        st = fairness_stats([small_unfair, big_fair], fst)
        assert st.percent_unfair == 0.5
        # 10 proc-s of 100,010 total
        assert st.percent_unfair_load == pytest.approx(10.0 / 100_010.0)

    def test_all_unfair_load_is_one(self):
        jobs = [self._completed(i, start=50.0, nodes=2, runtime=10.0)
                for i in (1, 2)]
        st = fairness_stats(jobs, {1: 0.0, 2: 0.0})
        assert st.percent_unfair_load == 1.0

    def test_as_dict_includes_load_field(self):
        st = fairness_stats([], {})
        assert "percent_unfair_load" in st.as_dict()
