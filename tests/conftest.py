"""Shared fixtures: small deterministic jobs and workloads.

Also registers the hypothesis profiles: ``ci`` (used by the workflow via
``HYPOTHESIS_PROFILE=ci``) prints the ``@reproduce_failure`` blob on any
failing example so a CI-only shrink is replayable locally.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.job import Job
from repro.workload.generator import random_workload

settings.register_profile("dev", print_blob=True)
settings.register_profile("ci", print_blob=True, derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def make_job(
    id: int = 1,
    submit: float = 0.0,
    nodes: int = 1,
    runtime: float = 100.0,
    wcl: float | None = None,
    user: int = 1,
    **kw,
) -> Job:
    """Terse job factory for tests."""
    return Job(
        id=id,
        submit_time=submit,
        nodes=nodes,
        runtime=runtime,
        wcl=wcl if wcl is not None else runtime,
        user_id=user,
        **kw,
    )


@pytest.fixture
def job_factory():
    return make_job


@pytest.fixture
def small_workload():
    """120 jobs on 32 nodes at moderate load; completes in well under 1 s."""
    return random_workload(120, system_size=32, seed=42, load=0.9)


@pytest.fixture
def heavy_workload():
    """250 jobs on 64 nodes at high load: real queueing dynamics."""
    return random_workload(250, system_size=64, seed=11, load=1.3)
