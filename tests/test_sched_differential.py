"""Differential tests: schedulers vs. an independent naive simulator.

In the style of ``test_profile_reference.py``: the production schedulers
run on event queues, reservation profiles, and cached orderings, so each
is pitted against a brute-force reference that shares none of that code.
The reference re-scans the whole world at every step — no events, no
profiles, no incremental state — and therefore cannot share a bug with
the optimized stack.  Any divergence in a start time fails with the job
id.

Also here: the exact-fairness differential the fairness matrix's shape
check relies on — FCFS-no-backfill evaluated under the FCFS reference
order is *perfectly* fair with honest estimates, because the
hypothetical no-backfill FCFS schedule the hybrid FST is measured
against IS the real schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.core.job import Job
from repro.experiments.runner import run_policy
from repro.sched.nobackfill import NoBackfillScheduler
from repro.workload.model import Workload
from repro.workload.transforms import split_by_runtime_limit

SIZE = 16


def job_lists(max_jobs=20, size=SIZE):
    """Honest-estimate job batches (wcl >= runtime, so no overruns)."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5000.0),   # submit
            st.integers(min_value=1, max_value=size),     # nodes
            st.floats(min_value=1.0, max_value=2000.0),   # runtime
            st.floats(min_value=1.0, max_value=4.0),      # wcl factor
            st.integers(min_value=1, max_value=4),        # user
        ),
        min_size=1, max_size=max_jobs,
    ).map(lambda rows: [
        Job(id=i + 1, submit_time=s, nodes=n, runtime=r,
            wcl=max(r * f, 1.0), user_id=u)
        for i, (s, n, r, f, u) in enumerate(rows)
    ])


def naive_nobackfill(jobs, size, priority):
    """Brute-force strict no-backfill simulator.

    ``priority(job)`` keys the waiting queue; only the head may start.
    Chunk chains are honored the way the engine honors them: a successor
    chunk is resubmitted *as a fresh arrival* at its predecessor's
    completion instant, so the scheduling pass triggered by the
    completion itself runs without it and a second pass follows.
    Returns ``{job id: start time}``.
    """
    succ = {}
    initial = []
    for pos, j in enumerate(jobs):
        if j.is_chunk and j.chunk_index > 0:
            succ[(j.parent_id, j.chunk_index)] = j
        else:
            initial.append((j, pos))

    # same-time arrival events fire in event-push order, which is the
    # job-list position — not job id (chunked lists interleave the two)
    initial.sort(key=lambda e: (e[0].submit_time, e[1]))
    pending = [(j, j.submit_time) for j, _ in initial]
    # (job, effective submit time)
    waiting = []    # (job, submitted at)
    running = []    # (end, job)
    starts = {}
    start_seq = {}  # order jobs started in — completion-event push order
    free = size
    t = 0.0

    def schedule_pass():
        # start from the head while it fits; first blocked job blocks all
        nonlocal free
        waiting.sort(key=lambda e: priority(e[0], e[1]))
        while waiting and waiting[0][0].nodes <= free:
            j, _ = waiting.pop(0)
            starts[j.id] = t
            start_seq[j.id] = len(start_seq)
            free -= j.nodes
            running.append((t + j.runtime, j))

    while pending or waiting or running:
        # mirror the engine's event order at one instant — the queue
        # sorts on (time, kind, seq) with COMPLETION < ARRIVAL, so all
        # simultaneous completions fire first as ONE batch with one
        # scheduling pass; then each arrival gets its own pass, original
        # arrivals (pushed at init) before chain successors (pushed
        # during the completion batch).
        # 1. completions at t free nodes together, then one pass
        done = [(end, j) for end, j in running if end <= t]
        successors = []
        if done:
            # completion events were pushed when their jobs started, so
            # the batch drains — and successors arrive — in start order
            for end, j in sorted(
                done, key=lambda e: (e[0], start_seq[e[1].id])
            ):
                free += j.nodes
                nxt = succ.get((j.parent_id, j.chunk_index + 1)) \
                    if j.is_chunk else None
                if nxt is not None:
                    successors.append(nxt)
            running = [(end, j) for end, j in running if end > t]
            schedule_pass()
        # 2. original arrivals at or before t, one pass per arrival
        due = [(j, s) for j, s in pending if s <= t]
        pending = [(j, s) for j, s in pending if s > t]
        for j, s in due:
            waiting.append((j, s))
            schedule_pass()
        # 3. successors arrive last, one pass per arrival
        for j in successors:
            waiting.append((j, t))
            schedule_pass()
        # 4. advance to the next completion or arrival
        horizon = [end for end, _ in running] + [s for _, s in pending]
        if not horizon:
            break
        t = min(horizon)
    return starts


def _starts(result) -> dict:
    return {j.id: j.start_time for j in result.jobs}


def _assert_same_starts(ours: dict, reference: dict) -> None:
    assert set(ours) == set(reference)
    for jid in sorted(ours):
        assert ours[jid] == pytest.approx(reference[jid], abs=1e-6), (
            f"job {jid}: scheduler started it at {ours[jid]}, "
            f"reference says {reference[jid]}"
        )


def _fcfs_key(job, submitted):
    return (submitted, job.id)


def _spt_key(job, submitted):
    return (job.wcl, submitted, job.id)


class TestAgainstNaiveSimulator:
    @given(jobs=job_lists())
    @settings(max_examples=40, deadline=None)
    def test_fcfs_nobackfill_matches_reference(self, jobs):
        wl = Workload(jobs, SIZE, name="diff")
        run = run_policy(wl, "fcfs.nobackfill", validate=True)
        _assert_same_starts(
            _starts(run.result), naive_nobackfill(jobs, SIZE, _fcfs_key)
        )

    @given(jobs=job_lists())
    @settings(max_examples=40, deadline=None)
    def test_spt_nobackfill_matches_reference(self, jobs):
        wl = Workload(jobs, SIZE, name="diff")
        run = run_policy(wl, "spt.nobackfill", validate=True)
        _assert_same_starts(
            _starts(run.result), naive_nobackfill(jobs, SIZE, _spt_key)
        )

    def test_fcfs_nobackfill_matches_reference_on_fixture(self, small_workload):
        run = run_policy(small_workload, "fcfs.nobackfill")
        reference = naive_nobackfill(
            small_workload.jobs, small_workload.system_size, _fcfs_key
        )
        _assert_same_starts(_starts(run.result), reference)

    @given(jobs=job_lists(max_jobs=12))
    @settings(max_examples=25, deadline=None)
    def test_srpt_nobackfill_matches_reference_with_chunking(self, jobs):
        """SRPT with chunk chains: remaining work = own estimate + the
        chain tail.  The reference computes tails by brute-force summing
        the later chunks of each chain, independent of the engine's
        precomputed oracle."""
        wl = split_by_runtime_limit(Workload(jobs, SIZE, name="diff"), 500.0)
        tails = {}
        by_parent = {}
        for j in wl.jobs:
            if j.is_chunk:
                by_parent.setdefault(j.parent_id, []).append(j)
        for chunks in by_parent.values():
            chunks.sort(key=lambda c: c.chunk_index)
            for i, c in enumerate(chunks):
                tails[c.id] = sum(x.wcl for x in chunks[i + 1:])

        def srpt_key(job, submitted):
            return (job.wcl + tails.get(job.id, 0.0), submitted, job.id)

        result = Engine(
            Cluster(SIZE), NoBackfillScheduler(priority="srpt"), wl.jobs,
            validate=True,
        ).run()
        _assert_same_starts(
            _starts(result), naive_nobackfill(wl.jobs, SIZE, srpt_key)
        )


class TestExactFairnessDifferential:
    """fcfs.nobackfill under the fcfs reference order: the hypothetical
    schedule equals the real one, so no job can miss its FST."""

    @given(jobs=job_lists())
    @settings(max_examples=25, deadline=None)
    def test_fcfs_nobackfill_is_exactly_fair_under_fcfs_order(self, jobs):
        wl = Workload(jobs, SIZE, name="fair-diff")
        run = run_policy(
            wl, "fcfs.nobackfill", reference_orders=("fairshare", "fcfs")
        )
        stats = run.fairness_by_order["fcfs"]
        assert stats.n_unfair == 0
        assert stats.total_miss_time == pytest.approx(0.0, abs=1e-6)

    def test_exact_fairness_on_fixture(self, small_workload):
        run = run_policy(
            small_workload, "fcfs.nobackfill",
            reference_orders=("fairshare", "fcfs"),
        )
        assert run.fairness_by_order["fcfs"].n_unfair == 0
