"""SWF parser/writer tests."""

import io

import pytest

from repro.workload.generator import random_workload
from repro.workload.swf import (
    SwfFormatError,
    SwfHeader,
    read_swf,
    roundtrip_equal,
    write_swf,
)

SAMPLE = """\
; Version: 2
; Computer: test machine
; MaxNodes: 64
; UnixStartTime: 1038700800
; a free-form comment line
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 -1 -1 -1 -1
2 50 -1 30 2 -1 -1 2 60 -1 1 4 1 -1 -1 -1 -1 -1
3 60 -1 -1 2 -1 -1 2 60 -1 0 4 1 -1 -1 -1 -1 -1
"""


class TestRead:
    def test_parses_jobs_and_header(self):
        wl = read_swf(io.StringIO(SAMPLE))
        assert len(wl) == 2  # third record has runtime -1 -> skipped
        assert wl.system_size == 64
        assert wl.metadata["skipped_records"] == 1
        job = wl.jobs[0]
        assert (job.id, job.nodes, job.runtime, job.wcl) == (1, 4, 100.0, 200.0)
        assert (job.user_id, job.group_id) == (3, 1)

    def test_system_size_override(self):
        wl = read_swf(io.StringIO(SAMPLE), system_size=128)
        assert wl.system_size == 128

    def test_missing_req_procs_falls_back_to_used(self):
        line = "1 0 0 10 4 -1 -1 -1 20 -1 1 1 1 -1 -1 -1 -1 -1\n"
        wl = read_swf(io.StringIO(line))
        assert wl.jobs[0].nodes == 4

    def test_missing_req_time_falls_back_to_runtime(self):
        line = "1 0 0 10 4 -1 -1 4 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"
        wl = read_swf(io.StringIO(line))
        assert wl.jobs[0].wcl == 10.0

    def test_wrong_field_count_raises(self):
        with pytest.raises(SwfFormatError, match="18 fields"):
            read_swf(io.StringIO("1 2 3\n"))

    def test_non_numeric_raises(self):
        bad = "a " * 18 + "\n"
        with pytest.raises(SwfFormatError, match="non-numeric"):
            read_swf(io.StringIO(bad))

    def test_strict_mode_raises_on_invalid_record(self):
        with pytest.raises(SwfFormatError, match="invalid job"):
            read_swf(io.StringIO(SAMPLE), skip_invalid=False)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(SAMPLE)
        wl = read_swf(path)
        assert wl.name == "trace"
        assert len(wl) == 2


class TestWrite:
    def test_roundtrip_preserves_fields(self, tmp_path):
        wl = random_workload(50, system_size=32, seed=5)
        path = tmp_path / "out.swf"
        write_swf(wl, path)
        back = read_swf(path)
        assert roundtrip_equal(wl, back)
        assert back.system_size == 32

    def test_header_fields_written(self, tmp_path):
        wl = random_workload(3, system_size=16, seed=1)
        path = tmp_path / "o.swf"
        write_swf(wl, path, header=SwfHeader(computer="X", note="hello"))
        text = path.read_text()
        assert "; Computer: X" in text
        assert "; Note: hello" in text
        assert "; MaxNodes: 16" in text

    def test_write_to_stream(self):
        wl = random_workload(2, system_size=8, seed=0)
        buf = io.StringIO()
        write_swf(wl, buf)
        assert len(buf.getvalue().splitlines()) >= 6

    def test_roundtrip_not_equal_on_different_workloads(self):
        a = random_workload(5, seed=1)
        b = random_workload(5, seed=2)
        assert not roundtrip_equal(a, b)
