"""Tests for the Loss of Capacity observer (Equation 4)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.metrics.loc import LossOfCapacityObserver, loc_of
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from tests.conftest import make_job


def run_with_loc(jobs, scheduler=None, size=8):
    obs = LossOfCapacityObserver()
    res = Engine(
        Cluster(size), scheduler or NoBackfillScheduler("fcfs"),
        jobs, observers=[obs],
    ).run()
    return obs, res


class TestZeroLoc:
    def test_single_job_no_waste(self):
        obs, _ = run_with_loc([make_job(id=1, nodes=4, runtime=100.0)])
        assert obs.loss_of_capacity == 0.0

    def test_back_to_back_full_machine(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=100.0),
        ]
        obs, _ = run_with_loc(jobs)
        # full machine busy the whole time a job was queued -> no loss
        assert obs.loss_of_capacity == 0.0


class TestKnownWaste:
    def test_strict_fcfs_head_blocking(self):
        """4 idle nodes for 100 s while a queued 8-wide job waits (the
        Figure 1 situation) = 400 wasted proc-seconds."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=4, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=100.0),
        ]
        obs, _ = run_with_loc(jobs)
        assert obs.wasted_proc_seconds == pytest.approx(400.0)
        # makespan 200 x 8 nodes = 1600
        assert obs.loss_of_capacity == pytest.approx(400.0 / 1600.0)

    def test_waste_capped_by_queued_demand(self):
        """A queued 2-wide job only 'wastes' 2 of the 4 idle nodes."""
        jobs2 = [
            make_job(id=1, submit=0.0, nodes=4, runtime=100.0),
            make_job(id=2, submit=50.0, nodes=6, runtime=100.0),
        ]
        obs, _ = run_with_loc(jobs2)
        # between t=50 and t=100, 4 free but 6 queued -> min = 4; 200 p-s
        assert obs.wasted_proc_seconds == pytest.approx(4 * 50.0)


class TestIntegrationWithPolicies:
    def test_backfilling_reduces_loc(self, heavy_workload):
        fcfs_obs, _ = run_with_loc(
            heavy_workload.jobs, NoBackfillScheduler("fcfs"),
            size=heavy_workload.system_size,
        )
        ng_obs, _ = run_with_loc(
            heavy_workload.jobs, NoGuaranteeScheduler(),
            size=heavy_workload.system_size,
        )
        assert ng_obs.loss_of_capacity < fcfs_obs.loss_of_capacity

    def test_loc_in_unit_range(self, small_workload):
        obs, _ = run_with_loc(small_workload.jobs,
                              size=small_workload.system_size)
        assert 0.0 <= obs.loss_of_capacity < 1.0

    def test_collect_exposes_series(self, small_workload):
        obs, res = run_with_loc(small_workload.jobs,
                                size=small_workload.system_size)
        assert loc_of(res) == obs.loss_of_capacity

    def test_loc_of_requires_observer(self, small_workload):
        res = Engine(
            Cluster(small_workload.system_size),
            NoBackfillScheduler("fcfs"), small_workload.jobs,
        ).run()
        with pytest.raises(KeyError, match="LossOfCapacityObserver"):
            loc_of(res)
