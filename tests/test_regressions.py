"""Regression tests for bugs found during development.

Each test pins the exact failure mode so it cannot silently return.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.sched.conservative import ConservativeScheduler
from repro.workload.model import Workload
from repro.workload.transforms import parent_view, split_by_runtime_limit
from tests.conftest import make_job


class TestConservativeOverdueStall:
    """An overrun stall used to leave reservations anchored at bumped
    predictions no event ever fired at; the next completion's improvement
    pass then hit the 'compression worsened' assertion.  The scheduler now
    detects overdue reservations and rebuilds instead."""

    def test_long_stall_then_completion(self):
        jobs = [
            # overruns its estimate by a lot; nothing else runs
            make_job(id=1, submit=0.0, nodes=8, runtime=50_000.0, wcl=100.0),
            # anchored at the (repeatedly bumped) prediction
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, wcl=50.0),
            make_job(id=3, submit=20.0, nodes=4, runtime=10.0, wcl=20.0),
        ]
        res = Engine(Cluster(8), ConservativeScheduler(), jobs,
                     validate=True).run()
        by = res.job_by_id()
        assert by[2].start_time >= 50_000.0
        assert by[3].start_time >= 50_000.0

    def test_stall_with_interleaved_arrivals(self):
        jobs = [make_job(id=1, submit=0.0, nodes=8, runtime=20_000.0, wcl=100.0)]
        # arrivals trickle in during the stall, each triggering a pass on a
        # profile whose predictions keep expiring
        for k in range(2, 12):
            jobs.append(make_job(id=k, submit=500.0 * k, nodes=4,
                                 runtime=100.0, wcl=200.0))
        res = Engine(Cluster(8), ConservativeScheduler(), jobs,
                     validate=True).run()
        assert all(j.start_time >= 20_000.0 for j in res.jobs if j.id != 1)


class TestChunkParentIdCollision:
    """Renumbering all split-workload jobs from 1 used to let an unsplit
    job's id collide with a chain's parent id, corrupting the parent-view
    metric join.  Unsplit jobs now keep their ids; chunks number upward."""

    def test_parent_view_restores_original_id_set(self):
        jobs = [
            make_job(id=1, submit=1.0, nodes=1, runtime=300.0, wcl=300.0),
            make_job(id=2, submit=0.0, nodes=1, runtime=1.0, wcl=1.0),
        ]
        wl = Workload(jobs, system_size=8)
        out = split_by_runtime_limit(wl, 100.0)  # job 1 -> 3 chunks
        # no chunk id collides with a surviving original id
        originals = {j.id for j in out.jobs if not j.is_chunk}
        parents = {j.parent_id for j in out.jobs if j.is_chunk}
        assert not originals & parents or originals & parents == set()
        chunk_ids = {j.id for j in out.jobs if j.is_chunk}
        assert not chunk_ids & originals

        from repro.core.engine import Engine
        from repro.sched.nobackfill import NoBackfillScheduler

        res = Engine(Cluster(8), NoBackfillScheduler("fcfs"), out.jobs).run()
        collapsed = parent_view(res.jobs)
        assert sorted(j.id for j in collapsed) == [1, 2]


class TestProfileErrorAtomicity:
    """A failed reserve used to corrupt availability via a bogus rollback;
    it must now leave the profile byte-identical."""

    def test_failed_reserve_is_atomic(self):
        from repro.core.profile import ProfileError, ReservationProfile

        p = ReservationProfile(10)
        p.reserve(0.0, 100.0, 8)
        before = (list(p.times), list(p.avail))
        with pytest.raises(ProfileError):
            p.reserve(50.0, 150.0, 5)
        assert (list(p.times), list(p.avail)) == before


class TestStrandedJobsDetected:
    """The engine used to report stranded queued jobs only via the
    SimulationResult constructor; it now names the failure directly."""

    def test_error_message_names_policy_failure(self):
        from repro.sched.base import BaseScheduler

        class Lazy(BaseScheduler):
            def schedule(self, now, reason):
                pass

        with pytest.raises(RuntimeError, match="never started"):
            Engine(Cluster(8), Lazy(), [make_job(id=1)]).run()
