"""Engine tests: event flow, chunk chains, kill policies, observers."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy, Observer
from repro.core.job import Job, JobState
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from tests.conftest import make_job


def run_fcfs(jobs, size=8, **kw):
    engine = Engine(Cluster(size), NoBackfillScheduler("fcfs"), jobs, **kw)
    return engine.run()


class TestBasicFlow:
    def test_single_job(self):
        res = run_fcfs([make_job(id=1, submit=10.0, nodes=4, runtime=100.0)])
        job = res.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.start_time == 10.0
        assert job.end_time == 110.0

    def test_sequential_when_too_wide_together(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=6, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=6, runtime=100.0),
        ]
        res = run_fcfs(jobs)
        by = res.job_by_id()
        assert by[1].start_time == 0.0
        assert by[2].start_time == 100.0

    def test_parallel_when_fits(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=4, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=4, runtime=50.0),
        ]
        res = run_fcfs(jobs)
        by = res.job_by_id()
        assert by[1].start_time == by[2].start_time == 0.0

    def test_input_jobs_not_mutated(self):
        jobs = [make_job(id=1, runtime=10.0)]
        run_fcfs(jobs)
        assert jobs[0].state is JobState.PENDING
        assert jobs[0].start_time is None

    def test_too_wide_job_rejected_upfront(self):
        with pytest.raises(ValueError, match="wider"):
            run_fcfs([make_job(nodes=9)], size=8)

    def test_events_processed_counted(self):
        res = run_fcfs([make_job(id=i) for i in range(1, 4)])
        assert res.events_processed >= 6  # 3 arrivals + 3 completions


class TestKillPolicies:
    def test_never_runs_past_wcl(self):
        job = make_job(id=1, runtime=500.0, wcl=100.0)
        res = run_fcfs([job], kill_policy=KillPolicy.NEVER)
        assert res.jobs[0].end_time == 500.0

    def test_at_wcl_truncates(self):
        job = make_job(id=1, runtime=500.0, wcl=100.0)
        res = run_fcfs([job], kill_policy=KillPolicy.AT_WCL)
        assert res.jobs[0].end_time == 100.0

    def test_at_wcl_keeps_short_jobs(self):
        job = make_job(id=1, runtime=50.0, wcl=100.0)
        res = run_fcfs([job], kill_policy=KillPolicy.AT_WCL)
        assert res.jobs[0].end_time == 50.0

    def test_if_needed_kills_when_blocked(self):
        # overrunning 6-wide job blocks a queued 6-wide job -> killed at wcl
        jobs = [
            make_job(id=1, submit=0.0, nodes=6, runtime=5000.0, wcl=100.0),
            make_job(id=2, submit=10.0, nodes=6, runtime=50.0, wcl=50.0),
        ]
        res = run_fcfs(jobs, kill_policy=KillPolicy.IF_NEEDED)
        by = res.job_by_id()
        assert by[1].end_time == 100.0  # killed at its limit
        assert by[2].start_time == 100.0

    def test_if_needed_lets_idle_overrun_continue(self):
        # nothing queued: the job runs to its natural completion
        jobs = [make_job(id=1, nodes=6, runtime=5000.0, wcl=100.0)]
        res = run_fcfs(jobs, kill_policy=KillPolicy.IF_NEEDED)
        assert res.jobs[0].end_time == 5000.0

    def test_if_needed_kills_at_recheck_when_work_arrives_late(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=6, runtime=50000.0, wcl=100.0),
            make_job(id=2, submit=2000.0, nodes=6, runtime=50.0, wcl=50.0),
        ]
        res = run_fcfs(jobs, kill_policy=KillPolicy.IF_NEEDED,
                       wcl_check_interval=300.0)
        by = res.job_by_id()
        # killed at the first check after the competitor arrived
        assert 2000.0 <= by[1].end_time <= 2300.0
        assert by[2].start_time == by[1].end_time


class TestChunkChains:
    @staticmethod
    def chain(n_chunks=3, nodes=2, rt=100.0, submit=0.0, parent=99, base_id=10):
        return [
            Job(id=base_id + i, submit_time=submit, nodes=nodes, runtime=rt,
                wcl=rt, parent_id=parent, chunk_index=i, chunk_count=n_chunks,
                seniority_time=submit)
            for i in range(n_chunks)
        ]

    def test_chunks_run_back_to_back_on_idle_machine(self):
        res = run_fcfs(self.chain())
        by = res.job_by_id()
        assert by[10].start_time == 0.0
        assert by[11].submit_time == 100.0
        assert by[11].start_time == 100.0
        assert by[12].end_time == 300.0

    def test_later_chunks_not_scheduled_before_predecessor(self):
        jobs = self.chain() + [make_job(id=1, submit=0.0, nodes=8, runtime=10.0)]
        res = run_fcfs(jobs)
        by = res.job_by_id()
        for i in (11, 12):
            assert by[i].submit_time >= by[i - 1].end_time

    def test_chain_tail_accounting(self):
        chain = self.chain(n_chunks=3, rt=100.0)
        engine = Engine(Cluster(8), NoBackfillScheduler("fcfs"), chain)
        jobs = engine._jobs
        tails = sorted(engine.chain_tail_runtime(j) for j in jobs)
        assert tails == [0.0, 100.0, 200.0]

    def test_other_jobs_can_interleave_between_chunks(self):
        # 6-wide chunks; a 6-wide competitor arrives mid-chain and FCFS
        # order lets it in at the first chunk boundary after its arrival
        chain = self.chain(n_chunks=2, nodes=6, rt=100.0)
        comp = make_job(id=1, submit=50.0, nodes=6, runtime=30.0)
        res = run_fcfs(chain + [comp], size=8)
        by = res.job_by_id()
        assert by[1].start_time == 100.0           # at the chunk boundary
        assert by[11].start_time == by[1].end_time  # chain resumes after


class TestObservers:
    def test_observer_sees_lifecycle(self):
        seen = {"arrive": [], "start": [], "complete": [], "end": 0}

        class Probe(Observer):
            def on_arrival(self, job, now):
                seen["arrive"].append((job.id, now))

            def on_start(self, job, now):
                seen["start"].append((job.id, now))

            def on_completion(self, job, now):
                seen["complete"].append((job.id, now))

            def on_end(self, now):
                seen["end"] += 1

        jobs = [make_job(id=1, submit=5.0, runtime=10.0)]
        Engine(Cluster(4), NoBackfillScheduler("fcfs"), jobs,
               observers=[Probe()]).run()
        assert seen["arrive"] == [(1, 5.0)]
        assert seen["start"] == [(1, 5.0)]
        assert seen["complete"] == [(1, 15.0)]
        assert seen["end"] == 1

    def test_max_events_guard(self):
        jobs = [make_job(id=i) for i in range(1, 20)]
        with pytest.raises(RuntimeError, match="max_events"):
            Engine(Cluster(8), NoBackfillScheduler("fcfs"), jobs,
                   max_events=3).run()


class TestValidateMode:
    def test_validate_runs_clean(self, small_workload):
        engine = Engine(
            Cluster(small_workload.system_size),
            NoGuaranteeScheduler(),
            small_workload.jobs,
            validate=True,
        )
        res = engine.run()
        assert len(res.jobs) == len(small_workload)
