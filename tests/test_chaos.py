"""Chaos suite: the fault-tolerant executor under injected failure.

Covers every recovery path unit-wise (retry, quarantine, keep-going,
worker loss, watchdog timeout, resume) and ends with the acceptance
scenario: a 200-cell sweep under a seeded fault plan — worker kills,
transient faults, a corrupt cache write, a driver interrupt — resumed to
an aggregate byte-identical to a fault-free serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignCache,
    CampaignSpec,
    RetryPolicy,
    RunReport,
    cell_key,
    run_campaign,
    run_cells,
)
from repro.campaign import executor as ex
from repro.campaign import faults
from repro.campaign.faults import PLAN_ENV, InjectedAbortError
from repro.campaign.retry import CellState, TransientError


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


def spec_of(n_seeds: int, n_jobs: int = 10, name: str = "chaos") -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": name,
        "policies": ["easy.fcfs", "fcfs.nobackfill"],
        "workloads": [{"kind": "random", "n_jobs": n_jobs, "system_size": 8,
                       "seeds": list(range(1, n_seeds + 1))}],
    })


FAST = dict(backoff_base=0.001, backoff_cap=0.01)


# -- retry / quarantine / keep-going (inline) ---------------------------------

class TestRetry:
    def test_transient_failure_is_retried_to_success(self, monkeypatch):
        real = ex._run_cell_timed
        seen = []

        def flaky(cell, key=None, attempt=0, inline=True):
            seen.append(attempt)
            if attempt == 0:
                raise TransientError("worker hiccup")
            return real(cell, key, attempt, inline)

        monkeypatch.setattr(ex, "_run_cell_timed", flaky)
        report = RunReport()
        result = run_campaign(spec_of(1), jobs=1,
                              retry=RetryPolicy(**FAST), report=report)
        assert result.n_cells == 2
        assert report.retries == 2  # each cell hiccuped once
        assert not report.failures
        assert seen.count(0) == 2 and seen.count(1) == 2

    def test_identical_failure_twice_is_quarantined_early(self, monkeypatch):
        calls = []

        def same_boom(cell, key=None, attempt=0, inline=True):
            calls.append(attempt)
            raise ValueError("deterministic boom")

        monkeypatch.setattr(ex, "_run_cell_timed", same_boom)
        report = RunReport()
        with pytest.raises(RuntimeError, match="quarantined"):
            run_cells(spec_of(1).expand()[:1],
                      retry=RetryPolicy(max_attempts=10, **FAST),
                      report=report)
        # quarantined on the second identical signature, not after 10 tries
        assert len(calls) == 2
        assert report.quarantined == 1
        assert report.failures[0].kind == "error"
        assert report.failures[0].quarantined

    def test_varying_transient_failure_exhausts_attempts(self, monkeypatch):
        def changing(cell, key=None, attempt=0, inline=True):
            raise TransientError(f"flake #{attempt}")

        monkeypatch.setattr(ex, "_run_cell_timed", changing)
        report = RunReport()
        with pytest.raises(RuntimeError, match="campaign cells failed"):
            run_cells(spec_of(1).expand()[:1],
                      retry=RetryPolicy(max_attempts=3, **FAST),
                      report=report)
        assert report.failures[0].attempts == 3
        assert not report.failures[0].quarantined

    def test_keep_going_returns_partial_with_explicit_accounting(
            self, monkeypatch):
        real = ex._run_cell_timed

        def boom_one_policy(cell, key=None, attempt=0, inline=True):
            if cell.policy == "fcfs.nobackfill":
                raise ValueError("boom")
            return real(cell, key, attempt, inline)

        monkeypatch.setattr(ex, "_run_cell_timed", boom_one_policy)
        report = RunReport()
        result = run_campaign(spec_of(2), jobs=1, keep_going=True,
                              retry=RetryPolicy(**FAST), report=report)
        assert result.n_cells == 2          # the two healthy cells
        assert result.n_failed == 2
        doc = result.aggregate()
        assert doc["incomplete"]["n_failed"] == 2
        assert all(f["kind"] == "error" for f in doc["incomplete"]["failed"])
        assert result.stats.n_failed == 2
        assert "failed  : 2 cells" in result.stats.render()

    def test_backoff_schedule_is_capped_exponential(self):
        p = RetryPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert [p.backoff(a) for a in (1, 2, 3, 4)] == [0.1, 0.2, 0.35, 0.35]

    def test_cell_state_quarantines_only_non_transient(self):
        p = RetryPolicy(max_attempts=5)
        st = CellState()
        assert st.classify(TransientError("x"), p) == "retry"
        assert st.classify(TransientError("x"), p) == "retry"  # same sig, transient
        st2 = CellState()
        assert st2.classify(ValueError("x"), p) == "retry"
        assert st2.classify(ValueError("x"), p) == "quarantine"


# -- worker loss and watchdog (pool) ------------------------------------------

class TestPoolRecovery:
    def test_worker_kill_is_survived_by_pool_rebuild(self, monkeypatch):
        spec = spec_of(6, name="kill-sweep")  # 12 cells
        cells = spec.expand()
        kill_key = cell_key(cells[5])
        monkeypatch.setenv(PLAN_ENV, json.dumps({
            "seed": 1,
            "faults": [{"site": "cell.run", "kind": "worker_kill",
                        "tokens": [kill_key]}],
        }))
        report = RunReport()
        result = run_campaign(spec, jobs=2, retry=RetryPolicy(**FAST),
                              report=report)
        faults.clear()
        assert result.n_cells == 12
        assert report.pool_rebuilds >= 1
        assert not report.failures
        assert "pool rebuilds" in result.stats.render()

    def test_watchdog_times_out_a_hung_cell_and_recovers(self, monkeypatch):
        spec = spec_of(4, name="hang-sweep")  # 8 cells
        cells = spec.expand()
        hung_key = cell_key(cells[3])
        monkeypatch.setenv(PLAN_ENV, json.dumps({
            "seed": 1,
            "faults": [{"site": "cell.run", "kind": "delay",
                        "tokens": [hung_key], "seconds": 30.0}],
        }))
        report = RunReport()
        result = run_campaign(
            spec, jobs=2,
            retry=RetryPolicy(timeout=1.0, **FAST), report=report,
        )
        faults.clear()
        # the delay fires only on attempt 0; the retry completes quickly
        assert result.n_cells == 8
        assert report.timeouts >= 1
        assert report.pool_rebuilds >= 1
        assert not report.failures

    def test_pool_and_inline_agree_under_no_faults(self, tmp_path):
        spec = spec_of(3)
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2, retry=RetryPolicy(timeout=60.0))
        assert (json.dumps(serial.aggregate(), sort_keys=True)
                == json.dumps(parallel.aggregate(), sort_keys=True))


# -- resume (inline) ----------------------------------------------------------

class TestResume:
    def test_interrupted_run_resumes_exactly(self, tmp_path, monkeypatch):
        spec = spec_of(3, name="resume-sweep")  # 6 cells
        jdir = tmp_path / "journals"

        monkeypatch.setenv(PLAN_ENV, json.dumps({
            "seed": 1,
            "faults": [{"site": "driver.tick", "kind": "abort",
                        "tokens": ["3"]}],
        }))
        report1 = RunReport()
        with pytest.raises(InjectedAbortError):
            run_campaign(spec, jobs=1, journal_dir=jdir,
                         retry=RetryPolicy(**FAST), report=report1)

        monkeypatch.delenv(PLAN_ENV)
        faults.clear()
        report2 = RunReport()
        resumed = run_campaign(spec, jobs=1, journal_dir=jdir, resume=True,
                               retry=RetryPolicy(**FAST), report=report2)
        assert resumed.n_cells == 6
        assert report2.journal_cells == 3  # the interrupted run's completions
        assert "resume  : 3 cells replayed" in resumed.stats.render()

        clean = run_campaign(spec, jobs=1)
        assert (json.dumps(resumed.aggregate(), sort_keys=True)
                == json.dumps(clean.aggregate(), sort_keys=True))

    def test_cli_sweep_resume_roundtrip(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-resume",
            "policies": ["easy.fcfs"],
            "workloads": [{"kind": "random", "n_jobs": 10, "system_size": 8,
                           "seeds": [1, 2, 3, 4]}],
        }))
        cache_dir = tmp_path / "cache"
        argv = ["sweep", str(spec_path), "--jobs", "1",
                "--cache-dir", str(cache_dir), "--quiet", "--stats"]

        monkeypatch.setenv(PLAN_ENV, json.dumps({
            "seed": 1,
            "faults": [{"site": "driver.tick", "kind": "abort",
                        "tokens": ["2"]}],
        }))
        with pytest.raises(InjectedAbortError):
            main(argv)
        capsys.readouterr()

        monkeypatch.delenv(PLAN_ENV)
        faults.clear()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert "recovery: 0 retries" in out
        assert "resume  : 2 cells replayed" in out


# -- the acceptance scenario --------------------------------------------------

class TestChaosAcceptance:
    def test_200_cell_sweep_survives_the_storm_byte_identically(
            self, tmp_path, monkeypatch):
        """ISSUE 9 acceptance: 2 worker kills, 5 transient faults, one
        corrupt cache write, a hung cell, and a driver interrupt — after
        ``--resume`` the aggregate is byte-identical to a fault-free
        ``--jobs 1`` run, with the recovery visible in ``--stats``."""
        spec = spec_of(100, n_jobs=12, name="chaos-200")
        cells = spec.expand()
        keys = [cell_key(c) for c in cells]
        assert len(cells) == 200

        # execution order is sorted by (workload, seed, i): the two kill
        # targets sit far apart so the pool breaks twice, not once; the
        # hung cell sits past the abort point AND past both kills, so its
        # delay deterministically fires (and meets the watchdog) in the
        # resume run, not in the shadow of the interrupt
        kills = [keys[20], keys[160]]
        transients = [keys[2], keys[30], keys[61], keys[95], keys[131]]
        hung = keys[189]
        corrupt = keys[8]

        storm = {
            "seed": 9,
            "faults": [
                {"site": "cell.run", "kind": "worker_kill", "tokens": kills},
                {"site": "cell.run", "kind": "transient",
                 "tokens": transients},
                {"site": "cell.run", "kind": "delay", "tokens": [hung],
                 "seconds": 30.0},
                {"site": "cache.put", "kind": "corrupt", "tokens": [corrupt]},
                {"site": "driver.tick", "kind": "abort", "tokens": ["120"]},
            ],
        }
        cache = CampaignCache(tmp_path / "cache")
        jdir = tmp_path / "journals"
        policy = RetryPolicy(max_attempts=3, timeout=2.0, **FAST)

        # -- the storm run: interrupted at 120 completions ------------------
        monkeypatch.setenv(PLAN_ENV, json.dumps(storm))
        report1 = RunReport()
        with pytest.raises(InjectedAbortError):
            run_campaign(spec, jobs=4, cache=cache, journal_dir=jdir,
                         retry=policy, report=report1)

        # -- resume under the same storm, minus the interrupt ---------------
        resume_plan = {"seed": 9, "faults": storm["faults"][:-1]}
        monkeypatch.setenv(PLAN_ENV, json.dumps(resume_plan))
        report2 = RunReport()
        resumed = run_campaign(spec, jobs=4, cache=cache, journal_dir=jdir,
                               resume=True, retry=policy, report=report2)
        monkeypatch.delenv(PLAN_ENV)
        faults.clear()

        merged = RunReport()
        merged.merge(report1)
        merged.merge(report2)

        assert resumed.n_cells == 200
        assert not merged.failures
        assert merged.quarantined == 0
        assert report2.journal_cells >= 100  # the interrupt landed at ~120
        assert merged.retries >= 5           # the transient faults, at least
        assert merged.pool_rebuilds >= 2     # two kills far apart (+ watchdog)
        assert merged.timeouts >= 1          # the hung cell

        # recovery is visible in the --stats block
        render = resumed.stats.render()
        assert "recovery:" in render and "pool rebuilds" in render

        # the corrupt cache write is real — and survives as *damage*, not
        # as wrong data: verify flags it, nothing ever served it
        audit = cache.verify()
        assert any(k == corrupt for k, _ in audit.corrupt)

        # -- byte-identity against a fault-free serial run ------------------
        clean = run_campaign(spec, jobs=1,
                             cache=CampaignCache(tmp_path / "clean-cache"))
        assert (json.dumps(resumed.aggregate(), sort_keys=True)
                == json.dumps(clean.aggregate(), sort_keys=True))
