"""Tests for the Workload container."""

import pytest

from repro.workload.model import Workload
from tests.conftest import make_job


class TestValidation:
    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Workload([make_job(id=1), make_job(id=1)], system_size=8)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError, match="wider"):
            Workload([make_job(nodes=9)], system_size=8)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="positive"):
            Workload([], system_size=0)

    def test_sorts_by_submit(self):
        wl = Workload(
            [make_job(id=1, submit=100.0), make_job(id=2, submit=10.0)],
            system_size=8,
        )
        assert [j.id for j in wl.jobs] == [2, 1]


class TestViews:
    def test_numpy_views(self):
        wl = Workload(
            [make_job(id=1, submit=0.0, nodes=2, runtime=10.0, wcl=20.0, user=3),
             make_job(id=2, submit=5.0, nodes=4, runtime=30.0, wcl=40.0, user=9)],
            system_size=8,
        )
        assert list(wl.nodes()) == [2, 4]
        assert list(wl.runtimes()) == [10.0, 30.0]
        assert list(wl.wcls()) == [20.0, 40.0]
        assert list(wl.users()) == [3, 9]
        assert list(wl.submit_times()) == [0.0, 5.0]

    def test_aggregates(self):
        wl = Workload(
            [make_job(id=1, submit=0.0, nodes=2, runtime=100.0),
             make_job(id=2, submit=400.0, nodes=4, runtime=100.0)],
            system_size=8,
        )
        assert wl.total_work == 600.0
        assert wl.span == 400.0
        assert wl.n_users == 1
        assert wl.offered_load() == pytest.approx(600.0 / (400.0 * 8))
        assert wl.offered_load(horizon=1000.0) == pytest.approx(600.0 / 8000.0)

    def test_offered_load_degenerate(self):
        wl = Workload([make_job(id=1)], system_size=8)
        assert wl.offered_load() == 0.0

    def test_subset(self):
        wl = Workload([make_job(id=i, submit=float(i)) for i in range(1, 6)],
                      system_size=8)
        sub = wl.subset(2)
        assert len(sub) == 2
        assert [j.id for j in sub.jobs] == [1, 2]
        # fresh copies: mutating the subset does not touch the original
        sub.jobs[0].start_time = 99.0
        assert wl.jobs[0].start_time is None

    def test_describe_nonempty(self):
        wl = Workload([make_job(id=1)], system_size=8)
        assert "1 jobs" in wl.describe()
        assert "system=8" in wl.describe()

    def test_describe_empty(self):
        assert "empty" in Workload([], system_size=8).describe()

    def test_category_tables_consistency(self):
        wl = Workload(
            [make_job(id=1, nodes=4, runtime=3600.0),
             make_job(id=2, nodes=4, runtime=3600.0)],
            system_size=8,
        )
        counts = wl.count_table()
        hours = wl.proc_hours_table()
        assert counts.sum() == 2
        assert hours.sum() == pytest.approx(8.0)  # 2 jobs x 4 nodes x 1 h
