"""Unit tests for the job model."""

import pytest

from repro.core.job import Job, JobState
from tests.conftest import make_job


class TestValidation:
    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            make_job(nodes=0)
        with pytest.raises(ValueError, match="nodes"):
            make_job(nodes=-4)

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError, match="runtime"):
            make_job(runtime=-1.0)

    def test_zero_runtime_allowed(self):
        # aborted jobs in real traces have zero runtime
        job = make_job(runtime=0.0, wcl=60.0)
        assert job.runtime == 0.0

    def test_rejects_nonpositive_wcl(self):
        with pytest.raises(ValueError, match="wcl"):
            make_job(wcl=0.0)

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError, match="submit"):
            make_job(submit=-5.0)


class TestDerived:
    def test_area(self):
        assert make_job(nodes=4, runtime=100.0).area == 400.0

    def test_requested_area_uses_wcl(self):
        assert make_job(nodes=4, runtime=100.0, wcl=200.0).requested_area == 800.0

    def test_overestimation_factor(self):
        assert make_job(runtime=100.0, wcl=250.0).overestimation_factor == 2.5

    def test_overestimation_factor_zero_runtime(self):
        assert make_job(runtime=0.0, wcl=60.0).overestimation_factor == float("inf")

    def test_wait_and_turnaround(self):
        job = make_job(submit=50.0, runtime=100.0)
        job.start_time = 80.0
        job.end_time = 180.0
        assert job.wait_time == 30.0
        assert job.turnaround_time == 130.0

    def test_wait_requires_start(self):
        with pytest.raises(ValueError, match="not started"):
            _ = make_job().wait_time

    def test_turnaround_requires_completion(self):
        with pytest.raises(ValueError, match="not completed"):
            _ = make_job().turnaround_time


class TestExpectedEnd:
    def test_before_wcl(self):
        job = make_job(runtime=500.0, wcl=1000.0)
        job.start_time = 0.0
        assert job.expected_end(now=100.0) == 1000.0

    def test_past_wcl_clamps_to_now(self):
        job = make_job(runtime=5000.0, wcl=1000.0)
        job.start_time = 0.0
        assert job.expected_end(now=2500.0) == 2500.0

    def test_requires_running(self):
        with pytest.raises(ValueError, match="not running"):
            make_job().expected_end(0.0)


class TestSeniority:
    def test_defaults_to_submit(self):
        assert make_job(submit=42.0).seniority == 42.0

    def test_chunks_inherit(self):
        job = make_job(submit=500.0, seniority_time=42.0)
        assert job.seniority == 42.0


class TestFreshCopy:
    def test_resets_state(self):
        job = make_job()
        job.state = JobState.COMPLETED
        job.start_time = 1.0
        job.end_time = 2.0
        clone = job.fresh_copy()
        assert clone.state is JobState.PENDING
        assert clone.start_time is None and clone.end_time is None
        assert clone.id == job.id and clone.nodes == job.nodes

    def test_does_not_mutate_original(self):
        job = make_job()
        job.state = JobState.RUNNING
        job.fresh_copy()
        assert job.state is JobState.RUNNING

    def test_preserves_chunk_fields(self):
        job = Job(id=9, submit_time=0.0, nodes=2, runtime=10.0, wcl=20.0,
                  parent_id=3, chunk_index=1, chunk_count=4, seniority_time=0.0)
        clone = job.fresh_copy()
        assert clone.parent_id == 3
        assert clone.chunk_index == 1
        assert clone.chunk_count == 4
        assert clone.is_chunk
