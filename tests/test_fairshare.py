"""Unit tests for the fairshare usage tracker."""

import pytest

from repro.sched.fairshare import DAY, FairshareTracker
from tests.conftest import make_job


class TestAccrual:
    def test_usage_accrues_while_running(self):
        t = FairshareTracker()
        t.job_started(make_job(user=1, nodes=4), now=0.0)
        assert t.usage_of(1, now=100.0) == 400.0

    def test_usage_stops_at_completion(self):
        t = FairshareTracker()
        job = make_job(user=1, nodes=4)
        t.job_started(job, now=0.0)
        t.job_finished(job, now=100.0)
        assert t.usage_of(1, now=500.0) == 400.0

    def test_multiple_jobs_same_user(self):
        t = FairshareTracker()
        t.job_started(make_job(id=1, user=1, nodes=2), now=0.0)
        t.job_started(make_job(id=2, user=1, nodes=3), now=0.0)
        assert t.usage_of(1, now=10.0) == 50.0

    def test_unknown_user_has_zero(self):
        assert FairshareTracker().usage_of(42, now=0.0) == 0.0

    def test_settle_backwards_raises(self):
        t = FairshareTracker()
        t.settle(100.0)
        with pytest.raises(ValueError):
            t.settle(50.0)

    def test_finish_unknown_raises(self):
        t = FairshareTracker()
        with pytest.raises(RuntimeError):
            t.job_finished(make_job(user=1, nodes=2), now=0.0)


class TestDecay:
    def test_halves_usage(self):
        t = FairshareTracker(decay_factor=0.5)
        job = make_job(user=1, nodes=10)
        t.job_started(job, now=0.0)
        t.job_finished(job, now=100.0)  # 1000 proc-s
        t.decay(DAY)
        assert t.usage_of(1, now=DAY) == 500.0

    def test_decay_accrues_first(self):
        t = FairshareTracker(decay_factor=0.5)
        t.job_started(make_job(user=1, nodes=1), now=0.0)
        t.decay(100.0)
        # 100 proc-s accrued, then halved
        assert t.usage_of(1, now=100.0) == 50.0

    def test_no_decay_factor_one(self):
        t = FairshareTracker(decay_factor=1.0)
        job = make_job(user=1, nodes=1)
        t.job_started(job, now=0.0)
        t.job_finished(job, now=100.0)
        t.decay(DAY)
        assert t.usage_of(1, now=DAY) == 100.0

    def test_tiny_usage_garbage_collected(self):
        t = FairshareTracker(decay_factor=0.5)
        job = make_job(user=1, nodes=1)
        t.job_started(job, now=0.0)
        t.job_finished(job, now=1.0)
        for k in range(60):
            t.decay(DAY * (k + 1))
        assert t.all_usage(60 * DAY) == {}

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            FairshareTracker(decay_factor=1.5)
        with pytest.raises(ValueError):
            FairshareTracker(decay_factor=-0.1)


class TestOrdering:
    def test_light_user_first(self):
        t = FairshareTracker()
        heavy = make_job(id=1, user=1, nodes=10)
        t.job_started(heavy, now=0.0)
        t.job_finished(heavy, now=1000.0)
        jobs = [make_job(id=2, user=1, submit=0.0), make_job(id=3, user=2, submit=5.0)]
        assert [j.id for j in t.order(jobs, now=1000.0)] == [3, 2]

    def test_fcfs_tiebreak_within_user(self):
        t = FairshareTracker()
        jobs = [make_job(id=2, user=1, submit=10.0), make_job(id=1, user=1, submit=0.0)]
        assert [j.id for j in t.order(jobs, now=0.0)] == [1, 2]

    def test_priority_key_matches_order(self):
        t = FairshareTracker()
        j1 = make_job(id=1, user=1, submit=3.0)
        j2 = make_job(id=2, user=2, submit=1.0)
        order = t.order([j1, j2], now=10.0)
        keys = sorted([j1, j2], key=lambda j: t.priority_key(j, 10.0))
        assert [j.id for j in order] == [j.id for j in keys]


class TestHeavyUsers:
    def test_heavy_above_mean(self):
        t = FairshareTracker()
        big = make_job(id=1, user=1, nodes=100)
        small = make_job(id=2, user=2, nodes=1)
        t.job_started(big, now=0.0)
        t.job_started(small, now=0.0)
        t.job_finished(big, now=100.0)
        t.job_finished(small, now=100.0)
        assert t.is_heavy(1, now=100.0)
        assert not t.is_heavy(2, now=100.0)

    def test_nobody_heavy_without_usage(self):
        assert not FairshareTracker().is_heavy(1, now=0.0)

    def test_heavy_factor_scales_threshold(self):
        t = FairshareTracker()
        a, b = make_job(id=1, user=1, nodes=3), make_job(id=2, user=2, nodes=2)
        t.job_started(a, 0.0)
        t.job_started(b, 0.0)
        t.job_finished(a, 100.0)  # 300
        t.job_finished(b, 100.0)  # 200; mean 250
        assert t.is_heavy(1, 100.0, heavy_factor=1.0)
        assert not t.is_heavy(1, 100.0, heavy_factor=1.5)

    def test_heavy_status_decays_away(self):
        t = FairshareTracker(decay_factor=0.5)
        big = make_job(id=1, user=1, nodes=100)
        t.job_started(big, 0.0)
        t.job_finished(big, 100.0)
        small = make_job(id=2, user=2, nodes=10)
        t.job_started(small, 100.0)
        assert t.is_heavy(1, now=200.0)
        # user 2 keeps running while user 1 decays; eventually 1 is light
        for k in range(10):
            t.decay(DAY * (k + 1))
        assert not t.is_heavy(1, now=10 * DAY)
