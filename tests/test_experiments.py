"""Tests for the experiment harness: runner, tables, figures, reports."""

import numpy as np
import pytest

from repro.experiments import figures as F
from repro.experiments.config import BenchConfig, bench_workload
from repro.experiments.report import bar_chart, binned_medians, log_density, series_table
from repro.experiments.runner import (
    cached_suite,
    clear_suite_cache,
    run_policy,
    run_suite,
)
from repro.experiments.tables import (
    render_table1,
    render_table2,
    table1_job_counts,
    table2_proc_hours,
)
from repro.sched.registry import MINOR_POLICIES, PAPER_POLICIES
from repro.workload.categories import N_WIDTH
from repro.workload.generator import GeneratorConfig, generate_cplant_workload


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_cplant_workload(
        GeneratorConfig(scale=0.03, weeks=4), seed=5
    )


@pytest.fixture(scope="module")
def suite(tiny_trace):
    return run_suite(tiny_trace, PAPER_POLICIES)


class TestRunner:
    def test_policy_run_fields(self, tiny_trace):
        run = run_policy(tiny_trace, "cplant24.nomax.all")
        assert run.policy == "cplant24.nomax.all"
        assert run.summary.n_jobs == len(tiny_trace)
        assert 0.0 <= run.percent_unfair <= 1.0
        assert run.average_miss_time >= 0.0
        assert 0.0 <= run.loss_of_capacity < 1.0
        assert run.miss_by_width.shape == (N_WIDTH,)
        assert run.turnaround_by_width.shape == (N_WIDTH,)

    def test_runtime_limit_policies_report_per_trace_job(self, tiny_trace):
        run = run_policy(tiny_trace, "cplant24.72max.all")
        # chunks collapsed: metric population equals the trace
        assert run.summary.n_jobs == len(tiny_trace)
        assert len(run.metric_jobs) == len(tiny_trace)
        assert set(run.fst) == {j.id for j in run.metric_jobs}
        # the scheduler saw at least as many jobs (chunks)
        assert len(run.result.jobs) >= len(tiny_trace)

    def test_suite_runs_all(self, suite):
        assert set(suite) == set(PAPER_POLICIES)

    def test_cached_suite_reuses(self, tiny_trace):
        clear_suite_cache()
        s1 = cached_suite(tiny_trace, MINOR_POLICIES[:2])
        s2 = cached_suite(tiny_trace, MINOR_POLICIES[:2])
        assert s1["cplant24.nomax.all"] is s2["cplant24.nomax.all"]
        clear_suite_cache()


class TestTables:
    def test_table1_exact_at_any_scale(self, tiny_trace):
        cmp = table1_job_counts(tiny_trace)
        assert cmp.measured.sum() == len(tiny_trace)
        assert cmp.l1_rel_error < 0.35  # small scale = coarse sampling

    def test_table2_calibrated(self, tiny_trace):
        cmp = table2_proc_hours(tiny_trace)
        assert cmp.l1_rel_error < 0.5

    def test_renders(self, tiny_trace):
        t1 = render_table1(table1_job_counts(tiny_trace))
        t2 = render_table2(table2_proc_hours(tiny_trace))
        assert "Table 1" in t1 and "513+" in t1
        assert "Table 2" in t2 and "proc-hours" in t2


class TestFigures:
    def test_fig03(self, suite, tiny_trace):
        series = F.fig03_weekly_load(suite["cplant24.nomax.all"], tiny_trace)
        assert len(series) >= 4
        txt = F.render_fig03(series)
        assert "Figure 3" in txt

    def test_fig04_to_07_render(self, tiny_trace):
        for fn, render in [
            (F.fig04_runtime_vs_nodes, F.render_fig04),
            (F.fig05_estimates, F.render_fig05),
            (F.fig06_overestimation_vs_runtime, F.render_fig06),
            (F.fig07_overestimation_vs_nodes, F.render_fig07),
        ]:
            data = fn(tiny_trace)
            txt = render(data)
            assert "Figure" in txt

    def test_minor_figures_cover_minor_policies(self, suite):
        assert set(F.fig08_percent_unfair_minor(suite)) == set(MINOR_POLICIES)
        assert set(F.fig09_miss_time_minor(suite)) == set(MINOR_POLICIES)
        assert set(F.fig11_turnaround_minor(suite)) == set(MINOR_POLICIES)
        assert set(F.fig13_loc_minor(suite)) == set(MINOR_POLICIES)

    def test_all_policy_figures_cover_nine(self, suite):
        assert set(F.fig14_percent_unfair_all(suite)) == set(PAPER_POLICIES)
        assert set(F.fig15_miss_time_all(suite)) == set(PAPER_POLICIES)
        assert set(F.fig17_turnaround_all(suite)) == set(PAPER_POLICIES)
        assert set(F.fig19_loc_all(suite)) == set(PAPER_POLICIES)

    def test_width_figures_shapes(self, suite):
        for data in (F.fig10_miss_by_width_minor(suite),
                     F.fig12_turnaround_by_width_minor(suite),
                     F.fig16_miss_by_width_cons(suite),
                     F.fig18_turnaround_by_width_cons(suite)):
            for arr in data.values():
                assert arr.shape == (N_WIDTH,)

    def test_all_renders_nonempty(self, suite, tiny_trace):
        texts = [
            F.render_fig08(F.fig08_percent_unfair_minor(suite)),
            F.render_fig09(F.fig09_miss_time_minor(suite)),
            F.render_fig10(F.fig10_miss_by_width_minor(suite)),
            F.render_fig11(F.fig11_turnaround_minor(suite)),
            F.render_fig12(F.fig12_turnaround_by_width_minor(suite)),
            F.render_fig13(F.fig13_loc_minor(suite)),
            F.render_fig14(F.fig14_percent_unfair_all(suite)),
            F.render_fig15(F.fig15_miss_time_all(suite)),
            F.render_fig16(F.fig16_miss_by_width_cons(suite)),
            F.render_fig17(F.fig17_turnaround_all(suite)),
            F.render_fig18(F.fig18_turnaround_by_width_cons(suite)),
            F.render_fig19(F.fig19_loc_all(suite)),
        ]
        for txt in texts:
            assert txt.startswith("Figure")
            assert len(txt.splitlines()) >= 3

    def test_missing_policy_raises(self, tiny_trace):
        partial = run_suite(tiny_trace, MINOR_POLICIES[:2])
        with pytest.raises(KeyError, match="missing"):
            F.fig08_percent_unfair_minor(partial)


class TestReportHelpers:
    def test_bar_chart(self):
        txt = bar_chart("T", {"a": 1.0, "b": 2.0}, percent=True)
        assert "100.00%" in txt and "200.00%" in txt
        assert txt.count("#") > 0

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart("T", {})

    def test_series_table(self):
        txt = series_table("T", ["r1", "r2"],
                           {"c": np.array([1.0, 2.0])})
        assert "r1" in txt and "r2" in txt

    def test_log_density_handles_empty(self):
        txt = log_density("T", np.array([]), np.array([]), "x", "y")
        assert "no positive data" in txt

    def test_binned_medians_trend(self):
        x = np.logspace(0, 4, 500)
        y = 1000.0 / x
        out = binned_medians(x, y, bins=5)
        med = out["median"]
        assert med[0] > med[-1]


class TestBenchConfig:
    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        cfg = BenchConfig.from_env()
        assert cfg.scale == 0.2

    def test_full_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert BenchConfig.from_env().scale == 1.0

    def test_scale_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert BenchConfig.from_env().scale == 0.05

    def test_bench_workload_builds(self):
        wl = bench_workload(BenchConfig(scale=0.02, seed=1))
        assert len(wl) > 100
