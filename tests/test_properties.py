"""Property-based tests (hypothesis) on the core data structures and the
simulation invariants every policy must uphold."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy
from repro.core.job import Job
from repro.core.listsched import ListScheduler
from repro.core.profile import ReservationProfile
from repro.sched.conservative import ConservativeScheduler
from repro.sched.dynamic import DynamicReservationScheduler
from repro.sched.easy import EasyBackfillScheduler
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.workload.categories import length_category, width_category
from repro.workload.transforms import split_by_runtime_limit
from repro.workload.model import Workload

# -- strategies -------------------------------------------------------------

SIZE = 16

rects = st.tuples(
    st.floats(min_value=0.0, max_value=1000.0),   # start
    st.floats(min_value=1.0, max_value=500.0),    # duration
    st.integers(min_value=1, max_value=SIZE),     # nodes
)


def job_lists(max_jobs=25, size=SIZE):
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5000.0),   # submit
            st.integers(min_value=1, max_value=size),     # nodes
            st.floats(min_value=1.0, max_value=2000.0),   # runtime
            st.floats(min_value=0.5, max_value=4.0),      # wcl factor
            st.integers(min_value=1, max_value=4),        # user
        ),
        min_size=1, max_size=max_jobs,
    ).map(lambda rows: [
        Job(id=i + 1, submit_time=s, nodes=n, runtime=r,
            wcl=max(r * f, 1.0), user_id=u)
        for i, (s, n, r, f, u) in enumerate(rows)
    ])


# -- profile properties --------------------------------------------------------


class TestProfileProperties:
    @given(st.lists(rects, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_fit_reserve_never_oversubscribes(self, jobs):
        p = ReservationProfile(SIZE)
        for start, dur, nodes in jobs:
            s = p.earliest_fit(nodes, dur, start)
            assert s >= start
            p.reserve(s, s + dur, nodes)
            p.check_invariants()
        assert min(p.avail) >= 0

    @given(st.lists(rects, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_reserve_release_is_identity(self, jobs):
        p = ReservationProfile(SIZE)
        placed = []
        for start, dur, nodes in jobs:
            s = p.earliest_fit(nodes, dur, start)
            p.reserve(s, s + dur, nodes)
            placed.append((s, s + dur, nodes))
        for s, e, n in reversed(placed):
            p.release(s, e, n)
        p.coalesce()
        assert p.segments() == [(0.0, float("inf"), SIZE)]

    @given(st.lists(rects, max_size=12), rects)
    @settings(max_examples=100, deadline=None)
    def test_earliest_fit_is_feasible_and_tight(self, jobs, probe):
        p = ReservationProfile(SIZE)
        for start, dur, nodes in jobs:
            s = p.earliest_fit(nodes, dur, start)
            p.reserve(s, s + dur, nodes)
        after, dur, nodes = probe
        s = p.earliest_fit(nodes, dur, after)
        # feasible at s
        assert p.min_available(s, s + dur) >= nodes
        # not feasible at the requested time if s moved past it
        if s > after:
            assert p.min_available(after, after + dur) < nodes


class TestListSchedulerProperties:
    @given(job_lists())
    @settings(max_examples=60, deadline=None)
    def test_machine_never_oversubscribed(self, jobs):
        """At any instant, placed jobs occupy at most SIZE nodes."""
        ls = ListScheduler(SIZE)
        intervals = []
        for j in sorted(jobs, key=lambda x: x.submit_time):
            s = ls.place(j.nodes, j.runtime, earliest=j.submit_time)
            intervals.append((s, s + j.runtime, j.nodes))
        points = sorted({s for s, _, _ in intervals})
        for t in points:
            used = sum(n for s, e, n in intervals if s <= t < e)
            assert used <= SIZE

    @given(job_lists())
    @settings(max_examples=60, deadline=None)
    def test_placement_monotone_in_order(self, jobs):
        """Adding a job never moves earlier jobs (prefix independence)."""
        full = ListScheduler(SIZE).schedule_all(jobs, now=0.0)
        prefix = ListScheduler(SIZE).schedule_all(jobs[:-1], now=0.0)
        for j in jobs[:-1]:
            assert full[j.id] == prefix[j.id]


class TestSimulationProperties:
    FACTORIES = [
        lambda: NoBackfillScheduler("fcfs"),
        lambda: EasyBackfillScheduler("fcfs"),
        lambda: NoGuaranteeScheduler(starvation_threshold=1800.0),
        lambda: ConservativeScheduler(),
        lambda: DynamicReservationScheduler(),
    ]

    @given(job_lists(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_every_policy_completes_everything(self, jobs, which):
        res = Engine(
            Cluster(SIZE), self.FACTORIES[which](), jobs, validate=True,
        ).run()
        assert len(res.jobs) == len(jobs)
        for j in res.jobs:
            assert j.start_time >= j.submit_time
            assert j.end_time == j.start_time + j.runtime

    @given(job_lists(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_kill_at_wcl_bounds_runtime(self, jobs, which):
        res = Engine(
            Cluster(SIZE), self.FACTORIES[which](), jobs,
            kill_policy=KillPolicy.AT_WCL, validate=True,
        ).run()
        for j in res.jobs:
            assert j.end_time - j.start_time <= j.wcl + 1e-9

    @given(job_lists(max_jobs=15))
    @settings(max_examples=30, deadline=None)
    def test_work_conserved_across_policies(self, jobs):
        """Total executed proc-seconds is policy-independent (no kills)."""
        totals = set()
        for mk in self.FACTORIES:
            res = Engine(Cluster(SIZE), mk(), jobs).run()
            totals.add(round(res.total_work, 3))
        assert len(totals) == 1


class TestConservativeGuarantee:
    @given(job_lists(max_jobs=20))
    @settings(max_examples=40, deadline=None)
    def test_arrival_reservation_is_upper_bound_with_accurate_estimates(self, jobs):
        """Conservative backfilling's core promise: with wcl == runtime
        (nothing ever finishes early or late), every job starts exactly at
        its arrival-time reservation."""
        accurate = [
            Job(id=j.id, submit_time=j.submit_time, nodes=j.nodes,
                runtime=j.runtime, wcl=j.runtime, user_id=j.user_id)
            for j in jobs
        ]
        sched = ConservativeScheduler(priority="fcfs")
        recorded = {}
        original_enqueue = sched.enqueue

        def spy(job, now):
            original_enqueue(job, now)
            recorded[job.id] = sched.reservations[job.id][0]

        sched.enqueue = spy
        res = Engine(Cluster(SIZE), sched, accurate, validate=True).run()
        for j in res.jobs:
            assert j.start_time <= recorded[j.id] + 1e-6

    @given(job_lists(max_jobs=20))
    @settings(max_examples=40, deadline=None)
    def test_overestimates_never_violate_bound(self, jobs):
        """With wcl >= runtime, compression may improve but never worsen
        the arrival-time reservation."""
        padded = [
            Job(id=j.id, submit_time=j.submit_time, nodes=j.nodes,
                runtime=j.runtime, wcl=max(j.wcl, j.runtime), user_id=j.user_id)
            for j in jobs
        ]
        sched = ConservativeScheduler(priority="fcfs")
        recorded = {}
        original_enqueue = sched.enqueue

        def spy(job, now):
            original_enqueue(job, now)
            recorded[job.id] = sched.reservations[job.id][0]

        sched.enqueue = spy
        res = Engine(Cluster(SIZE), sched, padded, validate=True).run()
        for j in res.jobs:
            assert j.start_time <= recorded[j.id] + 1e-6


class TestTransformProperties:
    @given(job_lists(max_jobs=12), st.floats(min_value=100.0, max_value=1500.0))
    @settings(max_examples=60, deadline=None)
    def test_split_preserves_work_and_width(self, jobs, limit):
        wl = Workload(jobs, system_size=SIZE, name="p")
        out = split_by_runtime_limit(wl, limit)
        assert sum(c.runtime for c in out.jobs) == pytest.approx(
            sum(j.runtime for j in wl.jobs), rel=1e-12
        )
        assert all(c.runtime <= limit + 1e-9 for c in out.jobs)
        assert all(c.wcl <= max(limit, 60.0) + 1e-9 for c in out.jobs)
        by_parent = {}
        for c in out.jobs:
            key = c.parent_id if c.is_chunk else c.id
            by_parent.setdefault(key, []).append(c)
        assert len(by_parent) == len(jobs)


class TestCategoryProperties:
    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=200, deadline=None)
    def test_every_width_classified_once(self, nodes):
        cat = width_category(nodes)
        assert 0 <= cat <= 10

    @given(st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=200, deadline=None)
    def test_every_length_classified_once(self, rt):
        cat = length_category(rt)
        assert 0 <= cat <= 7
