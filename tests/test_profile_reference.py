"""Differential tests for the optimized hot-path data structures.

The reservation profile and the compact free-timeline are the two
structures the perf work rewrote; each is pitted against a brute-force
reference model under long randomized operation sequences.  Any divergence
in a returned start time, an availability query, or the canonical segment
representation fails loudly with the op index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.listsched import FreeTimeline, ListScheduler
from repro.core.profile import ProfileError, ReservationProfile


class ReferenceProfile:
    """Brute-force availability model: a bag of (time, delta) breakpoints.

    Every query walks the whole bag; nothing is incremental, cached, or
    coalesced, so it cannot share a bug with the optimized structure.
    """

    def __init__(self, size: int, start_time: float = 0.0) -> None:
        self.size = size
        self.origin = start_time
        self.deltas: dict = {}

    def _bump(self, t: float, d: int) -> None:
        v = self.deltas.get(t, 0) + d
        if v:
            self.deltas[t] = v
        else:
            self.deltas.pop(t, None)

    def reserve(self, start: float, end: float, nodes: int) -> None:
        self._bump(start, -nodes)
        self._bump(end, +nodes)

    def release(self, start: float, end: float, nodes: int) -> None:
        self.reserve(start, end, -nodes)

    def advance(self, now: float) -> None:
        self.origin = max(self.origin, now)

    def available_at(self, t: float) -> int:
        return self.size + sum(d for tt, d in self.deltas.items() if tt <= t)

    def min_available(self, start: float, end: float) -> int:
        points = [start] + [t for t in self.deltas if start < t < end]
        return min(self.available_at(p) for p in points)

    def earliest_fit(self, nodes: int, duration: float, earliest: float) -> float:
        earliest = max(earliest, self.origin)
        candidates = [earliest] + sorted(t for t in self.deltas if t > earliest)
        for c in candidates:
            if self.min_available(c, c + duration) >= nodes:
                return c
        raise AssertionError("unbounded tail should always fit")

    def segments(self, from_time=None):
        """Canonical coalesced (start, avail) list from ``from_time``.

        ``advance`` into the interior of a segment keeps the optimized
        profile's head at the segment start (there is nothing to trim), so
        the comparison anchors at the profile's actual head time.
        """
        t0 = self.origin if from_time is None else from_time
        out = [(t0, self.available_at(t0))]
        for t in sorted(t for t in self.deltas if t > t0):
            a = self.available_at(t)
            if a != out[-1][1]:
                out.append((t, a))
        return out


@pytest.mark.parametrize("seed, n_ops", [(0, 10_000), (1, 2_000)])
def test_randomized_differential_profile(seed, n_ops):
    """10k mixed fit/reserve/release/advance/query ops, optimized vs naive.

    The reference is deliberately quadratic, so only the first seed runs
    the full 10k ops; the second covers a different machine size cheaply.
    """
    rng = np.random.default_rng(seed)
    size = int(rng.integers(8, 200))
    opt = ReservationProfile(size)
    ref = ReferenceProfile(size)
    now = 0.0
    active = []  # (start, end, nodes) rectangles currently reserved

    for op_i in range(n_ops):
        op = rng.random()
        if op < 0.45:
            # fit + reserve
            nodes = int(rng.integers(1, size + 1))
            duration = float(np.round(rng.uniform(1, 500), 3))
            earliest = now + float(np.round(rng.uniform(0, 300), 3))
            got = opt.earliest_fit(nodes, duration, earliest)
            want = ref.earliest_fit(nodes, duration, earliest)
            assert got == want, f"op {op_i}: earliest_fit {got} != {want}"
            opt.reserve(got, got + duration, nodes)
            ref.reserve(got, got + duration, nodes)
            active.append((got, got + duration, nodes))
        elif op < 0.70 and active:
            # release one active rectangle, clipped to the present the way
            # the compression pass does
            s, e, n = active.pop(int(rng.integers(len(active))))
            s = max(s, now)
            if e > s:
                opt.release(s, e, n)
                ref.release(s, e, n)
        elif op < 0.80:
            now += float(np.round(rng.uniform(0, 400), 3))
            opt.advance(now)
            ref.advance(now)
            # drop fully-elapsed rectangles; their effect is history
            active = [(s, e, n) for s, e, n in active if e > now]
        elif op < 0.90:
            t = now + float(rng.uniform(0, 2000))
            assert opt.available_at(t) == ref.available_at(t), f"op {op_i}"
        else:
            a = now + float(rng.uniform(0, 1000))
            b = a + float(rng.uniform(1, 1000))
            assert opt.min_available(a, b) == ref.min_available(a, b), f"op {op_i}"

        if op_i % 500 == 0:
            opt.check_invariants()
            # mutation keeps the profile canonically coalesced: its
            # representation must equal the reference's canonical segments
            assert list(zip(opt.times, opt.avail)) == ref.segments(opt.times[0]), f"op {op_i}"

    opt.check_invariants()
    assert list(zip(opt.times, opt.avail)) == ref.segments(opt.times[0])


def test_trusted_fast_paths_match_validated_api():
    """reserve_fitted/release_reserved must leave the same structure as
    reserve/release when their contract holds."""
    rng = np.random.default_rng(7)
    a = ReservationProfile(64)
    b = ReservationProfile(64)
    placed = []
    for _ in range(300):
        nodes = int(rng.integers(1, 65))
        duration = float(rng.uniform(1, 100))
        earliest = float(rng.uniform(0, 50))
        s1 = a.earliest_fit(nodes, duration, earliest)
        s2 = b.earliest_fit(nodes, duration, earliest)
        assert s1 == s2
        a.reserve(s1, s1 + duration, nodes)
        b.reserve_fitted(s2, s2 + duration, nodes)
        placed.append((s1, s1 + duration, nodes))
        if len(placed) > 5 and rng.random() < 0.4:
            s, e, n = placed.pop(int(rng.integers(len(placed))))
            a.release(s, e, n)
            b.release_reserved(s, e, n)
        assert a.times == b.times and a.avail == b.avail


def test_from_occupations_matches_incremental_reserves():
    rng = np.random.default_rng(3)
    for _ in range(50):
        size = int(rng.integers(4, 128))
        now = float(rng.uniform(0, 1000))
        k = int(rng.integers(0, 12))
        widths = []
        remaining = size
        for _ in range(k):
            if remaining == 0:
                break
            w = int(rng.integers(1, remaining + 1))
            widths.append(w)
            remaining -= w
        occs = [(w, now + float(rng.uniform(1, 500))) for w in widths]
        batch = ReservationProfile.from_occupations(size, now, occs)
        incr = ReservationProfile(size, now)
        for w, end in occs:
            incr.reserve(now, end, w)
        assert batch.times == incr.times
        assert batch.avail == incr.avail
        batch.check_invariants()


def test_from_occupations_rejects_oversubscription():
    with pytest.raises(ProfileError, match="over-subscribe"):
        ReservationProfile.from_occupations(4, 0.0, [(3, 10.0), (2, 10.0)])


def test_advance_merges_redundant_head():
    """Satellite fix: advancing into history must not leave a breakpoint
    between a head segment and an equal successor."""
    p = ReservationProfile(10)
    # hand-build an uncoalesced profile (the API can no longer produce one)
    p.times = [0.0, 50.0, 100.0]
    p.avail = [4, 10, 10]
    p.advance(60.0)
    assert p.times == [60.0]
    assert p.avail == [10]
    p.check_invariants()


class TestFreeTimelineDifferential:
    """FreeTimeline (compact multiset) vs ListScheduler (per-node vector)."""

    @pytest.mark.parametrize("seed", [0, 5])
    def test_random_places_match(self, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, 300))
        ls = ListScheduler(size)
        tl = FreeTimeline(size)
        now = 0.0
        for i in range(2_000):
            nodes = int(rng.integers(1, size + 1))
            duration = float(np.round(rng.uniform(0, 300), 3))
            now += float(np.round(rng.uniform(0, 30), 3))
            s1 = ls.place(nodes, duration, earliest=now)
            s2 = tl.place(nodes, duration, earliest=now)
            assert s1 == s2, f"op {i}: start {s2} != {s1}"
            assert sorted(ls.free_times.tolist()) == tl.free_time_values(), f"op {i}"
        assert ls.makespan() == tl.makespan()

    def test_from_pairs_matches_from_running(self):
        rng = np.random.default_rng(11)
        for _ in range(100):
            size = int(rng.integers(2, 200))
            now = float(rng.uniform(0, 100))
            pairs = []
            remaining = size
            while remaining and rng.random() < 0.8:
                w = int(rng.integers(1, remaining + 1))
                # ends may precede now (running past the estimate): clamped
                pairs.append((w, now + float(rng.uniform(-50, 400))))
                remaining -= w
            ls = ListScheduler.from_running(size, now, pairs)
            tl = FreeTimeline.from_pairs(size, now, pairs)
            assert sorted(ls.free_times.tolist()) == tl.free_time_values()

    def test_from_pairs_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="over-subscribe"):
            FreeTimeline.from_pairs(4, 0.0, [(3, 10.0), (2, 10.0)])

    def test_copy_is_independent(self):
        tl = FreeTimeline(4)
        clone = tl.copy()
        clone.place(4, 100.0)
        assert tl.free_time_values() == [0.0] * 4
        assert clone.free_time_values() == [100.0] * 4

    def test_invalid_requests(self):
        tl = FreeTimeline(4)
        with pytest.raises(ValueError):
            tl.place(0, 10.0)
        with pytest.raises(ValueError):
            tl.place(5, 10.0)
        with pytest.raises(ValueError):
            tl.place(2, -1.0)
