"""Deterministic fault-injection layer: plans, rules, activation."""

from __future__ import annotations

import json

import pytest

from repro.campaign import faults
from repro.campaign.faults import (
    Fault,
    FaultPlan,
    FaultRule,
    InjectedAbortError,
    InjectedError,
    InjectedTransientError,
)
from repro.campaign.retry import TransientError


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


class TestFaultRule:
    def test_rejects_unknown_site_and_kind(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="nope", kind="transient")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="cell.run", kind="nope")

    def test_token_selection_is_prefix_match(self):
        rule = FaultRule(site="cell.run", kind="transient",
                         tokens=("abc",))
        assert rule.selects(0, "abcdef0123")
        assert not rule.selects(0, "abd")

    def test_rate_selection_is_deterministic(self):
        rule = FaultRule(site="cell.run", kind="transient", rate=0.5)
        picks = [rule.selects(7, f"token-{i}") for i in range(200)]
        assert picks == [rule.selects(7, f"token-{i}") for i in range(200)]
        assert 40 < sum(picks) < 160  # a draw, not all-or-nothing

    def test_rate_depends_on_seed(self):
        rule = FaultRule(site="cell.run", kind="transient", rate=0.5)
        a = [rule.selects(1, f"token-{i}") for i in range(200)]
        b = [rule.selects(2, f"token-{i}") for i in range(200)]
        assert a != b


class TestFaultPlan:
    def test_times_bounds_occurrences_via_attempt(self):
        plan = FaultPlan(rules=(
            FaultRule(site="cell.run", kind="transient", tokens=("k",),
                      times=2),
        ))
        assert plan.check("cell.run", "k1", attempt=0) is not None
        assert plan.check("cell.run", "k1", attempt=1) is not None
        assert plan.check("cell.run", "k1", attempt=2) is None

    def test_counts_occurrences_when_attempt_omitted(self):
        plan = FaultPlan(rules=(
            FaultRule(site="cache.put", kind="corrupt", tokens=("k",)),
        ))
        assert plan.check("cache.put", "k1") is not None
        assert plan.check("cache.put", "k1") is None  # times=1 spent
        assert plan.check("cache.put", "k2") is not None  # separate token

    def test_roundtrips_through_dict(self):
        plan = FaultPlan(seed=9, rules=(
            FaultRule(site="cell.run", kind="worker_kill", tokens=("ab",)),
            FaultRule(site="cell.run", kind="delay", rate=0.1, seconds=2.0),
        ))
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == FaultPlan(seed=plan.seed, rules=plan.rules)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"seed": 1, "faults": [], "typo": True})


class TestFire:
    def test_kinds_raise_their_exceptions(self):
        with pytest.raises(InjectedTransientError):
            Fault("cell.run", "transient", "k").fire()
        with pytest.raises(InjectedError):
            Fault("cell.run", "error", "k").fire()
        with pytest.raises(InjectedAbortError):
            Fault("driver.tick", "abort", "5").fire()

    def test_transient_is_retryworthy(self):
        assert issubclass(InjectedTransientError, TransientError)

    def test_worker_kill_degrades_inline(self):
        # inline=True must raise (retryable) instead of os._exit-ing the
        # test process
        with pytest.raises(InjectedTransientError, match="degraded"):
            Fault("cell.run", "worker_kill", "k").fire(inline=True)

    def test_cooperative_kinds_are_noops(self):
        Fault("cache.put", "corrupt", "k").fire()
        Fault("cache.put", "crash", "k").fire()


class TestActivation:
    def test_install_wins_over_env(self, monkeypatch):
        installed = FaultPlan(seed=1)
        monkeypatch.setenv(faults.PLAN_ENV, json.dumps({"seed": 2}))
        faults.install(installed)
        assert faults.active_plan() is installed

    def test_env_inline_json(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, json.dumps({
            "seed": 3,
            "faults": [{"site": "cell.run", "kind": "transient",
                        "tokens": ["aa"]}],
        }))
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 3
        assert faults.active_plan() is plan  # memoized

    def test_env_plan_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 4, "faults": []}))
        monkeypatch.setenv(faults.PLAN_ENV, str(path))
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 4

    def test_no_plan_means_none(self, monkeypatch):
        monkeypatch.delenv(faults.PLAN_ENV, raising=False)
        assert faults.active_plan() is None


def test_corrupt_blob_truncates():
    blob = '{"key": "x", "metrics": {"a": 1}}'
    assert faults.corrupt_blob(blob) == blob[: len(blob) // 2]
    assert faults.corrupt_blob("a") == "a"
