"""Tests for the calibrated synthetic CPlant workload generator."""

import numpy as np
import pytest

from repro.workload import cplant
from repro.workload.generator import (
    GeneratorConfig,
    generate_cplant_workload,
    random_workload,
)


@pytest.fixture(scope="module")
def full_trace():
    return generate_cplant_workload(GeneratorConfig(scale=1.0), seed=3)


class TestCalibration:
    def test_table1_exact_at_full_scale(self, full_trace):
        counts = full_trace.count_table()
        assert (counts == cplant.TABLE1_COUNTS).all()

    def test_table2_within_tolerance(self, full_trace):
        hours = full_trace.proc_hours_table()
        total_err = abs(hours.sum() - cplant.TOTAL_PROC_HOURS) / cplant.TOTAL_PROC_HOURS
        assert total_err < 0.02
        # cellwise: the big cells must match well (small cells can clamp)
        big = cplant.TABLE2_PROC_HOURS > 10_000
        rel = np.abs(hours[big] - cplant.TABLE2_PROC_HOURS[big]) / cplant.TABLE2_PROC_HOURS[big]
        assert rel.max() < 0.25

    def test_offered_load_near_paper(self, full_trace):
        assert 0.6 < full_trace.offered_load() < 0.8

    def test_span_matches_trace(self, full_trace):
        assert abs(full_trace.span / 86400 - cplant.TRACE_DAYS) < 7.5

    def test_weekly_profile_bursty(self, full_trace):
        prof = full_trace.metadata["weekly_profile"]
        offered = prof * full_trace.offered_load()
        assert offered.max() > 1.1   # overload weeks exist (Figure 3)
        assert offered.min() < 0.5   # lull weeks exist


class TestEstimates:
    def test_overestimation_wedge(self, full_trace):
        """Figure 6: median factor falls with runtime."""
        rt = full_trace.runtimes()
        f = full_trace.wcls() / np.maximum(rt, 1.0)
        short = f[(rt > 0) & (rt < 900)]
        long_ = f[rt > 86400]
        assert np.median(short) > 2 * np.median(long_)

    def test_most_jobs_overestimate(self, full_trace):
        ok = (full_trace.wcls() >= full_trace.runtimes()).mean()
        assert ok > 0.9

    def test_some_underestimates_exist(self, full_trace):
        under = (full_trace.wcls() < 0.95 * full_trace.runtimes()).mean()
        assert 0.005 < under < 0.1

    def test_wcl_bounds_respected(self, full_trace):
        cfg = GeneratorConfig()
        assert full_trace.wcls().max() <= cfg.max_wcl
        assert full_trace.wcls().min() >= cfg.min_wcl


class TestScaling:
    def test_scale_reduces_jobs_proportionally(self):
        wl = generate_cplant_workload(GeneratorConfig(scale=0.25), seed=1)
        ratio = len(wl) / cplant.TABLE_TOTAL_JOBS
        assert 0.2 < ratio < 0.3

    def test_scale_preserves_offered_load(self):
        wl = generate_cplant_workload(GeneratorConfig(scale=0.25), seed=1)
        assert 0.5 < wl.offered_load() < 0.9

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(scale=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(scale=1.5)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=9)
        b = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=9)
        assert [(j.id, j.submit_time, j.nodes, j.runtime, j.wcl, j.user_id)
                for j in a.jobs] == \
               [(j.id, j.submit_time, j.nodes, j.runtime, j.wcl, j.user_id)
                for j in b.jobs]

    def test_different_seed_differs(self):
        a = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=1)
        b = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=2)
        assert [j.submit_time for j in a.jobs] != [j.submit_time for j in b.jobs]


class TestUsers:
    def test_zipf_population(self, full_trace):
        users, counts = np.unique(full_trace.users(), return_counts=True)
        assert len(users) > 50
        # heavy-tailed: the busiest user dominates the median user
        assert counts.max() > 10 * np.median(counts)

    def test_group_mapping_stable(self, full_trace):
        pairs = {(j.user_id, j.group_id) for j in full_trace.jobs}
        users = {u for u, _ in pairs}
        assert len(pairs) == len(users)  # one group per user


class TestRandomWorkload:
    def test_basic_shape(self):
        wl = random_workload(100, system_size=64, seed=0, load=1.0)
        assert len(wl) == 100
        assert wl.system_size == 64
        assert all(1 <= j.nodes <= 32 for j in wl.jobs)

    def test_load_controls_density(self):
        light = random_workload(300, seed=0, load=0.3)
        heavy = random_workload(300, seed=0, load=1.5)
        assert light.offered_load() < heavy.offered_load()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_workload(0)
