"""Scheduler-invariant suite: every registered policy, one harness.

Property-based (hypothesis) checks that hold for *any* correct scheduler,
run against every key in the policy registry — including the size-based
and baseline policies of the frontier.  Adding a policy to
``sched/registry.py`` automatically enrolls it here.

Invariants:

* no job starts before its arrival;
* node capacity is never exceeded at any instant (checked both by the
  engine's internal cluster validation and by an independent sweep over
  the reported start/end intervals);
* reservations are honored: with ``validate=True`` the cluster
  self-checks after every event, so a scheduler double-booking a
  reservation dies inside the run, not in a later assertion;
* every submitted job completes (or is killed by an explicit kill
  policy) — the engine refuses to end with queued or running jobs;
* work conservation: with honest estimates (no overruns, no kills) the
  executed processor-seconds equal the submitted processor-seconds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import KillPolicy
from repro.core.job import Job
from repro.experiments.runner import run_policy
from repro.sched.registry import get_policy, policy_names
from repro.workload.model import Workload

SIZE = 16

ALL_POLICIES = policy_names()


def job_lists(max_jobs=18, size=SIZE, min_wcl_factor=0.5):
    """Random job batches; ``min_wcl_factor >= 1`` forbids overruns."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5000.0),   # submit
            st.integers(min_value=1, max_value=size),     # nodes
            st.floats(min_value=1.0, max_value=2000.0),   # runtime
            st.floats(min_value=min_wcl_factor, max_value=4.0),
            st.integers(min_value=1, max_value=4),        # user
        ),
        min_size=1, max_size=max_jobs,
    ).map(lambda rows: [
        Job(id=i + 1, submit_time=s, nodes=n, runtime=r,
            wcl=max(r * f, 1.0), user_id=u)
        for i, (s, n, r, f, u) in enumerate(rows)
    ])


def _peak_usage(jobs) -> int:
    """Max simultaneous node usage from reported (start, end, nodes).

    Releases sort before same-instant acquisitions (negative delta first),
    matching the engine's free-then-allocate event order.
    """
    deltas = []
    for j in jobs:
        deltas.append((j.start_time, j.nodes))
        deltas.append((j.end_time, -j.nodes))
    used = peak = 0
    for _, d in sorted(deltas):
        used += d
        peak = max(peak, used)
    return peak


def _check_core_invariants(result) -> None:
    for j in result.jobs:
        assert j.start_time is not None and j.end_time is not None
        assert j.start_time >= j.submit_time - 1e-9, (
            f"job {j.id} started at {j.start_time} before its arrival "
            f"at {j.submit_time}"
        )
        assert j.end_time >= j.start_time
        assert j.end_time - j.start_time <= j.runtime + 1e-6, (
            f"job {j.id} ran {j.end_time - j.start_time}s, "
            f"longer than its runtime {j.runtime}s"
        )
        assert 1 <= j.nodes <= result.cluster_size
    peak = _peak_usage(result.jobs)
    assert peak <= result.cluster_size, (
        f"peak usage {peak} exceeds the {result.cluster_size}-node cluster"
    )


@pytest.mark.parametrize("policy", ALL_POLICIES)
class TestEveryRegisteredPolicy:
    @given(jobs=job_lists(min_wcl_factor=1.0))
    @settings(max_examples=20, deadline=None)
    def test_invariants_without_overruns(self, policy, jobs):
        """Honest estimates: all core invariants plus work conservation."""
        wl = Workload(jobs, SIZE, name="prop")
        run = run_policy(wl, policy, validate=True)
        _check_core_invariants(run.result)
        # every trace job is accounted for: unsplit jobs by id, chunked
        # chains by parent id (the runtime-limit transform)
        done = {j.parent_id if j.is_chunk else j.id for j in run.result.jobs}
        assert done == {j.id for j in jobs}
        # work conservation: no overruns and no kills, so executed
        # processor-seconds equal submitted processor-seconds exactly
        submitted = sum(j.nodes * j.runtime for j in jobs)
        assert run.result.total_work == pytest.approx(submitted, rel=1e-9)

    @given(jobs=job_lists())
    @settings(max_examples=10, deadline=None)
    def test_invariants_under_overruns_and_kills(self, policy, jobs):
        """Underestimating jobs overrun and may be killed; the capacity
        and arrival invariants must survive every kill policy."""
        wl = Workload(jobs, SIZE, name="prop-overrun")
        for kp in (KillPolicy.IF_NEEDED, KillPolicy.AT_WCL):
            run = run_policy(wl, policy, kill_policy=kp, validate=True)
            _check_core_invariants(run.result)

    @given(jobs=job_lists(max_jobs=10))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_replay(self, policy, jobs):
        """Two identical runs digest identically (no hidden state, no
        iteration-order dependence) — the property the campaign cache
        and the fairness matrix rely on."""
        wl = Workload(jobs, SIZE, name="prop-replay")
        a = run_policy(wl, policy).result.digest()
        b = run_policy(wl, policy).result.digest()
        assert a == b


def test_every_policy_is_enrolled():
    """The suite covers the whole registry — a policy registered without
    riding through these invariants is a bug in this file."""
    assert len(ALL_POLICIES) >= 22
    for key in ALL_POLICIES:
        assert get_policy(key).key == key
