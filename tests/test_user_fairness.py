"""Tests for the per-user fairness breakdowns."""

import pytest

from repro.experiments.runner import run_policy
from repro.metrics.users import (
    HeavyLightSplit,
    heavy_light_split,
    per_user_fairness,
    render_user_fairness,
)
from repro.workload.generator import GeneratorConfig, generate_cplant_workload
from tests.conftest import make_job


def completed(id, user, start, miss_target, nodes=2, runtime=10.0):
    j = make_job(id=id, submit=0.0, nodes=nodes, runtime=runtime, user=user)
    j.state = j.state.COMPLETED
    j.start_time = start
    j.end_time = start + runtime
    return j


class TestPerUser:
    def test_grouping_and_stats(self):
        jobs = [
            completed(1, user=1, start=100.0, miss_target=None),
            completed(2, user=1, start=0.0, miss_target=None),
            completed(3, user=2, start=50.0, miss_target=None),
        ]
        fst = {1: 0.0, 2: 0.0, 3: 50.0}
        out = per_user_fairness(jobs, fst)
        assert set(out) == {1, 2}
        u1 = out[1]
        assert u1.n_jobs == 2
        assert u1.avg_miss_time == pytest.approx(50.0)
        assert u1.percent_unfair == pytest.approx(0.5)
        assert u1.worst_miss == 100.0
        assert out[2].avg_miss_time == 0.0

    def test_empty(self):
        assert per_user_fairness([], {}) == {}

    def test_render(self):
        jobs = [completed(1, user=7, start=10.0, miss_target=None)]
        txt = render_user_fairness(per_user_fairness(jobs, {1: 0.0}))
        assert "7" in txt and "%unfair" in txt


class TestHeavyLightSplit:
    def test_split_identifies_heavy_group(self):
        # user 1 submits 100x the work of users 2..5
        jobs = [completed(1, user=1, start=0.0, miss_target=None,
                          nodes=50, runtime=1000.0)]
        jobs += [completed(10 + k, user=2 + k, start=10.0, miss_target=None)
                 for k in range(4)]
        fst = {j.id: 0.0 for j in jobs}
        split = heavy_light_split(jobs, fst, work_quantile=0.75)
        assert split.n_heavy_users >= 1
        assert split.n_heavy_users + split.n_light_users == 5

    def test_empty(self):
        split = heavy_light_split([], {})
        assert split == HeavyLightSplit(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_fair_policy_shifts_burden_to_heavy_users(self):
        """The `.fair` entrance rule exists to spare light users at heavy
        users' expense; the split must reflect at least no worsening for
        light users."""
        wl = generate_cplant_workload(GeneratorConfig(scale=0.05, weeks=5), seed=9)
        base = run_policy(wl, "cplant24.nomax.all")
        fair = run_policy(wl, "cplant24.nomax.fair")
        s_base = heavy_light_split(base.metric_jobs, base.fst)
        s_fair = heavy_light_split(fair.metric_jobs, fair.fst)
        assert s_fair.light_avg_miss <= s_base.light_avg_miss * 1.5
