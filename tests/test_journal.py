"""Crash-safe run journal: append, read back, torn tails, resume sets."""

from __future__ import annotations

import json

from repro.campaign.journal import JOURNAL_SCHEMA, RunJournal


def _keys(n):
    return [f"{i:064x}" for i in range(n)]


class TestRoundTrip:
    def test_records_read_back(self, tmp_path):
        keys = _keys(3)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record(keys[0], {"m": 1}, "run")
        j.record(keys[1], {"m": 2}, "cache")
        j.record_failure(keys[2], "error", "ValueError: boom", 3, False)
        j.end(completed=2, failed=1)
        j.close()

        state = RunJournal.read(tmp_path / "run.jsonl")
        assert state.run_id == RunJournal.run_id(keys)
        assert state.headers[0]["schema"] == JOURNAL_SCHEMA
        assert state.cells == {keys[0]: {"m": 1}, keys[1]: {"m": 2}}
        assert state.failures[keys[2]]["error"] == "ValueError: boom"
        assert state.ended
        assert state.torn_lines == 0

    def test_run_id_ignores_key_order(self):
        assert RunJournal.run_id(["b", "a"]) == RunJournal.run_id(["a", "b"])

    def test_at_names_by_run_id(self, tmp_path):
        keys = _keys(2)
        j = RunJournal.at(tmp_path, keys)
        assert j.path.name == f"{RunJournal.run_id(keys)[:16]}.jsonl"

    def test_later_success_clears_earlier_failure(self, tmp_path):
        keys = _keys(1)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record_failure(keys[0], "error", "boom", 1, False)
        j.record(keys[0], {"m": 1}, "run")
        j.close()
        state = RunJournal.read(j.path)
        assert keys[0] in state.cells
        assert keys[0] not in state.failures


class TestCrashSafety:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        keys = _keys(2)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record(keys[0], {"m": 1}, "run")
        j.close()
        with open(j.path, "a") as fh:
            fh.write('{"ev": "cell", "key": "' + keys[1] + '", "metr')

        state = RunJournal.read(j.path)
        assert state.cells == {keys[0]: {"m": 1}}
        assert state.torn_lines == 1

    def test_missing_journal_reads_empty(self, tmp_path):
        state = RunJournal.read(tmp_path / "absent.jsonl")
        assert state.cells == {} and state.headers == []


class TestResume:
    def test_completed_cells_filters_to_wanted_keys(self, tmp_path):
        keys = _keys(3)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record(keys[0], {"m": 1}, "run")
        j.record(keys[2], {"m": 3}, "run")
        j.close()
        got = j.completed_cells(keys[:2])
        assert got == {keys[0]: {"m": 1}}

    def test_resuming_appends_instead_of_truncating(self, tmp_path):
        keys = _keys(2)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record(keys[0], {"m": 1}, "run")
        j.close()

        j2 = RunJournal(tmp_path / "run.jsonl")
        j2.begin(keys, resuming=True)
        j2.record(keys[1], {"m": 2}, "run")
        j2.end(completed=2, failed=0)
        j2.close()

        state = RunJournal.read(j2.path)
        assert len(state.headers) == 2
        assert state.headers[1]["resumed"] is True
        assert state.cells == {keys[0]: {"m": 1}, keys[1]: {"m": 2}}

    def test_fresh_begin_truncates(self, tmp_path):
        keys = _keys(1)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record(keys[0], {"m": 1}, "run")
        j.close()
        j2 = RunJournal(tmp_path / "run.jsonl")
        j2.begin(keys, resuming=False)
        j2.close()
        assert RunJournal.read(j2.path).cells == {}

    def test_foreign_journal_warns_but_reuses_exact_keys(
            self, tmp_path, caplog):
        mine, theirs = _keys(4)[:2], _keys(4)[2:]
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(theirs + mine[:1])
        j.record(mine[0], {"m": 1}, "run")
        j.record(theirs[0], {"m": 9}, "run")
        j.close()

        with caplog.at_level("WARNING"):
            got = RunJournal(tmp_path / "run.jsonl").completed_cells(mine)
        assert got == {mine[0]: {"m": 1}}
        assert any("different grid" in r.message for r in caplog.records)

    def test_every_record_is_one_flushed_line(self, tmp_path):
        keys = _keys(2)
        j = RunJournal(tmp_path / "run.jsonl")
        j.begin(keys)
        j.record(keys[0], {"m": 1}, "run")
        # read while still open: the flush-per-line contract means a
        # concurrent reader (or a post-crash resume) sees whole records
        lines = [ln for ln in j.path.read_text().splitlines() if ln]
        j.close()
        assert len(lines) == 2
        assert all(json.loads(ln) for ln in lines)
