"""The repro.api facade: one request/handle model for every entry path.

The contract under test: a :class:`SimulationRequest` fully determines a
simulation; :func:`api.run` produces a handle whose metrics are identical
to the historical direct-runner path; options parse through the single
:meth:`RunOptions.from_mapping` pipeline with structured errors; and the
deprecated shims still work but warn.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core.engine import Engine, KillPolicy, Observer
from repro.experiments.runner import RunOptions, run_policy


# -- SimulationRequest ---------------------------------------------------------


def test_request_rejects_multiple_workload_sources(small_workload):
    with pytest.raises(ValueError, match="at most one workload source"):
        api.SimulationRequest(workload=small_workload, scenario="baseline")


def test_request_params_require_a_scenario():
    with pytest.raises(ValueError, match="scenario"):
        api.SimulationRequest(params=(("load", 1.5),))


def test_request_resolves_explicit_workload(small_workload):
    req = api.SimulationRequest(workload=small_workload)
    assert req.resolve_workload() is small_workload


def test_request_default_source_is_calibrated_generator():
    wl = api.SimulationRequest(scale=0.01, seed=3).resolve_workload()
    wl2 = api.SimulationRequest(scale=0.01, seed=3).resolve_workload()
    assert [j.id for j in wl.jobs] == [j.id for j in wl2.jobs]
    assert wl.system_size == 1024  # the calibrated CPlant machine


def test_request_options_mapping_merges_over_scenario_defaults():
    # the baseline scenario carries no option defaults, so the mapping wins
    req = api.SimulationRequest(
        scenario="cplant-baseline", options={"epsilon": 5.0}
    )
    opts = req.resolve_options()
    assert isinstance(opts, RunOptions)
    assert opts.epsilon == 5.0


def test_request_options_runoptions_used_verbatim(small_workload):
    opts = RunOptions(kill_policy=KillPolicy.NEVER)
    req = api.SimulationRequest(workload=small_workload, options=opts)
    assert req.resolve_options() is opts


def test_request_options_bad_type_is_a_value_error(small_workload):
    req = api.SimulationRequest(workload=small_workload, options=3.14)
    with pytest.raises(ValueError, match="RunOptions"):
        req.resolve_options()


# -- run / handle --------------------------------------------------------------


def test_run_matches_direct_runner(small_workload):
    handle = api.run(policy="easy.fairshare", workload=small_workload)
    direct = run_policy(small_workload, "easy.fairshare")
    assert handle.digest() == direct.result.digest()
    # attribute delegation: the handle quacks like the PolicyRun
    assert handle.summary == direct.summary
    assert handle.percent_unfair == direct.fairness.percent_unfair


def test_run_refines_an_existing_request(small_workload):
    base = api.SimulationRequest(policy="fcfs.nobackfill", workload=small_workload)
    handle = api.run(base, policy="easy.fairshare")
    assert handle.request.policy == "easy.fairshare"
    assert handle.run.policy == "easy.fairshare"


def test_run_report_renders_the_standard_block(small_workload):
    handle = api.run(policy="easy.fairshare", workload=small_workload)
    text = handle.report()
    assert "policy: easy.fairshare" in text
    assert "avg turnaround (Eq.1)" in text
    assert "loss of capacity(Eq.4)" in text


def test_compare_runs_every_policy_on_one_workload(small_workload):
    out = api.compare(
        ["easy.fairshare", "fcfs.nobackfill"], workload=small_workload
    )
    assert set(out) == {"easy.fairshare", "fcfs.nobackfill"}
    solo = api.run(policy="fcfs.nobackfill", workload=small_workload)
    assert out["fcfs.nobackfill"].digest() == solo.digest()


def test_compare_needs_at_least_one_policy():
    with pytest.raises(ValueError, match="at least one policy"):
        api.compare([])


def test_catalogs_list_scenarios_and_policies():
    assert any(sc.name == "cplant-baseline" for sc in api.list_scenarios())
    assert "easy.fairshare" in api.list_policies()


# -- RunOptions.from_mapping: the one option-parsing path ----------------------


def test_from_mapping_accepts_canonical_keys():
    opts = RunOptions.from_mapping(
        {"estimate_mode": "wcl", "epsilon": 2, "kill_policy": "never",
         "overrides": {"starvation_threshold": 60.0}, "validate": True}
    )
    assert opts.estimate_mode == "wcl"
    assert opts.epsilon == 2.0
    assert opts.kill_policy is KillPolicy.NEVER
    assert opts.scheduler_overrides == (("starvation_threshold", 60.0),)
    assert opts.validate is True


def test_from_mapping_names_unknown_keys():
    with pytest.raises(ValueError, match="epsilom"):
        RunOptions.from_mapping({"epsilom": 2.0})


def test_from_mapping_rejects_bad_estimate_mode():
    with pytest.raises(ValueError, match="estimate_mode"):
        RunOptions.from_mapping({"estimate_mode": "psychic"})


def test_from_mapping_rejects_bad_kill_policy():
    with pytest.raises(ValueError, match="kill_policy"):
        RunOptions.from_mapping({"kill_policy": "sometimes"})


def test_from_mapping_rejects_override_alias_conflict():
    with pytest.raises(ValueError, match="scheduler_overrides"):
        RunOptions.from_mapping(
            {"overrides": {"a": 1}, "scheduler_overrides": {"a": 2}}
        )


def test_from_mapping_rejects_unknown_reference_order():
    with pytest.raises(ValueError, match="reference_orders.*vibes"):
        RunOptions.from_mapping({"reference_orders": ["fairshare", "vibes"]})


def test_from_mapping_pins_fairshare_first():
    opts = RunOptions.from_mapping({"reference_orders": ["fcfs"]})
    assert opts.reference_orders[0] == "fairshare"
    assert "fcfs" in opts.reference_orders


# -- Observer protocol ---------------------------------------------------------


class _FullObserver:
    """Structurally satisfies the Observer protocol without inheriting."""

    def on_attach(self, engine): ...
    def on_arrival(self, job, now): ...
    def on_start(self, job, now): ...
    def on_completion(self, job, now): ...
    def on_end(self, now): ...
    def collect(self, result): ...
    def on_schedule_pass(self, now, reason, queue_depth, running,
                         free_nodes, started): ...
    def on_kill(self, job, now): ...
    def on_chunk_chain(self, job, successor, now): ...


def test_observer_protocol_is_structural():
    assert isinstance(_FullObserver(), Observer)
    assert not isinstance(object(), Observer)


def test_engine_rejects_non_observers(small_workload):
    from repro.core.cluster import Cluster
    from repro.sched.registry import get_policy

    class HalfObserver:
        def on_arrival(self, job, now): ...

    sched = get_policy("fcfs.nobackfill").make_scheduler()
    with pytest.raises(TypeError, match="on_attach"):
        Engine(Cluster(small_workload.system_size), sched,
               small_workload.jobs, observers=[HalfObserver()])


def test_structural_observer_runs(small_workload):
    handle = api.run(policy="fcfs.nobackfill", workload=small_workload,
                     observers=(_FullObserver(),))
    bare = api.run(policy="fcfs.nobackfill", workload=small_workload)
    assert handle.digest() == bare.digest()


# -- deprecated shims ----------------------------------------------------------


def test_run_policy_shim_warns_and_matches(small_workload):
    with pytest.warns(DeprecationWarning, match="run_policy"):
        old = api.run_policy(small_workload, "easy.fairshare")
    new = api.run(policy="easy.fairshare", workload=small_workload)
    assert old.result.digest() == new.digest()


def test_run_policy_with_options_shim_warns(small_workload):
    opts = RunOptions(epsilon=2.0)
    with pytest.warns(DeprecationWarning, match="run_policy_with_options"):
        old = api.run_policy_with_options(small_workload, "easy.fairshare", opts)
    new = api.run(policy="easy.fairshare", workload=small_workload, options=opts)
    assert old.result.digest() == new.digest()


def test_run_suite_shim_warns(small_workload):
    with pytest.warns(DeprecationWarning, match="run_suite"):
        old = api.run_suite(small_workload, ["fcfs.nobackfill"])
    assert set(old) == {"fcfs.nobackfill"}


def test_run_scenario_shim_warns():
    with pytest.warns(DeprecationWarning, match="run_scenario"):
        old = api.run_scenario("cplant-baseline", ["fcfs.nobackfill"], seed=3)
    new = api.compare(["fcfs.nobackfill"], scenario="cplant-baseline", seed=3)
    assert (old["fcfs.nobackfill"].result.digest()
            == new["fcfs.nobackfill"].digest())
