"""Unit tests for the cluster resource model."""

import pytest

from repro.core.cluster import AllocationError, Cluster
from tests.conftest import make_job


class TestConstruction:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(-5)

    def test_starts_empty(self):
        c = Cluster(16)
        assert c.free_nodes == 16
        assert c.used_nodes == 0
        assert c.running_count == 0


class TestStartFinish:
    def test_start_allocates(self):
        c = Cluster(16)
        job = make_job(nodes=6)
        job.state = job.state.QUEUED
        c.start(job, now=10.0)
        assert c.free_nodes == 10
        assert c.is_running(job)
        assert job.start_time == 10.0

    def test_finish_releases(self):
        c = Cluster(16)
        job = make_job(nodes=6)
        c.start(job, 0.0)
        c.finish(job, 100.0)
        assert c.free_nodes == 16
        assert not c.is_running(job)
        assert job.end_time == 100.0

    def test_over_allocation_raises(self):
        c = Cluster(8)
        c.start(make_job(id=1, nodes=6), 0.0)
        with pytest.raises(AllocationError, match="nodes"):
            c.start(make_job(id=2, nodes=4), 0.0)

    def test_wider_than_cluster_raises(self):
        with pytest.raises(AllocationError):
            Cluster(8).start(make_job(nodes=9), 0.0)

    def test_double_start_raises(self):
        c = Cluster(8)
        job = make_job(nodes=2)
        c.start(job, 0.0)
        with pytest.raises(AllocationError, match="already running"):
            c.start(job, 1.0)

    def test_finish_not_running_raises(self):
        with pytest.raises(AllocationError, match="not running"):
            Cluster(8).finish(make_job(), 0.0)


class TestQueries:
    def test_fits(self):
        c = Cluster(8)
        c.start(make_job(id=1, nodes=5), 0.0)
        assert c.fits(make_job(id=2, nodes=3))
        assert not c.fits(make_job(id=3, nodes=4))

    def test_running_jobs_iteration(self):
        c = Cluster(8)
        a, b = make_job(id=1, nodes=2), make_job(id=2, nodes=3)
        c.start(a, 0.0)
        c.start(b, 0.0)
        assert {j.id for j in c.running_jobs()} == {1, 2}

    def test_invariants_hold_through_churn(self):
        c = Cluster(32)
        jobs = [make_job(id=i, nodes=(i % 5) + 1) for i in range(1, 11)]
        started = []
        for j in jobs:
            if c.fits(j):
                c.start(j, 0.0)
                started.append(j)
            c.check_invariants()
        for j in started:
            c.finish(j, 10.0)
            c.check_invariants()
        assert c.free_nodes == 32
