"""Behavioral tests for the scheduling policies.

Each scheduler is exercised on hand-built scenarios with known outcomes,
then on a shared random workload where cross-policy invariants must hold
(all jobs complete, no over-allocation, deterministic replay).
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.sched.conservative import ConservativeScheduler
from repro.sched.dynamic import DynamicReservationScheduler
from repro.sched.easy import EasyBackfillScheduler, head_reservation
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from tests.conftest import make_job

HOUR = 3600.0


def simulate(scheduler, jobs, size=8, **kw):
    return Engine(Cluster(size), scheduler, jobs, validate=True, **kw).run()


# the paper's Figure 1 / Figure 2 scenario: jobA at the head needs the whole
# machine; jobB is narrow and short
def figure12_jobs():
    return [
        make_job(id=1, submit=0.0, nodes=4, runtime=100.0),   # running
        make_job(id=2, submit=10.0, nodes=8, runtime=100.0),  # jobA (wide)
        make_job(id=3, submit=20.0, nodes=4, runtime=50.0),   # jobB (narrow)
    ]


class TestNoBackfill:
    def test_figure1_jobB_waits(self):
        """Strict FCFS: jobB cannot start although nodes are free."""
        res = simulate(NoBackfillScheduler("fcfs"), figure12_jobs())
        by = res.job_by_id()
        assert by[2].start_time == 100.0
        assert by[3].start_time >= by[2].start_time

    def test_priority_order_respected(self):
        jobs = [make_job(id=i, submit=0.0, nodes=8, runtime=10.0) for i in (1, 2, 3)]
        res = simulate(NoBackfillScheduler("fcfs"), jobs)
        by = res.job_by_id()
        assert by[1].start_time < by[2].start_time < by[3].start_time


class TestEasy:
    def test_figure2_jobB_backfills(self):
        """EASY: jobB fits in the hole before jobA's reservation."""
        res = simulate(EasyBackfillScheduler("fcfs"), figure12_jobs())
        by = res.job_by_id()
        assert by[3].start_time == 20.0   # backfilled immediately
        assert by[2].start_time == 100.0  # head reservation honored

    def test_backfill_cannot_delay_head(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=4, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=100.0),  # head
            # long narrow job: would end after the shadow and uses more
            # than the extra nodes -> must NOT start before the head
            make_job(id=3, submit=20.0, nodes=4, runtime=500.0),
        ]
        res = simulate(EasyBackfillScheduler("fcfs"), jobs)
        by = res.job_by_id()
        assert by[2].start_time == 100.0
        assert by[3].start_time >= by[2].start_time

    def test_extra_nodes_backfill(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=4, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=6, runtime=100.0),  # head: needs 6
            # 2-wide long job fits in the "extra" (8-6=2) nodes at shadow
            make_job(id=3, submit=20.0, nodes=2, runtime=500.0),
        ]
        res = simulate(EasyBackfillScheduler("fcfs"), jobs)
        by = res.job_by_id()
        assert by[3].start_time == 20.0
        assert by[2].start_time == 100.0  # not delayed

    def test_head_reservation_helper(self):
        running = [make_job(id=1, nodes=4, runtime=100.0, wcl=100.0)]
        running[0].start_time = 0.0
        shadow, extra = head_reservation(6, free_now=4, now=10.0, running=running)
        assert shadow == 100.0
        assert extra == 2


class TestNoGuarantee:
    def test_narrow_jobs_start_in_fairshare_order(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=2, runtime=100.0, user=1),
            make_job(id=2, submit=0.0, nodes=2, runtime=100.0, user=2),
            make_job(id=3, submit=0.0, nodes=2, runtime=100.0, user=3),
        ]
        res = simulate(NoGuaranteeScheduler(), jobs)
        assert all(j.start_time == 0.0 for j in res.jobs)

    def test_wide_job_starves_until_promotion(self):
        """Without reservations a wide job is passed over by narrow ones;
        the starvation queue eventually reserves for it."""
        jobs = [make_job(id=1, submit=0.0, nodes=8, runtime=10.0, user=9)]
        # user 9's usage is raised by an early job so the wide job sorts last
        jobs.insert(0, make_job(id=99, submit=0.0, nodes=8, runtime=1.0, user=9))
        jid = 2
        # steady stream of narrow jobs from many users, denser than the
        # wide job can ever fit around
        for k in range(200):
            jobs.append(make_job(id=jid, submit=k * 60.0, nodes=2,
                                 runtime=600.0, user=(k % 8) + 1))
            jid += 1
        res = simulate(NoGuaranteeScheduler(starvation_threshold=2 * HOUR), jobs)
        wide = res.job_by_id()[1]
        # it could not start before the starvation threshold...
        assert wide.start_time >= 2 * HOUR
        # ...but the starvation reservation bounded the wait well below the
        # end of the arrival stream
        assert wide.start_time < 200 * 60.0

    def test_starvation_entrance_barred_for_heavy_users(self):
        sched = NoGuaranteeScheduler(entrance="fair", starvation_threshold=HOUR,
                                     recheck_interval=HOUR)
        jobs = [
            # user 1 burns lots of usage -> heavy
            make_job(id=1, submit=0.0, nodes=8, runtime=4 * HOUR, user=1),
            # light user keeps a trickle running so user 1 stays above mean
            make_job(id=2, submit=0.0, nodes=1, runtime=30 * HOUR, user=2),
            # heavy user's wide job: would starve, but cannot enter the queue
            make_job(id=3, submit=4 * HOUR, nodes=8, runtime=1.0, user=1),
            # narrow stream that keeps beating it
            *[make_job(id=10 + k, submit=4 * HOUR + k * 900.0, nodes=4,
                       runtime=1800.0, user=3 + (k % 3)) for k in range(40)],
        ]
        res = simulate(sched, jobs)
        wide = res.job_by_id()[3]
        baseline = simulate(
            NoGuaranteeScheduler(entrance="all", starvation_threshold=HOUR),
            jobs,
        ).job_by_id()[3]
        # barred from the starvation queue, it starts no earlier than with
        # promotion allowed
        assert wide.start_time >= baseline.start_time

    def test_waiting_jobs_spans_both_queues(self):
        sched = NoGuaranteeScheduler()
        jobs = [make_job(id=1, nodes=4, runtime=10.0)]
        engine = Engine(Cluster(8), sched, jobs)
        engine.run()
        assert sched.waiting_jobs() == []

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NoGuaranteeScheduler(entrance="bogus")
        with pytest.raises(ValueError):
            NoGuaranteeScheduler(starvation_threshold=-1.0)


class TestConservative:
    def test_every_job_bounded_by_arrival_reservation(self):
        """Conservative: arrival-time reservation is an upper bound on the
        start (with accurate estimates)."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=3, submit=0.0, nodes=8, runtime=100.0),
        ]
        res = simulate(ConservativeScheduler(), jobs)
        by = res.job_by_id()
        assert by[1].start_time == 0.0
        assert by[2].start_time == 100.0
        assert by[3].start_time == 200.0

    def test_backfill_into_hole(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=100.0),
            make_job(id=3, submit=20.0, nodes=2, runtime=1000.0, wcl=1000.0),
        ]
        res = simulate(ConservativeScheduler(), jobs)
        by = res.job_by_id()
        # the 2-wide job cannot fit before job 2 (would delay it: all 8
        # nodes reserved back to back), so it waits for job 2
        assert by[3].start_time >= by[2].start_time

    def test_compression_on_early_completion(self):
        jobs = [
            # estimates 10x the runtime: finishes way early
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, wcl=1000.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, wcl=50.0),
        ]
        res = simulate(ConservativeScheduler(), jobs)
        by = res.job_by_id()
        # job 2 was reserved at t=1000 but compresses to t=100
        assert by[2].start_time == 100.0

    def test_overrun_does_not_break_schedule(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=500.0, wcl=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, wcl=50.0),
            make_job(id=3, submit=20.0, nodes=4, runtime=10.0, wcl=20.0),
        ]
        res = simulate(ConservativeScheduler(), jobs)
        by = res.job_by_id()
        assert by[2].start_time >= 500.0  # blocked by the overrunning job
        assert by[3].start_time >= 500.0

    def test_fairshare_order_drives_improvement(self):
        """When a hole opens, the lighter user's job gets first pick."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, wcl=1000.0),
            # both queued jobs want the whole machine; user 2 is heavier
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, user=2),
            make_job(id=3, submit=11.0, nodes=8, runtime=50.0, user=3),
        ]
        # preload usage for user 2
        sched = ConservativeScheduler()
        sched.tracker._usage[2] = 1e6
        res = simulate(sched, jobs)
        by = res.job_by_id()
        assert by[3].start_time < by[2].start_time


class TestDynamic:
    def test_reservations_follow_priority_changes(self):
        """A lower-priority job's early reservation is not sticky: when the
        queue reorders, the dynamic scheduler re-ranks everything."""
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, wcl=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, user=2),
            make_job(id=3, submit=40.0, nodes=8, runtime=50.0, user=3),
        ]
        sched = DynamicReservationScheduler()
        # user 2 becomes very heavy after job 2 arrived
        sched.tracker._usage[2] = 1e6
        res = simulate(sched, jobs)
        by = res.job_by_id()
        # despite arriving later, the light user's job runs first
        assert by[3].start_time < by[2].start_time

    def test_matches_conservative_on_trivial_load(self):
        jobs = [make_job(id=i, submit=i * 10.0, nodes=2, runtime=50.0)
                for i in range(1, 5)]
        r1 = simulate(ConservativeScheduler(), jobs)
        r2 = simulate(DynamicReservationScheduler(), jobs)
        for a, b in zip(r1.jobs, r2.jobs):
            assert a.start_time == b.start_time


class TestCrossPolicyInvariants:
    POLICIES = [
        lambda: NoBackfillScheduler("fcfs"),
        lambda: NoBackfillScheduler("fairshare"),
        lambda: EasyBackfillScheduler("fcfs"),
        lambda: EasyBackfillScheduler("fairshare"),
        lambda: NoGuaranteeScheduler(),
        lambda: NoGuaranteeScheduler(entrance="fair"),
        lambda: ConservativeScheduler(),
        lambda: DynamicReservationScheduler(),
    ]

    @pytest.mark.parametrize("factory", POLICIES)
    def test_all_jobs_complete(self, factory, heavy_workload):
        res = Engine(
            Cluster(heavy_workload.system_size), factory(),
            heavy_workload.jobs, validate=True,
        ).run()
        assert len(res.jobs) == len(heavy_workload)
        for j in res.jobs:
            assert j.start_time >= j.submit_time
            assert j.end_time >= j.start_time

    @pytest.mark.parametrize("factory", POLICIES)
    def test_deterministic_replay(self, factory, small_workload):
        def starts():
            res = Engine(
                Cluster(small_workload.system_size), factory(),
                small_workload.jobs,
            ).run()
            return [(j.id, j.start_time) for j in res.jobs]

        assert starts() == starts()
