"""Tests for the named policy registry."""

import pytest

from repro.sched.conservative import ConservativeScheduler
from repro.sched.dynamic import DynamicReservationScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.sched.registry import (
    CONSERVATIVE_POLICIES,
    MINOR_POLICIES,
    PAPER_POLICIES,
    REGISTRY,
    get_policy,
    policy_names,
)

HOUR = 3600.0


class TestPolicySets:
    def test_nine_paper_policies(self):
        assert len(PAPER_POLICIES) == 9
        assert PAPER_POLICIES[0] == "cplant24.nomax.all"

    def test_minor_is_first_five(self):
        assert MINOR_POLICIES == PAPER_POLICIES[:5]

    def test_conservative_set_matches_figure16(self):
        assert "cplant24.nomax.all" in CONSERVATIVE_POLICIES
        assert "cons.72max" in CONSERVATIVE_POLICIES
        assert len(CONSERVATIVE_POLICIES) == 5

    def test_all_keys_resolvable(self):
        for key in policy_names():
            spec = get_policy(key)
            sched = spec.make_scheduler()
            assert sched is not None

    def test_unknown_key_raises_with_listing(self):
        with pytest.raises(KeyError, match="cplant24.nomax.all"):
            get_policy("no-such-policy")


class TestSpecSemantics:
    def test_baseline_config(self):
        sched = get_policy("cplant24.nomax.all").make_scheduler()
        assert isinstance(sched, NoGuaranteeScheduler)
        assert sched.starvation_threshold == 24 * HOUR
        assert sched.entrance == "all"
        assert get_policy("cplant24.nomax.all").max_runtime is None

    def test_cplant72_threshold(self):
        sched = get_policy("cplant72.nomax.all").make_scheduler()
        assert sched.starvation_threshold == 72 * HOUR

    def test_fair_entrance(self):
        sched = get_policy("cplant24.nomax.fair").make_scheduler()
        assert sched.entrance == "fair"

    def test_72max_policies_carry_limit(self):
        for key in ("cplant24.72max.all", "cplant72.72max.fair",
                    "cons.72max", "consdyn.72max"):
            assert get_policy(key).max_runtime == 72 * HOUR

    def test_conservative_types(self):
        assert isinstance(get_policy("cons.nomax").make_scheduler(),
                          ConservativeScheduler)
        assert isinstance(get_policy("consdyn.nomax").make_scheduler(),
                          DynamicReservationScheduler)

    def test_overrides_forwarded(self):
        sched = get_policy("cons.nomax").make_scheduler(decay_factor=0.25)
        assert sched.tracker.decay_factor == 0.25

    def test_descriptions_present(self):
        for spec in REGISTRY.values():
            assert len(spec.description) > 10
