"""Tests for the named policy registry."""

import pytest

from repro.sched.conservative import ConservativeScheduler
from repro.sched.dynamic import DynamicReservationScheduler
from repro.sched.easy import EasyBackfillScheduler
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.sched.registry import (
    CONSERVATIVE_POLICIES,
    MATRIX_POLICIES,
    MINOR_POLICIES,
    PAPER_POLICIES,
    REGISTRY,
    get_policy,
    policy_names,
    validate_overrides,
)
from repro.sched.roundrobin import RoundRobinScheduler
from repro.sched.sizebased import FairSojournScheduler

HOUR = 3600.0


class TestPolicySets:
    def test_nine_paper_policies(self):
        assert len(PAPER_POLICIES) == 9
        assert PAPER_POLICIES[0] == "cplant24.nomax.all"

    def test_minor_is_first_five(self):
        assert MINOR_POLICIES == PAPER_POLICIES[:5]

    def test_conservative_set_matches_figure16(self):
        assert "cplant24.nomax.all" in CONSERVATIVE_POLICIES
        assert "cons.72max" in CONSERVATIVE_POLICIES
        assert len(CONSERVATIVE_POLICIES) == 5

    def test_all_keys_resolvable(self):
        for key in policy_names():
            spec = get_policy(key)
            sched = spec.make_scheduler()
            assert sched is not None

    def test_unknown_key_raises_with_listing(self):
        with pytest.raises(KeyError, match="cplant24.nomax.all"):
            get_policy("no-such-policy")


class TestSpecSemantics:
    def test_baseline_config(self):
        sched = get_policy("cplant24.nomax.all").make_scheduler()
        assert isinstance(sched, NoGuaranteeScheduler)
        assert sched.starvation_threshold == 24 * HOUR
        assert sched.entrance == "all"
        assert get_policy("cplant24.nomax.all").max_runtime is None

    def test_cplant72_threshold(self):
        sched = get_policy("cplant72.nomax.all").make_scheduler()
        assert sched.starvation_threshold == 72 * HOUR

    def test_fair_entrance(self):
        sched = get_policy("cplant24.nomax.fair").make_scheduler()
        assert sched.entrance == "fair"

    def test_72max_policies_carry_limit(self):
        for key in ("cplant24.72max.all", "cplant72.72max.fair",
                    "cons.72max", "consdyn.72max"):
            assert get_policy(key).max_runtime == 72 * HOUR

    def test_conservative_types(self):
        assert isinstance(get_policy("cons.nomax").make_scheduler(),
                          ConservativeScheduler)
        assert isinstance(get_policy("consdyn.nomax").make_scheduler(),
                          DynamicReservationScheduler)

    def test_overrides_forwarded(self):
        sched = get_policy("cons.nomax").make_scheduler(decay_factor=0.25)
        assert sched.tracker.decay_factor == 0.25

    def test_descriptions_present(self):
        for spec in REGISTRY.values():
            assert len(spec.description) > 10


class TestFrontierPolicies:
    """The size-based / baseline extension policies of the matrix."""

    def test_paper_nine_still_lead_the_registry(self):
        # existing digests, figures, and campaign specs index the paper
        # policies; the frontier rides strictly behind them
        assert tuple(REGISTRY)[:9] == PAPER_POLICIES

    def test_matrix_policies_resolvable(self):
        assert len(MATRIX_POLICIES) == 8
        for key in MATRIX_POLICIES:
            assert get_policy(key).key == key

    def test_matrix_spans_paper_and_frontier(self):
        assert "cplant24.nomax.all" in MATRIX_POLICIES
        assert "fsp.easy" in MATRIX_POLICIES
        assert "rr.user" in MATRIX_POLICIES

    def test_size_based_types_and_priorities(self):
        spt = get_policy("spt.nobackfill").make_scheduler()
        assert isinstance(spt, NoBackfillScheduler)
        assert spt.priority == "spt"
        for key, prio in (("easy.spt", "spt"), ("easy.srpt", "srpt"),
                          ("easy.widest", "widest")):
            sched = get_policy(key).make_scheduler()
            assert isinstance(sched, EasyBackfillScheduler)
            assert sched.priority == prio

    def test_srpt_carries_the_runtime_limit(self):
        # chunking is what makes "remaining" differ from "total"
        assert get_policy("easy.srpt").max_runtime == 72 * HOUR
        assert get_policy("easy.spt").max_runtime is None

    def test_fsp_and_rr_types(self):
        assert isinstance(get_policy("fsp.easy").make_scheduler(),
                          FairSojournScheduler)
        assert isinstance(get_policy("fsp.nobackfill").make_scheduler(),
                          FairSojournScheduler)
        assert isinstance(get_policy("rr.user").make_scheduler(),
                          RoundRobinScheduler)

    def test_unknown_priority_lists_known_orders(self):
        with pytest.raises(ValueError, match="fairshare.*fcfs.*spt"):
            NoBackfillScheduler(priority="lifo")


class TestValidateOverrides:
    def test_offending_key_named_singly(self):
        with pytest.raises(ValueError, match=r"rejects scheduler override 'no_such_knob'"):
            validate_overrides("easy.fcfs", {"no_such_knob": 1})

    def test_offending_key_named_among_valid_ones(self):
        # the valid override must not mask which key was wrong
        with pytest.raises(ValueError, match=r"'typo_knob'") as exc:
            validate_overrides(
                "cplant24.nomax.all",
                {"starvation_threshold": 60.0, "typo_knob": 2},
            )
        assert "starvation_threshold" not in str(exc.value)

    def test_multiple_offenders_all_named(self):
        with pytest.raises(ValueError, match=r"overrides 'bad_a', 'bad_b'"):
            validate_overrides("easy.fcfs", {"bad_a": 1, "bad_b": 2})

    def test_policy_key_in_message(self):
        with pytest.raises(ValueError, match="fsp.easy"):
            validate_overrides("fsp.easy", {"nope": 1})
