"""Campaign subsystem: grid expansion, caching, parallel determinism,
and aggregation statistics."""

from __future__ import annotations

import json
import math

import pytest

from repro.campaign import (
    CampaignCache,
    CampaignSpec,
    WorkloadSpec,
    aggregate_cells,
    aggregate_rows,
    cell_key,
    flatten_metrics,
    run_campaign,
    run_cell,
    t_critical_95,
)
from repro.campaign.spec import _expand_sweep
from repro.experiments.runner import RunOptions
from repro.sched.registry import validate_overrides
from repro.workload.generator import replication_seeds


SMALL_SPEC = {
    "name": "test-sweep",
    "policies": ["easy.fcfs", "fcfs.nobackfill"],
    "workloads": [
        {"kind": "random", "n_jobs": 50, "system_size": 16, "load": 1.0,
         "seeds": [1, 2]},
    ],
}


def small_spec(**extra) -> CampaignSpec:
    return CampaignSpec.from_dict({**SMALL_SPEC, **extra})


# -- spec / grid expansion ----------------------------------------------------

class TestSpec:
    def test_expansion_counts_policies_x_seeds(self):
        cells = small_spec().expand()
        assert len(cells) == 4  # 2 policies x 2 seeds
        assert len({json.dumps(c.identity(), sort_keys=True) for c in cells}) == 4

    def test_expansion_with_override_variants(self):
        spec = small_spec(
            policies=["cplant24.nomax.all"],
            overrides=[{}, {"starvation_threshold": 7200.0}],
        )
        cells = spec.expand()
        assert len(cells) == 4  # 1 policy x 2 seeds x 2 variants
        variants = {c.options.scheduler_overrides for c in cells}
        assert ((), (("starvation_threshold", 7200.0),)) == tuple(sorted(variants))

    def test_sweep_shorthand_cartesian(self):
        combos = _expand_sweep({"a": [1, 2], "b": [10]})
        assert combos == [{"a": 1, "b": 10}, {"a": 2, "b": 10}]

    def test_sweep_composes_with_overrides(self):
        spec = small_spec(
            policies=["cplant24.nomax.all"],
            sweep={"starvation_threshold": [3600.0, 7200.0]},
        )
        assert len(spec.variants()) == 2
        assert len(spec.expand()) == 4

    def test_replications_spawn_independent_seeds(self):
        spec = small_spec(
            workloads=[{"kind": "random", "n_jobs": 30, "system_size": 16,
                        "seed": 9}],
            replications=3,
        )
        seeds = {c.seed for c in spec.expand()}
        assert len(seeds) == 3
        assert seeds == set(replication_seeds(9, 3))

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            small_spec(policies=["bogus"]).expand()

    def test_bad_override_rejected_with_policy_name(self):
        spec = small_spec(policies=["easy.fcfs"],
                          overrides=[{"no_such_param": 1}])
        with pytest.raises(ValueError, match="easy.fcfs"):
            spec.expand()

    def test_validate_overrides_accepts_real_parameter(self):
        validate_overrides("cplant24.nomax.all", {"starvation_threshold": 60.0})

    def test_typoed_workload_param_rejected_before_running(self):
        spec = small_spec(workloads=[{"kind": "cplant", "scal": 0.05}])
        with pytest.raises(ValueError, match="cplant workload rejects"):
            spec.expand()
        spec = small_spec(workloads=[{"kind": "random", "n_jobz": 10}])
        with pytest.raises(ValueError, match="random workload rejects"):
            spec.expand()

    def test_missing_swf_trace_rejected(self):
        spec = small_spec(workloads=[{"kind": "swf", "path": "/nope.swf"}])
        with pytest.raises(ValueError, match="not found"):
            spec.expand()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            CampaignSpec.from_dict({**SMALL_SPEC, "replication": 5})

    def test_duplicate_seeds_deduplicated(self):
        spec = small_spec(workloads=[{"kind": "random", "n_jobs": 10,
                                      "system_size": 8, "seeds": [1, 1, 2]}])
        assert len(spec.expand()) == 4  # 2 policies x 2 unique seeds

    def test_non_scalar_workload_param_rejected(self):
        with pytest.raises(ValueError, match="scalars"):
            small_spec(workloads=[{"kind": "cplant", "scale": [0.05, 0.1]}])

    def test_bad_engine_options_rejected_at_construction(self):
        with pytest.raises(ValueError, match="estimate_mode"):
            small_spec(estimate_mode="prefect")
        with pytest.raises(ValueError, match="IF_NEEDED"):
            small_spec(kill_policy="if-needed")

    def test_editing_swf_trace_changes_identity(self, tmp_path, small_workload):
        import os
        import time as _time

        from repro.workload.swf import write_swf

        path = tmp_path / "t.swf"
        write_swf(small_workload, path)
        w = WorkloadSpec.from_dict({"kind": "swf", "path": str(path)})
        before = w.family_identity()["sha256"]
        with open(path, "a") as fh:
            fh.write("; edited\n")
        os.utime(path, ns=(_time.time_ns(), _time.time_ns()))
        assert w.family_identity()["sha256"] != before

    def test_dict_round_trip(self):
        spec = small_spec(replications=2, epsilon=2.0)
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL_SPEC))
        spec = CampaignSpec.from_json(path)
        assert spec.name == "test-sweep"
        assert len(spec.expand()) == 4

    def test_swf_workload_identity_is_content_hash(self, tmp_path, small_workload):
        from repro.workload.swf import write_swf

        path = tmp_path / "t.swf"
        write_swf(small_workload, path)
        w = WorkloadSpec.from_dict({"kind": "swf", "path": str(path)})
        ident = w.family_identity()
        assert len(ident["sha256"]) == 64
        assert w.effective_seeds(5) == (None,)

    def test_run_options_canonicalize(self):
        a = RunOptions(kill_policy="if_needed",
                       scheduler_overrides=(("b", 2), ("a", 1)))
        b = RunOptions(scheduler_overrides=(("a", 1), ("b", 2)))
        assert a == b
        assert a.identity()["kill_policy"] == "IF_NEEDED"


# -- cache --------------------------------------------------------------------

class TestCache:
    def test_round_trip_and_miss(self, tmp_path):
        cell = small_spec().expand()[0]
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        assert cache.get(key) is None
        cache.put(key, cell, {"x": 1.5})
        assert cache.get(key) == {"x": 1.5}
        assert key in cache
        assert len(cache) == 1

    def test_key_is_stable_and_seed_sensitive(self):
        cells = small_spec().expand()
        assert cell_key(cells[0]) == cell_key(cells[0])
        keys = {cell_key(c) for c in cells}
        assert len(keys) == len(cells)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cell = small_spec().expand()[0]
        key = cell_key(cell)
        cache = CampaignCache(tmp_path)
        path = cache.put(key, cell, {"x": 1.0})
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cell = small_spec().expand()[0]
        cache = CampaignCache(tmp_path)
        cache.put(cell_key(cell), cell, {"x": 1.0})
        assert cache.clear() == 1
        assert len(cache) == 0


# -- executor -----------------------------------------------------------------

class TestExecutor:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = small_spec()
        cache = CampaignCache(tmp_path)
        first = run_campaign(spec, jobs=1, cache=cache)
        assert (first.n_simulated, first.n_cached) == (4, 0)
        second = run_campaign(spec, jobs=1, cache=cache)
        assert (second.n_simulated, second.n_cached) == (0, 4)
        assert (json.dumps(first.aggregate(), sort_keys=True)
                == json.dumps(second.aggregate(), sort_keys=True))

    def test_parallel_matches_serial_byte_identically(self, tmp_path):
        # 2 policies x 4 seeds = 8 cells (the acceptance-criteria scale)
        spec = small_spec(workloads=[
            {"kind": "random", "n_jobs": 50, "system_size": 16, "load": 1.0,
             "seeds": [1, 2, 3, 4]},
        ])
        assert len(spec.expand()) == 8
        serial = run_campaign(spec, jobs=1, cache=None)
        parallel = run_campaign(spec, jobs=4, cache=None)
        assert (json.dumps(serial.aggregate(), sort_keys=True)
                == json.dumps(parallel.aggregate(), sort_keys=True))

    def test_force_resimulates_but_refreshes_cache(self, tmp_path):
        spec = small_spec()
        cache = CampaignCache(tmp_path)
        run_campaign(spec, jobs=1, cache=cache)
        forced = run_campaign(spec, jobs=1, cache=cache, force=True)
        assert forced.n_simulated == 4

    def test_progress_callback_sees_every_cell(self):
        events = []
        run_campaign(
            small_spec(), jobs=1, cache=None,
            progress=lambda done, total, cell, source, elapsed: events.append(
                (done, total, source, elapsed)),
        )
        assert len(events) == 4
        assert events[-1][:2] == (4, 4)
        assert all(src == "run" for _, _, src, _ in events)
        assert all(elapsed > 0 for _, _, _, elapsed in events)

    def test_failing_cell_names_culprit_and_keeps_completed_cells(
            self, tmp_path, monkeypatch):
        from repro.campaign import executor as ex

        real = ex._run_cell_timed

        def flaky(cell, key=None, attempt=0, inline=True):
            if cell.policy == "fcfs.nobackfill":
                raise RuntimeError("boom")
            return real(cell, key, attempt, inline)

        monkeypatch.setattr(ex, "_run_cell_timed", flaky)
        spec = small_spec(workloads=[{"kind": "random", "n_jobs": 20,
                                      "system_size": 16, "seeds": [1]}])
        cache = CampaignCache(tmp_path / "cache")
        with pytest.raises(RuntimeError,
                           match=r"1/2 campaign cells failed.*fcfs\.nobackfill"):
            run_campaign(spec, jobs=1, cache=cache)
        assert len(cache) == 1  # the healthy cell's metrics were kept

    def test_failure_carries_full_failure_list(self, tmp_path, monkeypatch):
        from repro.campaign import executor as ex
        from repro.campaign.retry import CellFailure, RetryPolicy

        def always_boom(cell, key=None, attempt=0, inline=True):
            raise ValueError(f"boom for {cell.policy}")

        monkeypatch.setattr(ex, "_run_cell_timed", always_boom)
        spec = small_spec(workloads=[{"kind": "random", "n_jobs": 20,
                                      "system_size": 16, "seeds": [1]}])
        with pytest.raises(RuntimeError) as ei:
            run_campaign(spec, jobs=1, cache=None,
                         retry=RetryPolicy(max_attempts=1))
        failures = ei.value.failures
        assert len(failures) == 2
        assert all(isinstance(f, CellFailure) for f in failures)
        assert {f.error for f in failures} == {
            "ValueError: boom for easy.fcfs",
            "ValueError: boom for fcfs.nobackfill",
        }
        assert isinstance(ei.value.__cause__, ValueError)

    def test_raising_progress_callback_does_not_abort(self, tmp_path):
        def bad_progress(done, total, cell, source, elapsed):
            raise BrokenPipeError("stdout went away")

        cache = CampaignCache(tmp_path / "cache")
        res = run_campaign(small_spec(), jobs=1, cache=cache,
                           progress=bad_progress)
        assert res.n_simulated == 4
        assert len(cache) == 4  # every cell still completed and cached

    def test_worker_workload_memo_tracks_swf_edits(self, tmp_path):
        import os
        import time as _time

        from repro.campaign.executor import _cell_workload
        from repro.workload.generator import random_workload
        from repro.workload.swf import write_swf

        path = tmp_path / "t.swf"
        write_swf(random_workload(20, system_size=16, seed=1), path)
        spec = small_spec(workloads=[{"kind": "swf", "path": str(path)}])
        cell = spec.expand()[0]
        assert len(_cell_workload(cell)) == 20
        write_swf(random_workload(40, system_size=16, seed=2), path)
        os.utime(path, ns=(_time.time_ns(), _time.time_ns()))
        assert len(_cell_workload(spec.expand()[0])) == 40

    def test_run_cell_matches_serial_runner(self):
        from repro.experiments.export import policy_run_record
        from repro.experiments.runner import run_policy
        from repro.workload.generator import random_workload

        cell = small_spec().expand()[0]
        record = run_cell(cell)
        wl = random_workload(n_jobs=50, system_size=16, load=1.0,
                             seed=cell.seed)
        direct = policy_run_record(run_policy(wl, cell.policy))
        assert record == direct


# -- aggregation --------------------------------------------------------------

class TestAggregate:
    def test_t_critical_values(self):
        assert t_critical_95(2) == pytest.approx(4.303)
        assert t_critical_95(1000) == pytest.approx(1.960)
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_flatten_metrics(self):
        flat = flatten_metrics({
            "policy": "x",                      # string: dropped
            "loss_of_capacity": 0.25,
            "summary": {"avg_wait": 10.0},
            "miss_by_width": [1.0, 2.0],
            "width_labels": ["a", "b"],         # string list: dropped
        })
        assert flat == {
            "loss_of_capacity": 0.25,
            "summary.avg_wait": 10.0,
            "miss_by_width.0": 1.0,
            "miss_by_width.1": 2.0,
        }

    def test_ci_math_against_hand_computation(self):
        from repro.campaign.executor import CellResult

        spec = small_spec(
            policies=["easy.fcfs"],
            workloads=[{"kind": "random", "n_jobs": 10, "system_size": 16,
                        "seeds": [1, 2, 3]}],
        )
        cells = spec.expand()
        values = [1.0, 2.0, 3.0]
        results = [
            CellResult(cell=c, key=f"k{i}", metrics={"m": values[i]},
                       cached=False)
            for i, c in enumerate(cells)
        ]
        doc = aggregate_cells(results, campaign="ci")
        st = doc["groups"][0]["metrics"]["m"]
        assert st["n"] == 3
        assert st["mean"] == pytest.approx(2.0)
        assert st["std"] == pytest.approx(1.0)
        assert st["ci95"] == pytest.approx(4.303 / math.sqrt(3))
        assert (st["min"], st["max"]) == (1.0, 3.0)

    def test_single_cell_group_has_zero_ci(self):
        res = run_campaign(
            small_spec(workloads=[{"kind": "random", "n_jobs": 30,
                                   "system_size": 16, "seeds": [1]}]),
            jobs=1, cache=None,
        )
        doc = res.aggregate()
        st = doc["groups"][0]["metrics"]["summary.avg_turnaround"]
        assert st["n"] == 1
        assert st["std"] == 0.0 and st["ci95"] == 0.0

    def test_groups_collapse_seeds_not_policies(self):
        res = run_campaign(small_spec(), jobs=1, cache=None)
        doc = res.aggregate()
        assert doc["n_cells"] == 4
        assert doc["n_groups"] == 2
        for g in doc["groups"]:
            assert g["n_cells"] == 2
            assert sorted(g["seeds"]) == [1, 2]

    def test_aggregate_rows_long_format(self):
        res = run_campaign(small_spec(), jobs=1, cache=None)
        rows = aggregate_rows(res.aggregate())
        assert {r["policy"] for r in rows} == {"easy.fcfs", "fcfs.nobackfill"}
        sample = rows[0]
        assert set(sample) == {"campaign", "workload", "policy", "overrides",
                               "metric", "n", "mean", "std", "ci95", "min",
                               "max"}


# -- CLI ----------------------------------------------------------------------

class TestSweepCli:
    def test_sweep_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SMALL_SPEC))
        out_json = tmp_path / "agg.json"
        out_csv = tmp_path / "agg.csv"
        rc = main(["sweep", str(spec_path), "--jobs", "1",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--json", str(out_json), "--csv", str(out_csv)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 cells (4 simulated, 0 cached)" in out
        doc = json.loads(out_json.read_text())
        assert doc["n_groups"] == 2
        assert out_csv.read_text().startswith("campaign,")

        # re-run: pure cache hits, byte-identical aggregate document
        before = out_json.read_bytes()
        rc = main(["sweep", str(spec_path), "--jobs", "1",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--json", str(out_json)])
        assert rc == 0
        assert "(0 simulated, 4 cached)" in capsys.readouterr().out
        assert out_json.read_bytes() == before

    def test_sweep_no_cache_writes_nothing(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({**SMALL_SPEC, "workloads": [
            {"kind": "random", "n_jobs": 20, "system_size": 16, "seeds": [1]},
        ]}))
        rc = main(["sweep", str(spec_path), "--no-cache", "--quiet",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert not (tmp_path / "cache").exists()
