"""Paper-artifact pipeline: registry completeness, cell dedup, the
incremental build, manifest determinism (in- and cross-process), the
CLI surface, and the standalone benchmark shims."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.artifacts import (
    MANIFEST_NAME,
    PaperConfig,
    RecordRun,
    all_artifacts,
    artifact_ids,
    build_artifacts,
    diff_manifests,
    get_artifact,
    plan_build,
    select_artifacts,
    verify_outputs,
)
from repro.campaign import CampaignCache, cell_key
from repro.cli import main
from repro.experiments.export import policy_run_record
from repro.experiments.runner import run_policy
from repro.sched.registry import MATRIX_POLICIES, PAPER_POLICIES, REGISTRY

REPO_ROOT = Path(__file__).resolve().parent.parent

#: tiny but non-degenerate: ~260 jobs, every policy still queues
SMALL = PaperConfig(scale=0.02, seed=3)

EXPECTED_IDS = (
    [f"fig{n:02d}" for n in range(3, 20)] + ["table1", "table2", "matrix"]
)

#: cells a full cold build simulates: the paper's nine policies under the
#: default options, plus the matrix's eight under its reference-order
#: options (distinct cache keys even where the policy repeats)
N_FULL_CELLS = len(PAPER_POLICIES) + len(MATRIX_POLICIES)


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """One full small-scale build shared by the read-only assertions."""
    root = tmp_path_factory.mktemp("paper")
    cache = CampaignCache(root / "cache")
    result = build_artifacts(
        config=SMALL, out_dir=root / "out", cache=cache, check=True
    )
    return root, cache, result


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert artifact_ids() == EXPECTED_IDS

    def test_output_paths_are_unique(self):
        outputs = [a.output for a in all_artifacts()]
        assert len(outputs) == len(set(outputs))

    def test_policies_are_known_and_inputs_declared(self):
        for art in all_artifacts():
            assert art.policies or art.needs_workload
            for p in art.policies:
                assert p in REGISTRY

    def test_every_artifact_has_a_check(self):
        assert all(a.check is not None for a in all_artifacts())

    def test_unknown_ids_fail_fast(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            get_artifact("fig99")
        with pytest.raises(KeyError, match="fig99"):
            select_artifacts(["fig08", "fig99"])


class TestPlan:
    def test_full_plan_dedupes_to_the_distinct_cells(self):
        plan = plan_build(config=SMALL)
        # the nine-policy paper suite plus the matrix's eight cells (same
        # policies partially, but distinct options => distinct cache keys)
        expected = sorted(list(PAPER_POLICIES) + list(MATRIX_POLICIES))
        assert sorted(c.policy for c in plan.cells) == expected
        assert len(set(plan.keys)) == len(plan.keys)
        # figures 8-19 all share the nine-policy suite: most requirements
        # collapse onto already-planned cells
        assert plan.n_shared > 50

    def test_matrix_cells_do_not_collide_with_the_paper_suite(self):
        plan = plan_build(config=SMALL)
        paper_keys = set(plan.cell_keys["fig08"].values())
        matrix_keys = set(plan.cell_keys["matrix"].values())
        assert not paper_keys & matrix_keys

    def test_subset_plan_is_the_union_of_requirements(self):
        plan = plan_build(["fig08", "fig14", "table1"], config=SMALL)
        wanted = set(get_artifact("fig08").policies)
        wanted |= set(get_artifact("fig14").policies)
        assert sorted(c.policy for c in plan.cells) == sorted(wanted)
        assert plan.needs_workload  # table1 wants the trace

    def test_cell_keys_match_the_campaign_cache_convention(self):
        plan = plan_build(["fig03"], config=SMALL)
        assert plan.keys == [cell_key(plan.cells[0])]

    def test_scale_and_seed_change_the_cell_keys(self):
        base = plan_build(["fig03"], config=SMALL).keys[0]
        other_scale = plan_build(
            ["fig03"], config=PaperConfig(scale=0.03, seed=SMALL.seed)
        ).keys[0]
        other_seed = plan_build(
            ["fig03"], config=PaperConfig(scale=SMALL.scale, seed=99)
        ).keys[0]
        assert len({base, other_scale, other_seed}) == 3


class TestBuild:
    def test_builds_every_artifact(self, built):
        root, _, result = built
        assert len(result.outputs) == len(EXPECTED_IDS)
        for rendered in result.outputs:
            assert rendered.path.is_file()
            assert rendered.path.read_text().rstrip()
        assert result.n_simulated == N_FULL_CELLS
        assert result.n_cached == 0

    def test_rebuild_is_all_cache_hits_and_byte_identical(self, built):
        root, cache, result = built
        before = result.manifest_path.read_bytes()
        again = build_artifacts(
            config=SMALL, out_dir=root / "out", cache=cache, check=True
        )
        assert again.n_simulated == 0
        assert again.n_cached == N_FULL_CELLS
        assert again.manifest_path.read_bytes() == before

    def test_manifest_names_inputs_and_digests(self, built):
        root, _, result = built
        doc = json.loads(result.manifest_path.read_text())
        assert set(doc["artifacts"]) == set(EXPECTED_IDS)
        assert doc["config"] == {"scale": SMALL.scale, "seed": SMALL.seed}
        fig14 = doc["artifacts"]["fig14"]
        assert set(fig14["inputs"]["cells"]) == set(PAPER_POLICIES)
        table1 = doc["artifacts"]["table1"]
        assert table1["inputs"]["cells"] == {}
        assert table1["inputs"]["workload"]
        for entry in doc["artifacts"].values():
            assert len(entry["sha256"]) == 64

    def test_verify_outputs_flags_edits(self, built):
        root, _, result = built
        assert verify_outputs(root / "out") == []
        victim = root / "out" / get_artifact("fig08").output
        original = victim.read_text()
        victim.write_text(original + "tampered\n")
        try:
            problems = verify_outputs(root / "out")
            assert any("fig08" in p for p in problems)
        finally:
            victim.write_text(original)

    def test_diff_manifests(self, built):
        root, _, result = built
        doc = json.loads(result.manifest_path.read_text())
        assert diff_manifests(doc, doc) == []
        other = json.loads(result.manifest_path.read_text())
        other["artifacts"]["fig08"]["sha256"] = "0" * 64
        del other["artifacts"]["table2"]
        diffs = diff_manifests(doc, other)
        assert any("fig08" in d for d in diffs)
        assert any("table2" in d for d in diffs)

    def test_subset_build_reuses_the_shared_cache(self, built):
        root, cache, _ = built
        result = build_artifacts(
            only=["fig08", "table1"],
            config=SMALL,
            out_dir=root / "subset",
            cache=cache,
        )
        assert result.n_simulated == 0
        assert [r.artifact.id for r in result.outputs] == ["fig08", "table1"]

    def test_parallel_build_matches_inline(self, built, tmp_path):
        root, _, result = built
        parallel = build_artifacts(
            config=SMALL,
            out_dir=tmp_path / "out",
            cache=CampaignCache(tmp_path / "cache"),
            jobs=2,
        )
        assert parallel.n_simulated == N_FULL_CELLS
        assert (
            parallel.manifest_path.read_bytes()
            == result.manifest_path.read_bytes()
        )


class TestRecordRun:
    def test_matches_the_live_policy_run(self):
        wl = SMALL.build_workload()
        run = run_policy(wl, "cplant24.nomax.all")
        rec = RecordRun("cplant24.nomax.all", policy_run_record(run))
        assert rec.percent_unfair == run.percent_unfair
        assert rec.average_miss_time == run.average_miss_time
        assert rec.average_turnaround == run.average_turnaround
        assert rec.loss_of_capacity == run.loss_of_capacity
        np.testing.assert_array_equal(rec.miss_by_width, run.miss_by_width)
        np.testing.assert_array_equal(
            rec.turnaround_by_width, run.turnaround_by_width
        )
        np.testing.assert_array_equal(
            rec.weekly.offered_load, run.weekly.offered_load
        )
        np.testing.assert_array_equal(
            rec.weekly.utilization, run.weekly.utilization
        )

    def test_record_survives_a_json_round_trip_exactly(self):
        wl = SMALL.build_workload()
        run = run_policy(wl, "easy.fcfs")
        record = policy_run_record(run)
        roundtripped = json.loads(json.dumps(record))
        assert roundtripped == record


class TestCrossProcessDeterminism:
    def test_manifests_agree_across_fresh_processes(self, tmp_path):
        """Two cold builds in separate interpreters (separate caches, so
        both actually simulate) must write byte-identical manifests."""
        prog = (
            "import sys\n"
            "from repro.artifacts import PaperConfig, build_artifacts\n"
            "from repro.campaign import CampaignCache\n"
            "out, cache = sys.argv[1], sys.argv[2]\n"
            "r = build_artifacts(only=['fig03', 'fig08', 'table1'],\n"
            "                    config=PaperConfig(scale=0.02, seed=3),\n"
            "                    out_dir=out, cache=CampaignCache(cache))\n"
            "print(r.manifest_path)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        manifests = []
        for tag in ("a", "b"):
            subprocess.run(
                [
                    sys.executable,
                    "-c",
                    prog,
                    str(tmp_path / tag),
                    str(tmp_path / f"cache-{tag}"),
                ],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            manifests.append((tmp_path / tag / MANIFEST_NAME).read_bytes())
        assert manifests[0] == manifests[1]


class TestShims:
    def test_bench_scripts_are_thin_registrations(self):
        bench = REPO_ROOT / "benchmarks"
        for art in all_artifacts():
            matches = list(bench.glob(f"bench_{art.id}_*.py"))
            if art.id.startswith("table"):
                matches += list(bench.glob(f"bench_{art.id}*.py"))
            assert matches, f"no benchmark shim for {art.id}"
            text = matches[0].read_text()
            assert f'bench_shim("{art.id}")' in text
            assert f'main_shim("{art.id}")' in text

    def test_direct_invocation_still_works(self, tmp_path):
        """`python benchmarks/bench_fig08_....py` must keep working."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_fig08_percent_unfair_minor.py"),
                "--scale",
                "0.02",
                "--seed",
                "3",
                "--out-dir",
                str(tmp_path),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--no-check",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert "Figure 8" in proc.stdout
        assert (tmp_path / get_artifact("fig08").output).is_file()


class TestPaperCLI:
    def test_subcommands_present(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = {a.dest: a for a in parser._actions}["command"]
        assert "paper" in sub.choices

    def test_list(self, capsys):
        assert main(["paper", "list"]) == 0
        out = capsys.readouterr().out
        for art_id in EXPECTED_IDS:
            assert art_id in out

    def test_build_only_and_diff(self, tmp_path, capsys):
        argv = [
            "paper",
            "build",
            "--only",
            "fig04,table1",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out-dir",
            str(tmp_path / "out"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 artifacts" in out
        assert (tmp_path / "out" / MANIFEST_NAME).is_file()

        assert main(["paper", "diff", "--out-dir", str(tmp_path / "out")]) == 0
        capsys.readouterr()

        # an edited output is reported as stale, and rc flips to 1
        victim = tmp_path / "out" / get_artifact("fig04").output
        victim.write_text(victim.read_text() + "x\n")
        assert main(["paper", "diff", "--out-dir", str(tmp_path / "out")]) == 1
        assert "fig04" in capsys.readouterr().out

    def test_build_rejects_unknown_artifact(self, tmp_path, capsys):
        rc = main(
            [
                "paper",
                "build",
                "--only",
                "fig99",
                "--out-dir",
                str(tmp_path / "out"),
                "--no-cache",
            ]
        )
        assert rc == 2
        assert "fig99" in capsys.readouterr().err

    def test_diff_against_other_manifest(self, tmp_path, capsys):
        for tag in ("a", "b"):
            assert (
                main(
                    [
                        "paper",
                        "build",
                        "--only",
                        "fig04",
                        "--scale",
                        "0.02",
                        "--seed",
                        "3",
                        "--out-dir",
                        str(tmp_path / tag),
                        "--cache-dir",
                        str(tmp_path / "cache"),
                        "--quiet",
                    ]
                )
                == 0
            )
        capsys.readouterr()
        rc = main(
            [
                "paper",
                "diff",
                "--out-dir",
                str(tmp_path / "a"),
                "--against",
                str(tmp_path / "b" / MANIFEST_NAME),
            ]
        )
        assert rc == 0
        assert "agree" in capsys.readouterr().out
