"""Simulation-as-a-service: live sessions, tenant merge, TCP server.

The load-bearing contract everywhere: however a trace reaches the engine —
preloaded, ingested in waves, streamed by concurrent tenants over TCP under
any interleaving — the finished simulation is byte-identical (digest and
per-user metrics) to a one-shot batch run of the merged trace.
"""

from __future__ import annotations

import asyncio
import itertools
import json

import pytest

from repro import api
from repro.core.job import JobState
from repro.service import (
    LiveSimulation,
    ServiceClient,
    ServiceError,
    TenantError,
    TenantMux,
    merged_workload,
    serve_async,
)
from repro.workload.generator import GeneratorConfig, generate_cplant_workload


def payload_of(job):
    return {"at": job.submit_time, "nodes": job.nodes, "runtime": job.runtime,
            "wcl": job.wcl, "user": job.user_id}


def partition(workload, n, prefix="t"):
    """Split a workload into n per-tenant payload streams by user id."""
    streams = {}
    for j in workload.jobs:
        streams.setdefault(f"{prefix}{j.user_id % n}", []).append(payload_of(j))
    return streams


@pytest.fixture(scope="module")
def trace():
    """A small calibrated trace shared across the module."""
    return generate_cplant_workload(GeneratorConfig(scale=0.03), seed=11)


# -- LiveSimulation ------------------------------------------------------------


def test_step_driven_run_matches_one_shot(trace):
    live = LiveSimulation("easy.fairshare", system_size=trace.system_size,
                          jobs=trace.jobs)
    horizon = max(j.submit_time for j in trace.jobs) * 2
    t, step = 0.0, horizon / 23
    while not live.engine.finished and t < horizon:
        t += step
        live.advance(t)
    run = live.finish()
    batch = api.run(policy="easy.fairshare", workload=trace)
    assert run.result.digest() == batch.digest()
    assert run.result.events_processed == batch.result.events_processed


def test_ingest_waves_match_one_shot(trace):
    live = api.open_session(policy="easy.fairshare",
                            system_size=trace.system_size)
    jobs = sorted(trace.jobs, key=lambda j: (j.submit_time, j.id))
    for i in range(0, len(jobs), 60):
        wave = jobs[i:i + 60]
        live.submit(wave)
        live.advance(wave[-1].submit_time)  # mid-flight stepping
    run = live.finish()
    batch = api.run(policy="easy.fairshare", workload=trace)
    assert run.result.digest() == batch.digest()


def test_snapshot_is_live_and_side_effect_free(trace):
    live = api.open_session(policy="easy.fairshare", workload=trace)
    live.advance(200000.0)
    before = live.engine.events_processed
    snap = live.snapshot()
    assert live.engine.events_processed == before  # snapshots never simulate
    assert snap["jobs_submitted"] == len(trace.jobs)
    assert snap["jobs_completed"] + snap["jobs_running"] + snap["jobs_queued"] \
        == len(trace.jobs)
    assert 0.0 <= snap["utilization_now"] <= 1.0
    done = [j for j in live.engine.jobs if j.state is JobState.COMPLETED]
    assert set(snap["per_user"]) == {str(j.user_id) for j in done}


def test_session_rejects_runtime_limit_policies():
    with pytest.raises(ValueError, match="runtime-limit"):
        LiveSimulation("cons.72max", system_size=64)


def test_ingest_rejects_jobs_behind_the_clock(trace, job_factory):
    live = api.open_session(policy="easy.fairshare", workload=trace)
    live.advance(200000.0)
    late = job_factory(id=999999, submit=100.0)
    with pytest.raises(ValueError, match="before the clock"):
        live.submit([late])


# -- warm what-if --------------------------------------------------------------


def test_whatif_is_warm_and_non_destructive(trace):
    live = api.open_session(policy="cplant24.nomax.all", workload=trace)
    live.advance(150000.0)
    inherited = live.engine.events_processed
    assert inherited > 0
    w = live.whatif({"starvation_threshold": 600.0})
    assert w["events_inherited"] == inherited
    # completed history was inherited, not re-simulated
    assert w["jobs_completed_before_fork"] > 0
    full = api.run(policy="cplant24.nomax.all", workload=trace)
    assert w["baseline"]["events_simulated"] \
        == full.result.events_processed - inherited
    # the unmodified fork lands exactly where the batch run lands ...
    assert w["baseline"]["digest"] == full.digest()
    # ... and the live session is untouched by either fork
    assert live.engine.events_processed == inherited
    assert live.finish().result.digest() == full.digest()


def test_whatif_variant_actually_diverges():
    # a heavier trace where a 10-minute starvation threshold must bite
    wl = generate_cplant_workload(GeneratorConfig(scale=0.05), seed=3)
    live = api.open_session(policy="cplant24.nomax.all", workload=wl)
    live.advance(120000.0)
    w = live.whatif({"starvation_threshold": 600.0})
    assert w["variant"]["digest"] != w["baseline"]["digest"]
    assert w["variant"]["n_jobs"] == w["baseline"]["n_jobs"]


def test_whatif_completed_jobs_keep_their_times(trace):
    live = api.open_session(policy="easy.fairshare", workload=trace)
    live.advance(300000.0)
    done = {j.id: j.end_time for j in live.engine.jobs
            if j.state is JobState.COMPLETED}
    assert done
    fork = live.engine.fork()
    fork.finish()
    for j in fork.jobs:
        if j.id in done:
            assert j.end_time == done[j.id]


def test_whatif_rejects_unknown_overrides(trace):
    live = api.open_session(policy="cplant24.nomax.all", workload=trace)
    with pytest.raises(ValueError, match="rejects scheduler override"):
        live.whatif({"warp_speed": 9})


# -- TenantMux: deterministic merge --------------------------------------------


def stream_through_mux(streams, system_size, schedule):
    """Feed payload streams through a TenantMux following an interleaving
    schedule: a sequence of (tenant, batch_size) picks."""
    live = LiveSimulation("easy.fairshare", system_size=system_size)
    mux = TenantMux(live, max_pending=10_000)
    iters = {}
    for name in streams:
        mux.register(name)
        iters[name] = iter(streams[name])
    for name, batch in schedule:
        if name not in iters:
            continue
        chunk = list(itertools.islice(iters[name], batch))
        if chunk:
            mux.submit(name, chunk)
        else:
            mux.drain(name)
            del iters[name]
        mux.drive()
    for name in list(iters):
        for payload in iters[name]:
            mux.submit(name, [payload])
        mux.drain(name)
    mux.drive()
    return live.finish()


def test_interleavings_converge_to_the_merged_batch_run(trace):
    streams = partition(trace, 4)
    names = sorted(streams)
    round_robin = [(n, 3) for _ in range(400) for n in names]
    lopsided = ([(names[0], 50)] * 10
                + [(n, 7) for _ in range(200) for n in reversed(names)])
    run_a = stream_through_mux(streams, trace.system_size, round_robin)
    run_b = stream_through_mux(streams, trace.system_size, lopsided)
    offline = api.run(policy="easy.fairshare",
                      workload=merged_workload(streams, trace.system_size))
    assert run_a.result.digest() == offline.digest()
    assert run_b.result.digest() == offline.digest()


def test_mux_enforces_nondecreasing_arrivals(trace):
    live = LiveSimulation("easy.fairshare", system_size=64)
    mux = TenantMux(live)
    mux.register("a")
    mux.submit("a", [{"at": 100.0, "nodes": 1, "runtime": 10.0}])
    with pytest.raises(TenantError, match="non-decreasing"):
        mux.submit("a", [{"at": 50.0, "nodes": 1, "runtime": 10.0}])


def test_mux_bounds_the_pending_buffer():
    live = LiveSimulation("easy.fairshare", system_size=64)
    mux = TenantMux(live, max_pending=2)
    mux.register("a")
    with pytest.raises(TenantError, match="buffer overflow"):
        mux.submit("a", [{"at": float(i), "nodes": 1, "runtime": 1.0}
                         for i in range(3)])


def test_mux_rejects_unknown_tenants_and_duplicates():
    live = LiveSimulation("easy.fairshare", system_size=64)
    mux = TenantMux(live)
    with pytest.raises(TenantError, match="hello first"):
        mux.submit("ghost", [{"at": 0.0, "nodes": 1, "runtime": 1.0}])
    mux.register("a")
    with pytest.raises(TenantError, match="already registered"):
        mux.register("a")


def test_mux_holds_jobs_until_the_frontier_covers_them():
    live = LiveSimulation("easy.fairshare", system_size=64)
    mux = TenantMux(live)
    mux.register("fast")
    mux.register("slow")
    mux.submit("fast", [{"at": 1000.0, "nodes": 1, "runtime": 10.0},
                        {"at": 1500.0, "nodes": 1, "runtime": 10.0}])
    assert mux.drive()["admitted"] == 0  # slow's watermark still at 0
    mux.submit("slow", [{"at": 2000.0, "nodes": 1, "runtime": 10.0}])
    # frontier = min(1500, 2000): only the at=1000 job is strictly below it
    assert mux.drive()["admitted"] == 1
    mux.drain("fast")
    mux.drain("slow")
    assert mux.all_drained
    assert mux.drive()["admitted"] == 2  # frontier -> inf flushes the rest


def test_malformed_payloads_are_tenant_errors():
    from repro.service import build_job

    with pytest.raises(TenantError, match="missing required field"):
        build_job(0, {"at": 1.0, "nodes": 2}, user_id=1)
    with pytest.raises(TenantError, match="unknown job field"):
        build_job(0, {"at": 1.0, "nodes": 1, "runtime": 1.0, "color": "red"},
                  user_id=1)
    with pytest.raises(TenantError, match="nodes must be positive"):
        build_job(0, {"at": 1.0, "nodes": 0, "runtime": 1.0}, user_id=1)
    job = build_job(3, {"at": 1.0, "nodes": 1, "runtime": 1.0}, user_id=9)
    assert (job.id, job.user_id, job.wcl) == (3, 9, 1.0)  # wcl defaults to runtime


# -- the TCP server ------------------------------------------------------------


async def _start_server(**kwargs):
    info = {}
    task = asyncio.create_task(
        serve_async(ready=lambda h, p, s: info.update(host=h, port=p, svc=s),
                    **kwargs))
    while not info:
        await asyncio.sleep(0.005)
    return task, info


async def _tenant(host, port, name, jobs, batch=5, yield_every=1):
    async with await ServiceClient.connect(host, port) as c:
        await c.hello(name)
        for i, start in enumerate(range(0, len(jobs), batch)):
            await c.submit(jobs[start:start + batch])
            if i % yield_every == 0:
                await asyncio.sleep(0)
        await c.drain()


async def _run_server_session(streams, system_size, tenant_kwargs=None,
                              max_pending=64):
    task, info = await _start_server(
        policy="easy.fairshare", system_size=system_size,
        max_pending=max_pending)
    h, p = info["host"], info["port"]
    await asyncio.gather(*(
        _tenant(h, p, name, jobs, **(tenant_kwargs or {}).get(name, {}))
        for name, jobs in streams.items()
    ))
    async with await ServiceClient.connect(h, p) as c:
        result = await c.result()
        await c.shutdown()
    await task
    return result


def test_server_is_interleaving_invariant(trace):
    streams = partition(trace, 3)
    names = sorted(streams)
    result_a = asyncio.run(_run_server_session(streams, trace.system_size))
    skew = {names[0]: {"batch": 40}, names[1]: {"batch": 2, "yield_every": 3}}
    result_b = asyncio.run(_run_server_session(
        streams, trace.system_size, tenant_kwargs=skew))
    offline = api.run(policy="easy.fairshare",
                      workload=merged_workload(streams, trace.system_size))
    assert result_a["digest"] == offline.digest()
    assert result_b["digest"] == offline.digest()
    assert result_a["summary"]["n_jobs"] == len(trace.jobs)


def test_server_protocol_errors(trace):
    async def scenario():
        task, info = await _start_server(policy="easy.fairshare",
                                         system_size=64, max_pending=8)
        h, p = info["host"], info["port"]
        async with await ServiceClient.connect(h, p) as c:
            with pytest.raises(ServiceError, match="hello first"):
                await c.submit([{"at": 0.0, "nodes": 1, "runtime": 1.0}])
            await c.hello("a")
            with pytest.raises(ServiceError, match="exceeds max_pending"):
                await c.submit([{"at": float(i), "nodes": 1, "runtime": 1.0}
                                for i in range(9)])
            with pytest.raises(ServiceError, match="still active"):
                await c.result()
            with pytest.raises(ServiceError, match="unknown op"):
                await c.request("dance")
            await c.shutdown()
        await task
    asyncio.run(scenario())


def test_server_metrics_and_whatif_over_the_wire(trace):
    streams = partition(trace, 2)

    async def scenario():
        task, info = await _start_server(policy="cplant24.nomax.all",
                                         system_size=trace.system_size,
                                         max_pending=4096)
        h, p = info["host"], info["port"]
        clients = {}
        for name in sorted(streams):
            c = await ServiceClient.connect(h, p)
            await c.hello(name)
            clients[name] = c
        for name, c in clients.items():
            await c.submit(streams[name])
        snap = await clients[min(clients)].metrics()
        assert snap["jobs_submitted"] > 0
        w = await clients[min(clients)].whatif(
            {"starvation_threshold": 600.0})
        assert w["events_inherited"] == snap["events_processed"]
        assert {"baseline", "variant"} <= set(w)
        for name, c in clients.items():
            await c.drain()
            await c.close()
        async with await ServiceClient.connect(h, p) as c:
            result = await c.result()
            await c.shutdown()
        await task
        return result

    result = asyncio.run(scenario())
    offline = api.run(policy="cplant24.nomax.all",
                      workload=merged_workload(streams, trace.system_size))
    assert result["digest"] == offline.digest()


# -- the acceptance soak -------------------------------------------------------


def test_soak_eight_tenants_byte_identical_per_user_metrics():
    """8 concurrent tenants streaming >= 2k jobs over TCP: the final
    per-user metrics must be byte-identical to an offline batch run of
    the merged trace."""
    wl = generate_cplant_workload(GeneratorConfig(scale=0.16), seed=5)
    assert len(wl.jobs) >= 2000
    streams = partition(wl, 8)
    assert len(streams) == 8

    result = asyncio.run(_run_server_session(
        streams, wl.system_size,
        tenant_kwargs={name: {"batch": 11 + 7 * i}
                       for i, name in enumerate(sorted(streams))},
        max_pending=128,
    ))

    offline_wl = merged_workload(streams, wl.system_size)
    offline = api.run(policy="easy.fairshare", workload=offline_wl)
    ref = LiveSimulation("easy.fairshare", system_size=wl.system_size,
                         jobs=offline_wl.jobs)
    ref_run = ref.finish()
    assert ref_run.result.digest() == offline.digest()

    served = json.dumps(result["per_user"], sort_keys=True)
    batch = json.dumps(ref.per_user_metrics(ref_run.metric_jobs),
                       sort_keys=True)
    assert served == batch  # byte-for-byte
    assert result["digest"] == offline.digest()
    assert result["summary"]["n_jobs"] == len(wl.jobs)
