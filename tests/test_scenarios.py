"""Scenario library: registry, recipes, determinism, campaign and docs
integration."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import CampaignSpec, cell_key, run_campaign
from repro.experiments.runner import PolicyRun, run_scenario
from repro.scenarios import (
    Param,
    Scenario,
    TransformStep,
    all_scenarios,
    build_scenario,
    get_scenario,
    scenario_names,
)
from repro.workload.transforms import flash_crowds, remap_runtime_tail

REPO_ROOT = Path(__file__).resolve().parent.parent

#: small builds for tests: every cplant-based scenario at 2% scale
SMALL = {"scale": 0.02}
SMALL_BY_NAME = {"wide-jobs": {"n_jobs": 80}}


def small_params(name: str) -> dict:
    return dict(SMALL_BY_NAME.get(name, SMALL))


# -- registry -----------------------------------------------------------------

class TestRegistry:
    def test_library_ships_at_least_eight_scenarios(self):
        assert len(scenario_names()) >= 8

    def test_names_are_kebab_case_and_sorted(self):
        names = scenario_names()
        assert list(names) == sorted(names)
        for name in names:
            assert name == name.lower()
            assert " " not in name

    def test_unknown_name_fails_fast_with_known_names(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            get_scenario("nope")
        with pytest.raises(KeyError, match="cplant-baseline"):
            get_scenario("nope")

    def test_axes_cover_the_paper_and_related_work(self):
        axes = {sc.axis for sc in all_scenarios()}
        for needed in ("runtime-tail weight", "estimate quality",
                       "arrival burstiness", "user skew", "packing pressure"):
            assert needed in axes

    def test_duplicate_registration_rejected(self):
        from repro.scenarios import register

        with pytest.raises(ValueError, match="already registered"):
            register(get_scenario("cplant-baseline"))

    def test_bad_recipe_pieces_rejected_at_definition(self):
        with pytest.raises(ValueError, match="unknown base"):
            Scenario(name="x", axis="a", summary="s", motivation="m",
                     base="swf")
        with pytest.raises(ValueError, match="unknown transform"):
            Scenario(name="x", axis="a", summary="s", motivation="m",
                     transforms=(TransformStep("frobnicate"),))


# -- parameters ---------------------------------------------------------------

class TestParams:
    def test_unknown_param_fails_fast(self):
        with pytest.raises(ValueError, match="no parameter"):
            build_scenario("heavy-tail-runtimes", seed=1, bogus=2)

    def test_override_changes_the_workload(self):
        a = build_scenario("heavy-tail-runtimes", seed=1, **SMALL)
        b = build_scenario("heavy-tail-runtimes", seed=1, alpha=2.5, **SMALL)
        assert a.content_digest() != b.content_digest()

    def test_explicit_default_equals_omitted_default(self):
        sc = get_scenario("heavy-tail-runtimes")
        default_alpha = sc.param_defaults()["alpha"]
        a = sc.build(seed=1, **SMALL)
        b = sc.build(seed=1, alpha=default_alpha, **SMALL)
        assert a.content_digest() == b.content_digest()

    def test_param_scale_converts_units(self):
        p = Param("limit_hours", scale=3600.0)
        assert p.resolve({"limit_hours": 2.0}) == 7200.0


# -- builds -------------------------------------------------------------------

class TestBuilds:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_builds_a_nonempty_workload(self, name):
        wl = build_scenario(name, seed=3, **small_params(name))
        assert len(wl) > 0
        assert wl.metadata["scenario"] == name
        assert wl.metadata["scenario_seed"] == 3
        assert wl.name.startswith(f"scenario:{name}(")

    def test_runtime_limit_chunking_splits_long_jobs(self):
        wl = build_scenario("runtime-limit-chunking", seed=3, **SMALL)
        assert any(j.is_chunk for j in wl.jobs)
        assert all(j.runtime <= 72 * 3600 + 1e-6 for j in wl.jobs)

    def test_uniform_users_flattens_the_user_distribution(self):
        zipf = build_scenario("zipf-extreme", seed=3, **SMALL)
        flat = build_scenario("uniform-users", seed=3, **SMALL)
        top_share = lambda wl: (
            np.bincount(wl.users()).max() / len(wl))  # noqa: E731
        assert top_share(zipf) > 2 * top_share(flat)

    def test_narrow_cluster_shrinks_the_machine(self):
        wl = build_scenario("narrow-cluster", seed=3, nodes=256, **SMALL)
        assert wl.system_size == 256
        assert all(j.nodes <= 256 for j in wl.jobs)


# -- determinism (mirrors the campaign cache-key contract) --------------------

class TestDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_same_seed_same_digest(self, name):
        params = small_params(name)
        a = build_scenario(name, seed=5, **params)
        b = build_scenario(name, seed=5, **params)
        assert a.content_digest() == b.content_digest()

    @pytest.mark.parametrize("name", scenario_names())
    def test_different_seed_different_digest(self, name):
        params = small_params(name)
        a = build_scenario(name, seed=5, **params)
        b = build_scenario(name, seed=6, **params)
        assert a.content_digest() != b.content_digest()

    def test_digests_stable_across_processes(self):
        """Same recipe + seed must hash identically in a fresh interpreter
        (the property campaign cache keys rely on)."""
        names = list(scenario_names())
        here = {
            name: build_scenario(name, seed=11, **small_params(name)).content_digest()
            for name in names
        }
        prog = (
            "import json, sys\n"
            "from repro.scenarios import build_scenario, scenario_names\n"
            f"by_name = {SMALL_BY_NAME!r}\n"
            f"small = {SMALL!r}\n"
            "out = {n: build_scenario(n, seed=11, **by_name.get(n, small))"
            ".content_digest() for n in scenario_names()}\n"
            "print(json.dumps(out))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-c", prog], env=env, capture_output=True,
            text=True, check=True,
        )
        there = json.loads(proc.stdout)
        assert there == here


# -- the new transforms -------------------------------------------------------

class TestTransforms:
    def test_pareto_remap_preserves_work_and_job_count(self):
        base = build_scenario("cplant-baseline", seed=2, **SMALL)
        tailed = remap_runtime_tail(base, dist="pareto", alpha=1.2)
        assert len(tailed) == len(base)
        assert tailed.total_work == pytest.approx(base.total_work, rel=0.02)

    def test_smaller_alpha_is_a_heavier_tail(self):
        base = build_scenario("cplant-baseline", seed=2, **SMALL)
        spread = lambda wl: (  # noqa: E731
            wl.runtimes().max() / np.median(wl.runtimes()))
        heavy = remap_runtime_tail(base, dist="pareto", alpha=1.05)
        light = remap_runtime_tail(base, dist="pareto", alpha=3.0)
        assert spread(heavy) > spread(light)

    def test_lognormal_variant_and_bad_dist(self):
        base = build_scenario("cplant-baseline", seed=2, **SMALL)
        ln = remap_runtime_tail(base, dist="lognormal", sigma=2.0)
        assert len(ln) == len(base)
        with pytest.raises(ValueError, match="unknown tail dist"):
            remap_runtime_tail(base, dist="weibull")

    def test_remap_keeps_wcl_at_least_runtime_ratio(self):
        """Overestimation factors survive: wcl scales with runtime."""
        base = build_scenario("cplant-baseline", seed=2, **SMALL)
        tailed = remap_runtime_tail(base, dist="pareto", alpha=1.2)
        by_id = {j.id: j for j in base.jobs}
        for j in tailed.jobs:
            orig = by_id[j.id]
            if orig.wcl >= orig.runtime and j.wcl > 60.0:
                assert j.wcl >= j.runtime * 0.999

    def test_flash_crowds_moves_about_the_requested_fraction(self):
        base = build_scenario("cplant-baseline", seed=2, **SMALL)
        crowded = flash_crowds(base, fraction=0.5, n_crowds=2,
                               width_hours=1.0, seed=9)
        assert len(crowded) == len(base)
        base_subs = {j.id: j.submit_time for j in base.jobs}
        moved = sum(
            1 for j in crowded.jobs if j.submit_time != base_subs[j.id]
        )
        assert 0.4 * len(base) <= moved <= 0.5 * len(base) + 1

    def test_flash_crowds_validates_inputs(self):
        base = build_scenario("cplant-baseline", seed=2, **SMALL)
        with pytest.raises(ValueError, match="fraction"):
            flash_crowds(base, fraction=1.5)
        with pytest.raises(ValueError, match="crowd"):
            flash_crowds(base, n_crowds=0)


# -- runner integration -------------------------------------------------------

class TestRunnerIntegration:
    def test_run_scenario_returns_standard_policy_runs(self):
        suite = run_scenario(
            "wide-jobs", ["easy.fcfs", "cons.nomax"], seed=1,
            params={"n_jobs": 80},
        )
        assert set(suite) == {"easy.fcfs", "cons.nomax"}
        for run in suite.values():
            assert isinstance(run, PolicyRun)
            assert run.summary.n_jobs == 80

    def test_run_scenario_accepts_single_policy_string(self):
        suite = run_scenario("wide-jobs", "easy.fcfs", seed=1,
                             params={"n_jobs": 60})
        assert list(suite) == ["easy.fcfs"]

    def test_scenario_options_are_defaults_not_mandates(self):
        # noisy-estimates defaults to estimate_mode="wcl"; caller overrides win
        suite = run_scenario(
            "noisy-estimates", "easy.fcfs", seed=1, params=SMALL,
            estimate_mode="perfect",
        )
        assert suite["easy.fcfs"].summary.n_jobs > 0


# -- campaign integration -----------------------------------------------------

SCENARIO_SPEC = {
    "name": "scenario-sweep",
    "policies": ["easy.fcfs", "fcfs.nobackfill"],
    "scenarios": [
        {"scenario": "wide-jobs", "n_jobs": 60, "seeds": [1, 2]},
    ],
}


class TestCampaignIntegration:
    def test_scenarios_shorthand_expands_to_cells(self):
        spec = CampaignSpec.from_dict(SCENARIO_SPEC)
        cells = spec.expand()
        assert len(cells) == 4  # 2 policies x 2 seeds
        for c in cells:
            ident = c.identity()["workload"]
            assert ident["kind"] == "scenario"
            assert ident["scenario"] == "wide-jobs"
            # identity carries the *resolved* params (defaults filled in)
            assert ident["params"]["n_jobs"] == 60
            assert "load" in ident["params"]

    def test_explicit_default_param_is_the_same_cell(self):
        load = get_scenario("wide-jobs").param_defaults()["load"]
        base = CampaignSpec.from_dict(SCENARIO_SPEC).expand()
        spec2 = dict(SCENARIO_SPEC)
        spec2["scenarios"] = [
            {"scenario": "wide-jobs", "n_jobs": 60, "load": load,
             "seeds": [1, 2]},
        ]
        explicit = CampaignSpec.from_dict(spec2).expand()
        assert [cell_key(c) for c in base] == [cell_key(c) for c in explicit]

    def test_unknown_scenario_name_fails_validation(self):
        spec = CampaignSpec.from_dict({
            **SCENARIO_SPEC, "scenarios": ["no-such-regime"],
        })
        with pytest.raises(ValueError, match="unknown scenario"):
            spec.validate()

    def test_unknown_scenario_param_fails_validation(self):
        spec = CampaignSpec.from_dict({
            **SCENARIO_SPEC,
            "scenarios": [{"scenario": "wide-jobs", "bogus": 1}],
        })
        with pytest.raises(ValueError, match="no parameter"):
            spec.validate()

    def test_spec_roundtrips_through_dict(self):
        spec = CampaignSpec.from_dict(SCENARIO_SPEC)
        again = CampaignSpec.from_dict(spec.to_dict())
        assert [cell_key(c) for c in spec.expand()] == \
            [cell_key(c) for c in again.expand()]

    def test_end_to_end_with_cache_hits_on_rerun(self, tmp_path):
        from repro.campaign import CampaignCache

        spec = CampaignSpec.from_dict(SCENARIO_SPEC)
        cache = CampaignCache(tmp_path / "cache")
        first = run_campaign(spec, jobs=1, cache=cache)
        assert (first.n_simulated, first.n_cached) == (4, 0)
        second = run_campaign(spec, jobs=1, cache=cache)
        assert (second.n_simulated, second.n_cached) == (0, 4)
        assert first.aggregate()["groups"] == second.aggregate()["groups"]


# -- docs ---------------------------------------------------------------------

class TestDocsCatalog:
    def test_every_scenario_is_documented(self):
        """docs/SCENARIOS.md is the catalog; a scenario missing from it is a
        doc bug (same check runs in CI via tools/check_docs.py)."""
        doc = (REPO_ROOT / "docs" / "SCENARIOS.md").read_text()
        for name in scenario_names():
            assert f"`{name}`" in doc, f"scenario {name} missing from docs/SCENARIOS.md"
