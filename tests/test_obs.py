"""Telemetry spine: counters, traces, run stats, logging — and above all
the invariant that observation never changes simulation results."""

from __future__ import annotations

import json
import logging

import pytest

from repro.campaign import (
    CacheStats,
    CampaignCache,
    CampaignSpec,
    cell_key,
    run_campaign,
)
from repro.experiments.runner import run_policy
from repro.obs import counters as counters_mod
from repro.obs.counters import CATALOG, CATALOG_NAMES, Counters, collect, render
from repro.obs.log import get_logger, setup_logging
from repro.obs.stats import (
    ProgressMeter,
    format_eta,
    percentile,
    timing_summary,
    utilization,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceObserver,
    read_trace,
    render_summary,
    summarize_records,
)
from repro.workload.generator import random_workload


@pytest.fixture
def tiny_workload():
    """60 jobs on 16 nodes; enough queueing to exercise every hot path."""
    return random_workload(60, system_size=16, seed=5, load=1.2)


SWEEP_SPEC = {
    "name": "obs-sweep",
    "policies": ["easy.fcfs"],
    "workloads": [
        {"kind": "random", "n_jobs": 40, "system_size": 16, "load": 1.0,
         "seeds": [1, 2]},
    ],
}


# -- counters: registry mechanics ---------------------------------------------

class TestCounters:
    def test_disabled_by_default(self):
        assert counters_mod.ACTIVE is None

    def test_hit_get_and_batch_increments(self):
        c = Counters()
        c.hit("a.b")
        c.hit("a.b")
        c.hit("a.c", 5)
        assert c.get("a.b") == 2
        assert c.get("a.c") == 5
        assert c.get("never.hit") == 0

    def test_as_dict_is_sorted_and_json_safe(self):
        c = Counters()
        for name in ("z.last", "a.first", "m.mid"):
            c.hit(name)
        assert list(c.as_dict()) == ["a.first", "m.mid", "z.last"]
        json.dumps(c.as_dict())

    def test_merge_and_clear(self):
        a, b = Counters(), Counters()
        a.hit("x", 2)
        b.hit("x", 3)
        b.hit("y")
        a.merge(b)
        assert a.as_dict() == {"x": 5, "y": 1}
        a.clear()
        assert not a and len(a) == 0

    def test_collect_installs_and_restores(self):
        assert counters_mod.ACTIVE is None
        with collect() as outer:
            assert counters_mod.ACTIVE is outer
            with collect() as inner:
                assert counters_mod.ACTIVE is inner
                assert inner is not outer
            assert counters_mod.ACTIVE is outer
        assert counters_mod.ACTIVE is None

    def test_collect_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with collect():
                raise RuntimeError("boom")
        assert counters_mod.ACTIVE is None

    def test_render_alignment_and_empty(self):
        c = Counters()
        assert "(no counters recorded)" in render(c)
        c.hit("short", 1)
        c.hit("a.much.longer.name", 42)
        lines = render(c).splitlines()
        assert len(lines) == 2
        assert len({line.index(":") for line in lines}) == 1  # aligned

    def test_catalog_names_are_unique_and_dotted(self):
        assert len(set(CATALOG_NAMES)) == len(CATALOG)
        assert all("." in name for name in CATALOG_NAMES)


# -- counters: correctness on a real simulation -------------------------------

class TestCounterCorrectness:
    def test_counts_match_first_principles(self, tiny_workload):
        with collect() as c:
            run = run_policy(tiny_workload, "cons.nomax")
        # every job starts exactly once, through the instrumented seam
        assert c.get("sched.start") == len(run.result.jobs) == 60
        # every engine event is counted
        assert c.get("engine.events") == run.result.events_processed
        # each arrival/completion triggers a pass; no jobs were killed
        assert c.get("engine.schedule_pass") > 0
        assert c.get("engine.wcl_kill") == 0
        assert c.get("engine.chunk_resubmit") == 0
        # conservative reserves every queued job through the fast path
        assert c.get("profile.reserve_fitted") > 0
        # only catalog names fire from the instrumented sites
        assert set(c.as_dict()) <= set(CATALOG_NAMES)

    def test_chunk_chains_are_counted(self, tiny_workload):
        from repro.workload.transforms import split_by_runtime_limit

        chunked = split_by_runtime_limit(tiny_workload, 1800.0)
        with collect() as c:
            run = run_policy(chunked, "easy.fcfs")
        # chunk successors (index >= 1) were resubmitted by the engine
        resubmitted = sum(
            1 for j in run.result.jobs if j.is_chunk and j.chunk_index > 0
        )
        assert resubmitted > 0
        assert c.get("engine.chunk_resubmit") == resubmitted

    def test_cached_order_dominates_resorts(self, tiny_workload):
        with collect() as c:
            run_policy(tiny_workload, "easy.fcfs")
        assert (c.get("sched.order_cache_hit") + c.get("sched.order_sort")) > 0


# -- the invariant: telemetry never changes results ---------------------------

class TestDigestInvariance:
    @pytest.mark.parametrize("policy", ["cons.nomax", "cplant24.nomax.all",
                                        "easy.fairshare"])
    def test_digest_identical_with_telemetry_on(self, tiny_workload, policy):
        bare = run_policy(tiny_workload, policy).result.digest()
        with collect():
            counted = run_policy(tiny_workload, policy).result.digest()
        traced = run_policy(
            tiny_workload, policy, observers=[TraceObserver()]
        ).result.digest()
        assert bare == counted == traced


# -- tracing ------------------------------------------------------------------

class TestTrace:
    def test_ring_buffer_records(self, tiny_workload):
        obs = TraceObserver()
        run_policy(tiny_workload, "easy.fcfs", observers=[obs])
        records = list(obs.records)
        assert records[0]["ev"] == "header"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[-1]["ev"] == "end"
        assert records[-1]["jobs"] == 60
        kinds = {r["ev"] for r in records}
        assert {"header", "arrival", "start", "complete", "pass", "end"} <= kinds

    def test_file_round_trip(self, tiny_workload, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = TraceObserver(path, meta={"workload": tiny_workload.name})
        run_policy(tiny_workload, "cons.nomax", observers=[obs])
        records = list(read_trace(path))
        assert records[0]["ev"] == "header"
        assert records[0]["workload"] == tiny_workload.name
        assert records[0]["policy"] == "cons.fairshare"
        n_starts = sum(1 for r in records if r["ev"] == "start")
        assert n_starts == 60

    def test_file_and_ring_agree(self, tiny_workload, tmp_path):
        path = tmp_path / "run.jsonl"
        ring = TraceObserver()
        run_policy(tiny_workload, "easy.fcfs", observers=[ring])
        run_policy(tiny_workload, "easy.fcfs",
                   observers=[TraceObserver(path)])
        assert list(read_trace(path)) == list(ring.records)

    def test_summary_and_render(self, tiny_workload, tmp_path):
        path = tmp_path / "run.jsonl"
        run_policy(tiny_workload, "cons.nomax",
                   observers=[TraceObserver(path)])
        summary = summarize_records(read_trace(path))
        assert summary["policy"] == "cons.fairshare"
        assert summary["events"]["arrival"] == 60
        assert summary["events"]["start"] == 60
        assert summary["passes"]["total"] > 0
        assert 0.0 <= summary["passes"]["productive_fraction"] <= 1.0
        text = render_summary(summary)
        assert text.startswith("trace: policy cons.fairshare")
        assert "queue depth" in text

    def test_reader_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            list(read_trace(empty))
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"ev": "arrival", "t": 0}\n')
        with pytest.raises(ValueError, match="not a header"):
            list(read_trace(headless))
        future = tmp_path / "future.jsonl"
        future.write_text(json.dumps({"ev": "header", "schema": 99}) + "\n")
        with pytest.raises(ValueError, match="unsupported"):
            list(read_trace(future))
        broken = tmp_path / "broken.jsonl"
        broken.write_text('{"ev": "header", "schema": 1}\n{not json\n')
        with pytest.raises(ValueError, match="not JSON"):
            list(read_trace(broken))


# -- cache stats --------------------------------------------------------------

class TestCacheStats:
    def _cell_and_cache(self, tmp_path):
        cell = CampaignSpec.from_dict(SWEEP_SPEC).expand()[0]
        return cell, cell_key(cell), CampaignCache(tmp_path)

    def test_hit_miss_accounting(self, tmp_path):
        cell, key, cache = self._cell_and_cache(tmp_path)
        assert cache.get(key) is None
        cache.put(key, cell, {"x": 1.0})
        assert cache.get(key) == {"x": 1.0}
        assert (cache.stats.hits, cache.stats.misses,
                cache.stats.corrupt) == (1, 1, 0)
        assert cache.stats.lookups == 2

    def test_corrupt_classification(self, tmp_path):
        cell, key, cache = self._cell_and_cache(tmp_path)
        path = cache.put(key, cell, {"x": 1.0})
        path.write_text("{not json")
        assert cache.get(key) is None
        # wrong key inside an otherwise valid doc
        cache.put(key, cell, {"x": 1.0})
        doc = json.loads(path.read_text())
        doc["key"] = "0" * 64
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None
        # metrics block that is not a dict
        cache.put(key, cell, {"x": 1.0})
        doc = json.loads(path.read_text())
        doc["metrics"] = [1, 2]
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 3
        assert cache.stats.corrupt_keys == [key] * 3

    def test_schema_mismatch_is_a_plain_miss(self, tmp_path):
        cell, key, cache = self._cell_and_cache(tmp_path)
        path = cache.put(key, cell, {"x": 1.0})
        doc = json.loads(path.read_text())
        doc["schema"] = -1
        path.write_text(json.dumps(doc))
        assert cache.get(key) is None
        assert (cache.stats.misses, cache.stats.corrupt) == (1, 0)

    def test_snapshot_and_since_window(self):
        s = CacheStats(hits=5, misses=2, corrupt=1, corrupt_keys=["a"])
        base = s.snapshot()
        s.hits += 3
        s.corrupt += 1
        s.corrupt_keys.append("b")
        window = s.since(base)
        assert (window.hits, window.misses, window.corrupt) == (3, 0, 1)
        assert window.corrupt_keys == ["b"]
        # the snapshot is detached from later mutation
        assert base.hits == 5 and base.corrupt_keys == ["a"]


# -- campaign run stats -------------------------------------------------------

class TestRunStats:
    def test_cold_then_warm_stats(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP_SPEC)
        cache = CampaignCache(tmp_path)
        cold = run_campaign(spec, jobs=1, cache=cache).stats
        assert (cold.n_cells, cold.n_simulated, cold.n_cached) == (2, 2, 0)
        assert (cold.cache.hits, cold.cache.misses) == (0, 2)
        assert cold.cell_seconds["total"] > 0
        warm = run_campaign(spec, jobs=1, cache=cache).stats
        assert (warm.n_simulated, warm.n_cached) == (0, 2)
        # the warm window shows only this run's lookups, not lifetime totals
        assert (warm.cache.hits, warm.cache.misses) == (2, 0)

    def test_render_and_as_dict(self, tmp_path):
        spec = CampaignSpec.from_dict(SWEEP_SPEC)
        stats = run_campaign(spec, jobs=1,
                             cache=CampaignCache(tmp_path)).stats
        text = stats.render()
        assert "2 simulated, 0 cached" in text
        assert "cache   : 0 hits, 2 misses, 0 corrupt" in text
        json.dumps(stats.as_dict())

    def test_corrupt_entries_warned_once_at_end(self, tmp_path, caplog):
        spec = CampaignSpec.from_dict(SWEEP_SPEC)
        cache = CampaignCache(tmp_path)
        run_campaign(spec, jobs=1, cache=cache)
        for cell in spec.expand():
            cache.path_for(cell_key(cell)).write_text("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.campaign"):
            result = run_campaign(spec, jobs=1, cache=cache)
        assert result.n_simulated == 2
        warnings = [r for r in caplog.records
                    if "corrupt cache entr" in r.getMessage()]
        assert len(warnings) == 1
        assert "re-simulated" in warnings[0].getMessage()


# -- stats helpers ------------------------------------------------------------

class TestStatsHelpers:
    def test_percentile_linear_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 50) == 2.5
        assert percentile(data, 100) == 4.0
        assert percentile([7.0], 95) == 7.0
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(data, 101)

    def test_timing_summary_shape(self):
        s = timing_summary([0.1, 0.2, 0.3])
        assert set(s) == {"p50", "p95", "max", "total"}
        assert s["p50"] == 0.2 and s["max"] == 0.3
        assert timing_summary([])["total"] == 0.0

    def test_format_eta_units(self):
        assert format_eta(42) == "42s"
        assert format_eta(190) == "3m10s"
        assert format_eta(7500) == "2h05m"
        assert format_eta(-5) == "0s"

    def test_progress_meter_rate_and_eta(self):
        ticks = iter([0.0, 10.0, 20.0])
        meter = ProgressMeter(total=10, clock=lambda: next(ticks))
        assert meter.note(5) == "0.5 cells/s, eta 10s"
        assert meter.note(10) == "0.5 cells/s, done in 20s"

    def test_utilization_bounds(self):
        assert utilization(8.0, 10.0, 2) == pytest.approx(0.4)
        assert utilization(100.0, 10.0, 2) == 1.0  # clamped
        assert utilization(1.0, 0.0, 2) is None
        assert utilization(1.0, 10.0, 0) is None


# -- logging ------------------------------------------------------------------

class TestLogging:
    def test_loggers_are_repro_children(self):
        log = get_logger("repro.campaign.cache")
        assert log.name == "repro.campaign.cache"
        assert get_logger("cli").name == "repro.cli"

    def test_setup_levels(self):
        root = logging.getLogger("repro")
        old_level, old_handlers = root.level, list(root.handlers)
        try:
            for verbosity, level in [(-1, logging.ERROR), (0, logging.WARNING),
                                     (1, logging.INFO), (2, logging.DEBUG),
                                     (9, logging.DEBUG)]:
                setup_logging(verbosity)
                assert root.level == level
            # repeated setup must not stack handlers
            n = len(root.handlers)
            setup_logging(1)
            assert len(root.handlers) == n
        finally:
            root.setLevel(old_level)
            root.handlers[:] = old_handlers


# -- CLI plumbing -------------------------------------------------------------

class TestCli:
    def test_run_stats_prints_counters(self, capsys):
        from repro.cli import main

        rc = main(["run", "--scale", "0.02", "--seed", "1",
                   "--policy", "easy.fcfs", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hot-path counters:" in out
        assert "engine.events" in out
        assert counters_mod.ACTIVE is None  # collection scope closed

    def test_trace_run_and_summarize(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        rc = main(["trace", "run", "--scale", "0.02", "--seed", "1",
                   "--policy", "cons.nomax", "--out", str(trace)])
        assert rc == 0
        assert trace.exists()
        out = capsys.readouterr().out
        assert "trace: policy cons.fairshare" in out
        rc = main(["trace", "summarize", str(trace), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["events"]["arrival"] == doc["events"]["complete"]

    def test_trace_summarize_bad_file_fails(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "trace" in capsys.readouterr().err
