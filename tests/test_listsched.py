"""Unit tests for the list scheduler behind the hybrid FST metric."""

import pytest

from repro.core.listsched import ListScheduler
from tests.conftest import make_job


class TestPlace:
    def test_empty_machine_starts_now(self):
        ls = ListScheduler(8, now=50.0)
        assert ls.place(4, 100.0, earliest=50.0) == 50.0

    def test_takes_nth_smallest_free_time(self):
        ls = ListScheduler(4)
        ls.free_times[:] = [10.0, 20.0, 30.0, 40.0]
        # needs 2 nodes -> earliest instant two are free is t=20
        assert ls.place(2, 5.0, earliest=0.0) == 20.0
        # those two nodes now free at 25; remaining at 30, 40
        assert sorted(ls.free_times) == [25.0, 25.0, 30.0, 40.0]

    def test_full_width_waits_for_everything(self):
        ls = ListScheduler(4)
        ls.free_times[:] = [10.0, 20.0, 30.0, 40.0]
        assert ls.place(4, 5.0) == 40.0
        assert (ls.free_times == 45.0).all()

    def test_later_job_can_start_before_earlier_wide_job(self):
        # the paper: "fewer restraints than a no backfill scheduler"
        ls = ListScheduler(4)
        ls.free_times[:] = [0.0, 0.0, 100.0, 100.0]
        wide = ls.place(4, 10.0)     # starts at 100
        narrow = ls.place(2, 10.0)   # other nodes free at 110... all busy to 110
        assert wide == 100.0
        assert narrow == 110.0

    def test_no_holes_exploited(self):
        # node free at 0, occupied [50, 100) by a later placement: a list
        # scheduler cannot go back and use [0, 50)
        ls = ListScheduler(1)
        ls.place(1, 50.0, earliest=50.0)  # occupies [50, 100)
        assert ls.free_times[0] == 100.0
        assert ls.place(1, 10.0, earliest=0.0) == 100.0

    def test_invalid_requests(self):
        ls = ListScheduler(4)
        with pytest.raises(ValueError):
            ls.place(0, 10.0)
        with pytest.raises(ValueError):
            ls.place(5, 10.0)
        with pytest.raises(ValueError):
            ls.place(2, -1.0)


class TestFromRunning:
    def test_running_jobs_occupy(self):
        ls = ListScheduler.from_running(8, now=10.0, running=[(3, 100.0), (2, 50.0)])
        assert sorted(ls.free_times) == [10.0, 10.0, 10.0, 50.0, 50.0, 100.0, 100.0, 100.0]

    def test_over_subscription_rejected(self):
        with pytest.raises(ValueError, match="over-subscribe"):
            ListScheduler.from_running(4, 0.0, [(3, 10.0), (2, 10.0)])

    def test_end_clamped_to_now(self):
        ls = ListScheduler.from_running(2, now=100.0, running=[(1, 50.0)])
        assert sorted(ls.free_times) == [100.0, 100.0]


class TestOrderedPlacement:
    def test_start_time_of_stops_at_target(self):
        jobs = [
            make_job(id=1, nodes=4, runtime=100.0),
            make_job(id=2, nodes=2, runtime=50.0),
            make_job(id=3, nodes=4, runtime=10.0),
        ]
        ls = ListScheduler(4)
        t = ls.start_time_of(jobs, target_id=2, now=0.0)
        assert t == 100.0  # waits for job 1 (full width)

    def test_missing_target_raises(self):
        with pytest.raises(KeyError):
            ListScheduler(4).start_time_of([make_job(id=1)], target_id=9, now=0.0)

    def test_prefix_independence(self):
        """Jobs after the target cannot change its start (the observer's
        early-exit optimization relies on this)."""
        jobs = [make_job(id=i, nodes=(i % 3) + 1, runtime=60.0 * i) for i in range(1, 8)]
        full = ListScheduler(4).schedule_all(jobs, now=0.0)
        for k, job in enumerate(jobs):
            t = ListScheduler(4).start_time_of(jobs[: k + 1], job.id, now=0.0)
            assert t == full[job.id]

    def test_wcl_mode_uses_estimates(self):
        jobs = [
            make_job(id=1, nodes=2, runtime=10.0, wcl=100.0),
            make_job(id=2, nodes=2, runtime=10.0, wcl=10.0),
        ]
        starts = ListScheduler(2).schedule_all(jobs, now=0.0, use_wcl=True)
        assert starts[2] == 100.0

    def test_copy_is_independent(self):
        ls = ListScheduler(4)
        clone = ls.copy()
        clone.place(4, 100.0)
        assert (ls.free_times == 0.0).all()
