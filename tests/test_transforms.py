"""Tests for workload transforms, chiefly the 72 h runtime-limit split."""

import math

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine
from repro.core.job import JobState
from repro.sched.nobackfill import NoBackfillScheduler
from repro.workload.generator import random_workload
from repro.workload.model import Workload
from repro.workload.transforms import (
    filter_width,
    parent_view,
    shift_to_zero,
    split_by_runtime_limit,
)
from tests.conftest import make_job

HOUR = 3600.0
LIMIT = 72 * HOUR


def wl_of(jobs, size=1024):
    return Workload(jobs, system_size=size, name="t")


class TestSplit:
    def test_short_jobs_pass_through(self):
        wl = wl_of([make_job(id=5, runtime=100.0, wcl=200.0)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert len(out) == 1
        job = out.jobs[0]
        assert not job.is_chunk
        assert job.runtime == 100.0 and job.wcl == 200.0

    def test_long_wcl_capped_even_without_split(self):
        wl = wl_of([make_job(id=5, runtime=10 * HOUR, wcl=100 * HOUR)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert out.jobs[0].wcl == LIMIT

    def test_long_job_split_into_chunks(self):
        wl = wl_of([make_job(id=5, runtime=200 * HOUR, wcl=250 * HOUR)])
        out = split_by_runtime_limit(wl, LIMIT)
        chunks = out.jobs
        assert len(chunks) == math.ceil(200 / 72)  # 3
        assert all(c.parent_id == 5 for c in chunks)
        assert [c.chunk_index for c in chunks] == [0, 1, 2]
        assert all(c.chunk_count == 3 for c in chunks)

    def test_chunk_runtimes_sum_to_original(self):
        wl = wl_of([make_job(id=5, runtime=200 * HOUR, wcl=250 * HOUR)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert sum(c.runtime for c in out.jobs) == pytest.approx(200 * HOUR)
        assert all(c.runtime <= LIMIT for c in out.jobs)

    def test_chunk_wcls_capped_at_limit(self):
        wl = wl_of([make_job(id=5, runtime=200 * HOUR, wcl=500 * HOUR)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert all(c.wcl <= LIMIT for c in out.jobs)

    def test_chunks_inherit_seniority_and_user(self):
        wl = wl_of([make_job(id=5, submit=123.0, runtime=200 * HOUR,
                             wcl=200 * HOUR, user=7)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert all(c.seniority == 123.0 for c in out.jobs)
        assert all(c.user_id == 7 for c in out.jobs)

    def test_underestimated_long_job_gets_floor_wcl(self):
        # runtime 200h but user estimated 10h: chunks still need a wcl
        wl = wl_of([make_job(id=5, runtime=200 * HOUR, wcl=10 * HOUR)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert all(c.wcl >= 60.0 for c in out.jobs)

    def test_ids_unique_across_mixed_workload(self):
        jobs = [
            make_job(id=1, runtime=100.0),
            make_job(id=2, runtime=200 * HOUR, wcl=200 * HOUR),
            make_job(id=3, runtime=50.0),
        ]
        out = split_by_runtime_limit(wl_of(jobs), LIMIT)
        ids = [j.id for j in out.jobs]
        assert len(set(ids)) == len(ids)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            split_by_runtime_limit(wl_of([make_job()]), 0.0)

    def test_exact_multiple_runtime(self):
        wl = wl_of([make_job(id=1, runtime=144 * HOUR, wcl=144 * HOUR)])
        out = split_by_runtime_limit(wl, LIMIT)
        assert len(out.jobs) == 2
        assert all(c.runtime == LIMIT for c in out.jobs)


class TestParentView:
    def _simulate_split(self, jobs, size=8):
        wl = split_by_runtime_limit(wl_of(jobs, size), LIMIT)
        res = Engine(Cluster(size), NoBackfillScheduler("fcfs"), wl.jobs).run()
        return res.jobs

    def test_collapses_chain(self):
        done = self._simulate_split(
            [make_job(id=5, nodes=4, runtime=100 * HOUR, wcl=100 * HOUR)])
        parents = parent_view(done)
        assert len(parents) == 1
        p = parents[0]
        assert p.id == 5
        assert p.runtime == pytest.approx(100 * HOUR)
        assert p.state is JobState.COMPLETED
        assert p.end_time - p.start_time >= 100 * HOUR - 1

    def test_mixed_passthrough(self):
        done = self._simulate_split([
            make_job(id=1, nodes=2, runtime=10.0),
            make_job(id=2, nodes=2, runtime=100 * HOUR, wcl=100 * HOUR),
        ])
        parents = parent_view(done)
        assert {p.id for p in parents} == {1, 2}

    def test_incomplete_chain_raises(self):
        done = self._simulate_split(
            [make_job(id=5, nodes=4, runtime=100 * HOUR, wcl=100 * HOUR)])
        with pytest.raises(ValueError, match="chunks present"):
            parent_view(done[:-1])

    def test_uncompleted_jobs_rejected(self):
        with pytest.raises(ValueError, match="not completed"):
            parent_view([make_job(id=1)])


class TestOtherTransforms:
    def test_filter_width(self):
        wl = random_workload(100, system_size=64, seed=2)
        narrow = filter_width(wl, 1, 8)
        assert all(j.nodes <= 8 for j in narrow.jobs)
        assert len(narrow) < len(wl)

    def test_shift_to_zero(self):
        wl = wl_of([make_job(id=1, submit=500.0), make_job(id=2, submit=800.0)])
        out = shift_to_zero(wl)
        assert out.jobs[0].submit_time == 0.0
        assert out.jobs[1].submit_time == 300.0

    def test_shift_empty(self):
        wl = wl_of([])
        assert len(shift_to_zero(wl)) == 0
