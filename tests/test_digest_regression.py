"""Full-run digest-equality regression tests.

Every digest below was recorded from the straightforward pre-optimization
simulator (PR 4's seed state) on deterministic workloads.  The perf work
promises *byte-identical* results — same start/end times, same FSTs, same
event counts — so any optimization that changes a digest is a behavior
change, not a speedup, and must be rejected.

The cases cover every scheduler family, both estimate modes of the hybrid
FST observer, all three kill policies, chunk chains (72max policies), and
a workload where a third of the jobs overrun their estimates (exercising
the conservative rebuild path).  ``SimulationResult.digest()`` renders
floats with ``repr`` (exact round-trip), so equality here is bit-level.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import KillPolicy
from repro.core.job import Job
from repro.experiments.runner import run_policy
from repro.workload.generator import GeneratorConfig, generate_cplant_workload, random_workload
from repro.workload.model import Workload

#: "<policy>|<workload>[|option=value...]" -> sha256 recorded pre-optimization
RECORDED_DIGESTS = {
    "cons.nomax|small":
        "59a88df490bff71eb60f445ea82e1a5a1ee44bb77968f05a6bc48c5bed966a44",
    "cons.72max|small":
        "59a88df490bff71eb60f445ea82e1a5a1ee44bb77968f05a6bc48c5bed966a44",
    "consdyn.nomax|small":
        "1335c0040ff0bd1ee939a0c2f71547f0f7bdea3460023c52399edf6ff208cd6d",
    "cplant24.nomax.all|small":
        "7fa0a6ae09db3014efaab6e39ddf5ac5a141960adf9ceb838576d22f0026da84",
    "cplant72.72max.fair|small":
        "50a17c621e3c6a01676dcbcb494b480246b011bb939f6c64bac2947fcb9350e5",
    "easy.fairshare|small":
        "610e691eba54202e082b8e5a529a5414fad1bd1370134b43b063ff53b5bf8bce",
    "fcfs.nobackfill|small":
        "58ba7eb38d41daff105730f2200454348e35a0831021154797b0d3891bb4e5c3",
    "depth2.fairshare|small":
        "1335c0040ff0bd1ee939a0c2f71547f0f7bdea3460023c52399edf6ff208cd6d",
    "cons.nomax|heavy":
        "9ba322eed1dcbe972e12249e0d462f0e19f6bfd438080601a0ac42fe0189c283",
    "cplant24.nomax.all|heavy":
        "f6194418a62f3dd23ba2213e2b2000a6cd36911b6b2e1bd8fb33a6fa824d7cf6",
    "easy.fairshare|heavy":
        "ca1f2836971d7174484f914cf25842157af95e5058a64663e3b649d383f02f31",
    "cons.nomax|heavy|estimate_mode=wcl":
        "c6ce9516c7ec43fb1793d4207bdc3e31c42e760d21d1d516096dd797c79ddea5",
    "cons.nomax|overrun|kill_policy=IF_NEEDED":
        "c9d0ea2a7ba566c24d9a7f91f27b0ae47cb7141a8a00617811d877e38df0a9a7",
    "cons.nomax|overrun|kill_policy=AT_WCL":
        "5af8464c6a6c990f4bebeba932eefa960c7f5dd69fe789be2c9371ac5407324e",
    "cons.nomax|overrun|kill_policy=NEVER":
        "701d37faf7b0e29964260aacf0c0a4b1978135aec806442e45164eada6cb24e1",
    "consdyn.nomax|overrun|kill_policy=IF_NEEDED":
        "0d59a27fa625c8d40d6bc457a35911cdea1d8475db7855deadff978b5e1c58db",
    "cplant24.nomax.all|overrun|kill_policy=IF_NEEDED":
        "73ba9b550fa99952103568a2e531c76e04eb073a70e516dc81adc94e4bbfb47d",
    "cplant24.nomax.all|overrun|kill_policy=AT_WCL":
        "8c151179af0ab2ecfd0ae27b3cc3e6c5b121b35172eb2525f39c582bc2d6f97d",
    "easy.fairshare|overrun|kill_policy=IF_NEEDED":
        "5457ac5ded5ea3aff9cd8f6a5f4ed29668c3efa4660cd52e5414cfb1c4fa12db",
    "depth2.fairshare|overrun|kill_policy=IF_NEEDED":
        "a1f6a69198af4bb8e22f76cb2b48ce10ad304f75991a3367dd40ea1d7fbd3a46",
    "cons.nomax|overrun|estimate_mode=wcl":
        "d49e8334ec3a9f74ef10fe1ac39345232be0dc250f5aa684d0c0ea1a01d189cd",
    "cons.72max|cplant0.03":
        "6f6da2bef902d9f8faf24367287673d2fe6d7cd1ce8a5e53a07d5135d46a7273",
    "cplant72.72max.fair|cplant0.03":
        "e041afa9eea60ca2222d79dd0cd142f135112b1dda017dadbfcd53da666b353e",
    "cplant24.nomax.all|cplant0.03|estimate_mode=wcl":
        "988b2090bfe667416349b42e5a10b77026c72f29dc3883d3dc6b28405112541f",
}

#: the size-based / baseline frontier policies, recorded at introduction
#: (same byte-identical contract as the pre-optimization digests above).
#: easy.spt == easy.srpt on unchunked traces by construction: with no
#: chain tail, remaining work equals the static estimate.
FRONTIER_DIGESTS = {
    "spt.nobackfill|small":
        "1bca2d14f42117073820ab19a557b25a221a768a466ed27aba8aed8b4fe677d9",
    "easy.spt|small":
        "67c01bbc8e8138f4e4db6d99fc2e88688415354108ffc4169a67efffc8a1f02c",
    "easy.srpt|small":
        "67c01bbc8e8138f4e4db6d99fc2e88688415354108ffc4169a67efffc8a1f02c",
    "easy.widest|small":
        "42b2b03eccbdf6e24b7548e329953536326d5caeb6b4b72cfe0a3d1310f2be8c",
    "fsp.easy|small":
        "a5bb093c71bc403144cc44e70c8dff5225eec5b87ca5cf4b3b360cb6553517e1",
    "fsp.nobackfill|small":
        "5838c14c5198309f0002ce398bb0951cb23f8a66bfe5ea8b67c7faf59fe9f91f",
    "rr.user|small":
        "0a9cedf205041f1f5487bf330e3723dc9737ae85145d16b20f9a987ab8ea85cb",
    "spt.nobackfill|heavy":
        "2120da3d52b62ff467466c9484d39d240c5363b5fb1cb21b5e6510e27ac165b5",
    "easy.spt|heavy":
        "f1584cd005a4673a568a1b3af5a2bc875915cc9f0af80a848a81335b49cc24d7",
    "easy.widest|heavy":
        "293ad0415533c238ef8f78a7f718bdb2e9c3bc71253fc4ecec56f8e39d7a9c0b",
    "fsp.easy|heavy":
        "ec3b25b619e53a6dffe56dacb22d7e3523081f34f8c114e200d057d946e4146b",
    "rr.user|heavy":
        "0fbeb1daa113f92fd927f5c3a34f142a779d54339fcfc217e28671cc4cfc5fc9",
    "easy.srpt|cplant0.03":
        "6f6da2bef902d9f8faf24367287673d2fe6d7cd1ce8a5e53a07d5135d46a7273",
    "fsp.easy|cplant0.03":
        "e0aaee62813227ed2a179424df024a976be289ffe95d206e53e8f5fd1559f271",
    "rr.user|cplant0.03":
        "e0aaee62813227ed2a179424df024a976be289ffe95d206e53e8f5fd1559f271",
}


def _overrun_workload() -> Workload:
    """Dense 48-node workload where ~1/3 of jobs underestimate (and so
    overrun their WCL), forcing rebuilds and WCL kills."""
    rng = np.random.default_rng(123)
    n = 200
    widths = rng.integers(1, 24, size=n)
    runtimes = np.exp(rng.uniform(np.log(120), np.log(6 * 3600), size=n))
    factors = np.where(
        rng.random(n) < 0.35,
        rng.uniform(0.4, 0.95, size=n),
        np.exp(rng.uniform(0.0, np.log(8.0), size=n)),
    )
    wcls = np.maximum(runtimes * factors, 60.0)
    gaps = rng.exponential(float((widths * runtimes).mean()) / (1.2 * 48), size=n)
    submit = np.cumsum(gaps)
    jobs = [
        Job(id=i + 1, submit_time=float(submit[i]), nodes=int(widths[i]),
            runtime=float(runtimes[i]), wcl=float(wcls[i]),
            user_id=int(rng.integers(1, 7)))
        for i in range(n)
    ]
    return Workload(jobs, 48, name="overrun-mix")


@pytest.fixture(scope="module")
def digest_workloads():
    return {
        "small": random_workload(120, system_size=32, seed=42, load=0.9),
        "heavy": random_workload(250, system_size=64, seed=11, load=1.3),
        "cplant0.03": generate_cplant_workload(GeneratorConfig(scale=0.03), seed=5),
        "overrun": _overrun_workload(),
    }


ALL_DIGESTS = {**RECORDED_DIGESTS, **FRONTIER_DIGESTS}


@pytest.mark.parametrize("case", sorted(ALL_DIGESTS))
def test_digest_matches_recorded_baseline(case, digest_workloads):
    parts = case.split("|")
    policy, workload = parts[0], parts[1]
    kwargs = {}
    for extra in parts[2:]:
        key, value = extra.split("=")
        kwargs[key] = KillPolicy[value] if key == "kill_policy" else value
    run = run_policy(digest_workloads[workload], policy, **kwargs)
    assert run.result.digest() == ALL_DIGESTS[case], (
        f"{case}: simulation outcome changed — optimizations must be "
        "byte-identical (see docs/PERFORMANCE.md)"
    )


def test_digest_is_deterministic(digest_workloads):
    """Two identical runs must digest identically (guards accidental
    iteration-order or float nondeterminism in the simulator)."""
    a = run_policy(digest_workloads["small"], "cons.nomax").result.digest()
    b = run_policy(digest_workloads["small"], "cons.nomax").result.digest()
    assert a == b


#: policies whose cross-process stability is asserted below — one per
#: scheduler family touched by the frontier, plus the paper baseline
CROSS_PROCESS_POLICIES = (
    "cplant24.nomax.all", "spt.nobackfill", "easy.srpt", "fsp.easy",
    "rr.user",
)


def test_digests_stable_across_processes():
    """Same policy + workload must digest identically in a fresh
    interpreter: no set/dict iteration order, hash randomization, or
    module-level state may leak into a schedule (the property the
    campaign cache and the CI matrix-smoke job rely on)."""
    wl = random_workload(120, system_size=32, seed=42, load=0.9)
    here = {
        p: run_policy(wl, p).result.digest() for p in CROSS_PROCESS_POLICIES
    }
    prog = (
        "import json\n"
        "from repro.experiments.runner import run_policy\n"
        "from repro.workload.generator import random_workload\n"
        "wl = random_workload(120, system_size=32, seed=42, load=0.9)\n"
        f"keys = {CROSS_PROCESS_POLICIES!r}\n"
        "out = {p: run_policy(wl, p).result.digest() for p in keys}\n"
        "print(json.dumps(out))\n"
    )
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, "-c", prog], env=env, capture_output=True,
        text=True, check=True,
    )
    assert json.loads(proc.stdout) == here
