"""The policy x reference-order fairness matrix and its registry plumbing."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.matrix import (
    MATRIX_REFERENCE_ORDERS,
    MatrixConfig,
    matrix_from_suite,
    render_matrix,
    run_matrix,
)
from repro.campaign.cache import CampaignCache
from repro.experiments.runner import run_suite
from repro.metrics.fairness import (
    ReferenceOrder,
    get_reference_order,
    reference_order_names,
    register_reference_order,
)
from repro.sched.registry import MATRIX_POLICIES

REPO_ROOT = Path(__file__).resolve().parent.parent

#: tiny but non-degenerate sweep for the executor round-trip tests
TINY = MatrixConfig(
    policies=("fcfs.nobackfill", "easy.fcfs", "rr.user"),
    scale=0.01,
    seed=3,
)


class TestReferenceOrderRegistry:
    def test_builtins_registered_in_order(self):
        names = reference_order_names()
        assert names[:3] == ("fairshare", "fcfs", "shortest-first")
        assert tuple(MATRIX_REFERENCE_ORDERS) == names[:3]

    def test_unknown_order_lists_known_names(self):
        with pytest.raises(KeyError, match="fairshare.*fcfs.*shortest-first"):
            get_reference_order("lottery")

    def test_duplicate_registration_rejected(self):
        order = get_reference_order("fcfs")
        with pytest.raises(ValueError, match="duplicate reference order"):
            register_reference_order(
                ReferenceOrder("fcfs", "dup", order.order)
            )

    def test_order_metadata(self):
        for name in reference_order_names():
            ro = get_reference_order(name)
            assert ro.name == name
            assert ro.description


class TestMatrixConfig:
    def test_defaults_are_the_registry_frontier(self):
        cfg = MatrixConfig()
        assert cfg.policies == MATRIX_POLICIES
        assert cfg.reference_orders == MATRIX_REFERENCE_ORDERS

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one policy"):
            MatrixConfig(policies=())
        with pytest.raises(ValueError, match="at least one reference order"):
            MatrixConfig(reference_orders=())
        with pytest.raises(ValueError, match="at least one scenario"):
            MatrixConfig(scenarios=())

    def test_unknown_policy_and_order_fail_before_any_simulation(self):
        with pytest.raises(KeyError, match="unknown policy"):
            MatrixConfig(policies=("bogus.policy",))
        with pytest.raises(KeyError, match="unknown reference order"):
            MatrixConfig(reference_orders=("bogus",))

    def test_options_pin_fairshare_first(self):
        cfg = MatrixConfig(reference_orders=("fcfs", "shortest-first"))
        assert cfg.options().reference_orders == (
            "fairshare", "fcfs", "shortest-first"
        )

    def test_cells_enumerate_scenario_major(self):
        cells = TINY.cells()
        assert len(cells) == len(TINY.policies)
        assert [c.policy for c in cells] == list(TINY.policies)


class TestRunMatrix:
    def test_deterministic_in_process(self):
        a = run_matrix(TINY)
        b = run_matrix(TINY)
        assert a.render() == b.render()
        assert json.dumps(a.doc(), sort_keys=True) == \
            json.dumps(b.doc(), sort_keys=True)

    def test_cache_round_trip(self, tmp_path):
        cache = CampaignCache(tmp_path / "cells")
        first = run_matrix(TINY, cache=cache)
        assert first.n_simulated == len(TINY.policies)
        assert first.n_cached == 0
        second = run_matrix(TINY, cache=cache)
        assert second.n_simulated == 0
        assert second.n_cached == len(TINY.policies)
        assert second.render() == first.render()

    def test_render_shape(self):
        result = run_matrix(TINY)
        text = result.render()
        lines = text.splitlines()
        assert "scenario: cplant-baseline" in lines
        header = next(
            ln for ln in lines if ln.startswith("policy") and " | " in ln
        )
        for order in TINY.reference_orders:
            assert order in header
        for policy in TINY.policies:
            assert any(ln.startswith(policy) for ln in lines)

    def test_fcfs_nobackfill_row_is_exactly_fair_under_fcfs(self):
        table = run_matrix(TINY).table()
        block = table["cplant-baseline"]["fcfs.nobackfill"]["fcfs"]
        assert block["n_unfair"] == 0

    def test_deterministic_across_processes(self):
        here = run_matrix(TINY).render()
        prog = (
            "from repro.experiments.matrix import MatrixConfig, run_matrix\n"
            "cfg = MatrixConfig(policies=('fcfs.nobackfill', 'easy.fcfs', "
            "'rr.user'), scale=0.01, seed=3)\n"
            "print(run_matrix(cfg).render())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-c", prog], env=env, capture_output=True,
            text=True, check=True,
        )
        assert proc.stdout.rstrip("\n") == here


class TestMatrixFromSuite:
    def test_requires_fairness_by_order(self, small_workload):
        suite = run_suite(small_workload, ["fcfs.nobackfill"])
        with pytest.raises(ValueError, match="fairness_by_order"):
            matrix_from_suite(suite, ("fairshare",))

    def test_renders_from_policy_runs(self, small_workload):
        from repro.experiments.runner import run_policy

        orders = ("fairshare", "fcfs")
        suite = {
            p: run_policy(small_workload, p, reference_orders=orders)
            for p in ("fcfs.nobackfill", "easy.fcfs")
        }
        rows = matrix_from_suite(suite, orders)
        assert set(rows) == {"fcfs.nobackfill", "easy.fcfs"}
        for blocks in rows.values():
            assert set(blocks) == set(orders)
            for block in blocks.values():
                assert 0.0 <= block["percent_unfair"] <= 1.0
        text = render_matrix({"small": rows}, orders)
        assert "scenario: small" in text
