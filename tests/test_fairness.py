"""Tests for the fairness metrics (Section 4), especially the hybrid FST."""

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import Engine, KillPolicy
from repro.metrics.fairness import (
    FairnessStats,
    HybridFSTObserver,
    consp_fst,
    fairness_stats,
    miss_times,
    resource_equality_deficits,
    sabin_fst,
)
from repro.sched.conservative import ConservativeScheduler
from repro.sched.nobackfill import NoBackfillScheduler
from repro.sched.noguarantee import NoGuaranteeScheduler
from repro.workload.generator import random_workload
from tests.conftest import make_job


def run_with_fst(jobs, scheduler, size=8, mode="perfect", **kw):
    obs = HybridFSTObserver(mode)
    res = Engine(Cluster(size), scheduler, jobs, observers=[obs], **kw).run()
    return res, res.fst("hybrid")


class TestHybridFST:
    def test_recorded_for_every_job(self, small_workload):
        res, fst = run_with_fst(
            small_workload.jobs, NoGuaranteeScheduler(),
            size=small_workload.system_size,
        )
        assert set(fst) == {j.id for j in res.jobs}

    def test_empty_machine_fst_is_arrival(self):
        jobs = [make_job(id=1, submit=5.0, nodes=4, runtime=100.0)]
        _, fst = run_with_fst(jobs, NoGuaranteeScheduler())
        assert fst[1] == 5.0

    def test_fst_accounts_for_running_jobs(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0),
        ]
        _, fst = run_with_fst(jobs, NoGuaranteeScheduler())
        # at t=10 the machine is fully busy until t=100 (perfect estimates)
        assert fst[2] == 100.0

    def test_fst_respects_fairshare_order(self):
        """A heavy user's queued job sits behind a light user's in the
        hypothetical schedule."""
        sched = NoGuaranteeScheduler()
        sched.tracker._usage[2] = 1e9  # user 2 very heavy
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, user=1),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, user=2),
            make_job(id=3, submit=20.0, nodes=8, runtime=50.0, user=3),
        ]
        _, fst = run_with_fst(jobs, sched)
        # in job 3's snapshot: queue = {2 (heavy), 3 (light)}; 3 goes first
        assert fst[3] == 100.0

    def test_strict_fairshare_nobackfill_never_unfair(self):
        """A no-backfill scheduler in fairshare order can never start a job
        later than the no-backfill fairshare hypothetical... when estimates
        are perfect and priorities do not drift mid-wait.  Use FCFS-ish
        single-user load so the order is stable."""
        jobs = [make_job(id=i, submit=i * 5.0, nodes=(i % 4) + 1,
                         runtime=50.0, user=1) for i in range(1, 30)]
        res, fst = run_with_fst(jobs, NoBackfillScheduler("fairshare"))
        stats = fairness_stats(res.jobs, fst)
        # list scheduling is *less* restrictive than strict no-backfill, so
        # small positive misses can exist, but they should be rare
        assert stats.percent_unfair <= 0.15

    def test_wcl_mode_uses_estimates(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0, wcl=500.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, wcl=50.0),
        ]
        _, fst_wcl = run_with_fst(jobs, NoGuaranteeScheduler(), mode="wcl")
        _, fst_p = run_with_fst(jobs, NoGuaranteeScheduler(), mode="perfect")
        assert fst_wcl[2] == 500.0
        assert fst_p[2] == 100.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            HybridFSTObserver("psychic")

    def test_kill_at_wcl_respected_in_perfect_mode(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=500.0, wcl=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0, wcl=50.0),
        ]
        _, fst = run_with_fst(jobs, NoGuaranteeScheduler(),
                              kill_policy=KillPolicy.AT_WCL)
        assert fst[2] == 100.0  # job 1 dies at its limit


class TestMissAggregation:
    def test_miss_times_clamped_at_zero(self):
        job = make_job(id=1, submit=0.0)
        job.state = job.state.COMPLETED
        job.start_time, job.end_time = 5.0, 10.0
        misses = miss_times([job], {1: 20.0})
        assert misses[1] == 0.0

    def test_fairness_stats_equation5(self):
        jobs = []
        for i, (start, f) in enumerate([(100.0, 50.0), (10.0, 10.0), (30.0, 25.0)], 1):
            j = make_job(id=i, submit=0.0)
            j.state = j.state.COMPLETED
            j.start_time, j.end_time = start, start + 1
            jobs.append(j)
        fst = {1: 50.0, 2: 10.0, 3: 25.0}
        st = fairness_stats(jobs, fst, epsilon=1.0)
        assert st.n_jobs == 3
        assert st.n_unfair == 2
        assert st.percent_unfair == pytest.approx(2 / 3)
        # Eq. 5 divides by all jobs: (50 + 0 + 5) / 3
        assert st.average_miss_time == pytest.approx(55.0 / 3)
        assert st.average_miss_of_unfair == pytest.approx(27.5)

    def test_missing_fst_raises(self):
        j = make_job(id=1)
        j.state = j.state.COMPLETED
        j.start_time, j.end_time = 0.0, 1.0
        with pytest.raises(KeyError):
            miss_times([j], {})

    def test_empty_stats(self):
        st = fairness_stats([], {})
        assert st == FairnessStats(0, 0, 0.0, 0.0, 0.0, 0.0)


class TestConsP:
    def test_matches_manual_schedule(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0),
            make_job(id=3, submit=20.0, nodes=4, runtime=30.0),
        ]
        fst = consp_fst(jobs, system_size=8)
        assert fst[1] == 0.0
        assert fst[2] == 100.0
        assert fst[3] == 150.0  # cannot fit before job 2 without delaying it

    def test_backfill_into_hole(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=6, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=8, runtime=50.0),
            # 2-wide 80s job fits beside job 1 before job 2's reservation
            make_job(id=3, submit=15.0, nodes=2, runtime=80.0),
        ]
        fst = consp_fst(jobs, system_size=8)
        assert fst[3] == 15.0

    def test_conservative_scheduler_with_perfect_estimates_achieves_consp(self):
        """CONS_P is realizable: a conservative scheduler fed perfect
        estimates in FCFS order starts every job exactly at its CONS_P
        fair-start time."""
        wl = random_workload(80, system_size=16, seed=8, load=1.1)
        perfect = [j.fresh_copy() for j in wl.jobs]
        for j in perfect:
            j.wcl = max(j.runtime, 1e-3)
        ref = consp_fst(perfect, 16)
        res = Engine(
            Cluster(16), ConservativeScheduler(priority="fcfs"), perfect,
        ).run()
        for j in res.jobs:
            assert j.start_time == pytest.approx(ref[j.id], abs=1e-6)


class TestSabinFST:
    def test_no_later_arrivals_reference(self):
        jobs = [
            make_job(id=1, submit=0.0, nodes=8, runtime=100.0),
            make_job(id=2, submit=10.0, nodes=4, runtime=50.0),
        ]
        fst = sabin_fst(jobs, 8, lambda: NoBackfillScheduler("fcfs"))
        assert fst[1] == 0.0
        assert fst[2] == 100.0

    def test_matches_actual_when_no_later_jobs_interfere(self):
        wl = random_workload(25, system_size=16, seed=3, load=0.5)
        fst = sabin_fst(wl.jobs, 16, lambda: NoGuaranteeScheduler())
        res = Engine(Cluster(16), NoGuaranteeScheduler(), wl.jobs).run()
        # actual starts can be earlier (benign backfilling by later jobs
        # opening holes is impossible here) but never earlier than the
        # prefix sim says, for the last job (identical inputs)
        last = max(res.jobs, key=lambda j: (j.submit_time, j.id))
        assert res.job_by_id()[last.id].start_time == pytest.approx(fst[last.id])


class TestResourceEquality:
    def test_lone_job_has_no_deficit(self):
        j = make_job(id=1, submit=0.0, nodes=4, runtime=100.0)
        j.state = j.state.COMPLETED
        j.start_time, j.end_time = 0.0, 100.0
        out = resource_equality_deficits([j], system_size=8)
        # deserved = min(own width, size/1) x 100 = 400 = received
        assert out[1] == 0.0

    def test_starved_job_has_deficit(self):
        a = make_job(id=1, submit=0.0, nodes=8, runtime=100.0)
        a.state = a.state.COMPLETED
        a.start_time, a.end_time = 0.0, 100.0
        b = make_job(id=2, submit=0.0, nodes=8, runtime=100.0)
        b.state = b.state.COMPLETED
        b.start_time, b.end_time = 100.0, 200.0
        out = resource_equality_deficits([a, b], system_size=8)
        # both deserve half the machine while both live; a received all of
        # it early, b was starved then got it all
        assert out[2] >= 0.0
        assert out[1] <= out[2]

    def test_empty(self):
        assert resource_equality_deficits([], 8) == {}
