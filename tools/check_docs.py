#!/usr/bin/env python
"""Docs-consistency checks (run by the CI `docs` job and usable locally).

Eight checks:

1. **Scenario catalog** — every scenario registered in
   ``repro.scenarios`` must appear (as `` `name` ``) in
   docs/SCENARIOS.md, so the catalog cannot silently drift from the
   code (the tier-1 suite asserts the same in tests/test_scenarios.py).
2. **Link integrity** — every relative markdown link in README.md,
   PAPER.md, and docs/*.md must point at a file that exists.
3. **Performance docs** — docs/PERFORMANCE.md must exist, name the
   benchmark/trajectory entry points it documents (they must exist on
   disk), and docs/ARCHITECTURE.md must carry a Performance section, so
   the perf-trajectory workflow stays discoverable.
4. **Pipeline docs** — docs/PIPELINE.md must document every artifact
   registered in ``repro.artifacts`` (as `` `id` ``) plus the build
   CLI and manifest, so the paper-artifact catalog cannot drift.
5. **Observability docs** — docs/OBSERVABILITY.md must document every
   counter in ``repro.obs.counters.CATALOG`` (as `` `name` ``) and the
   trace/stats entry points, and docs/ARCHITECTURE.md must carry an
   Observability section, so the telemetry catalog cannot drift.
6. **Scheduler docs** — docs/SCHEDULERS.md must document every policy
   key in ``repro.sched.registry`` and every hybrid-FST reference order
   in ``repro.metrics`` (as `` `name` ``), so the scheduler catalog
   cannot drift.
7. **Robustness docs** — docs/ROBUSTNESS.md must document every fault
   site and kind in ``repro.campaign.faults`` (as `` `name` ``) plus
   the resume/cache-maintenance entry points, and docs/ARCHITECTURE.md
   must carry a Robustness section, so the fault-plan contract cannot
   drift.
8. **Service docs** — docs/SERVICE.md must document every protocol op
   the server dispatches (as `` `op` ``), the backpressure and what-if
   mechanisms, and the serve entry points, and docs/ARCHITECTURE.md
   must carry an API section, so the wire protocol cannot drift.

Exit status 0 = consistent; 1 = problems (all listed on stderr).

Usage::

    python tools/check_docs.py          # from the repository root
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: [text](target) — target captured; images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_scenario_catalog() -> list[str]:
    from repro.scenarios import scenario_names

    doc_path = ROOT / "docs" / "SCENARIOS.md"
    if not doc_path.is_file():
        return [f"missing {doc_path.relative_to(ROOT)}"]
    doc = doc_path.read_text()
    return [
        f"docs/SCENARIOS.md: registered scenario `{name}` is not documented"
        for name in scenario_names()
        if f"`{name}`" not in doc
    ]


def check_links() -> list[str]:
    problems: list[str] = []
    doc_files = [ROOT / "README.md", ROOT / "PAPER.md"]
    doc_files += sorted((ROOT / "docs").glob("*.md"))
    for doc in doc_files:
        if not doc.is_file():
            continue
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (doc.parent / rel).exists():
                problems.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def check_performance_docs() -> list[str]:
    problems: list[str] = []
    perf = ROOT / "docs" / "PERFORMANCE.md"
    if not perf.is_file():
        return ["missing docs/PERFORMANCE.md"]
    text = perf.read_text()
    for entry_point in (
        "benchmarks/bench_fulltrace.py",
        "benchmarks/bench_core.py",
        "tools/bench_trajectory.py",
    ):
        name = entry_point.rsplit("/", 1)[1]
        if name not in text:
            problems.append(
                f"docs/PERFORMANCE.md: does not mention `{name}`"
            )
        if not (ROOT / entry_point).is_file():
            problems.append(
                f"docs/PERFORMANCE.md: documented {entry_point} is missing"
            )
    arch = ROOT / "docs" / "ARCHITECTURE.md"
    if not arch.is_file() or "## Performance" not in arch.read_text():
        problems.append(
            "docs/ARCHITECTURE.md: missing a '## Performance' section"
        )
    return problems


def check_pipeline_docs() -> list[str]:
    from repro.artifacts import artifact_ids

    doc_path = ROOT / "docs" / "PIPELINE.md"
    if not doc_path.is_file():
        return ["missing docs/PIPELINE.md"]
    doc = doc_path.read_text()
    problems = [
        f"docs/PIPELINE.md: registered artifact `{art_id}` is not documented"
        for art_id in artifact_ids()
        if f"`{art_id}`" not in doc
    ]
    for needle in ("repro paper build", "manifest.json", "--scale"):
        if needle not in doc:
            problems.append(f"docs/PIPELINE.md: does not mention `{needle}`")
    return problems


def check_observability_docs() -> list[str]:
    from repro.obs.counters import CATALOG_NAMES

    doc_path = ROOT / "docs" / "OBSERVABILITY.md"
    if not doc_path.is_file():
        return ["missing docs/OBSERVABILITY.md"]
    doc = doc_path.read_text()
    problems = [
        f"docs/OBSERVABILITY.md: registered counter `{name}` is not documented"
        for name in CATALOG_NAMES
        if f"`{name}`" not in doc
    ]
    for needle in ("repro trace run", "repro trace summarize", "--stats"):
        if needle not in doc:
            problems.append(
                f"docs/OBSERVABILITY.md: does not mention `{needle}`"
            )
    arch = ROOT / "docs" / "ARCHITECTURE.md"
    if not arch.is_file() or "## Observability" not in arch.read_text():
        problems.append(
            "docs/ARCHITECTURE.md: missing a '## Observability' section"
        )
    return problems


def check_scheduler_docs() -> list[str]:
    from repro.metrics import reference_order_names
    from repro.sched.registry import policy_names

    doc_path = ROOT / "docs" / "SCHEDULERS.md"
    if not doc_path.is_file():
        return ["missing docs/SCHEDULERS.md"]
    doc = doc_path.read_text()
    problems = [
        f"docs/SCHEDULERS.md: registered policy `{key}` is not documented"
        for key in policy_names()
        if f"`{key}`" not in doc
    ]
    problems += [
        f"docs/SCHEDULERS.md: reference order `{name}` is not documented"
        for name in reference_order_names()
        if f"`{name}`" not in doc
    ]
    for needle in ("repro policies", "repro matrix"):
        if needle not in doc:
            problems.append(f"docs/SCHEDULERS.md: does not mention `{needle}`")
    return problems


def check_robustness_docs() -> list[str]:
    from repro.campaign.faults import FAULT_KINDS, FAULT_SITES, PLAN_ENV

    doc_path = ROOT / "docs" / "ROBUSTNESS.md"
    if not doc_path.is_file():
        return ["missing docs/ROBUSTNESS.md"]
    doc = doc_path.read_text()
    problems = [
        f"docs/ROBUSTNESS.md: fault site `{name}` is not documented"
        for name in FAULT_SITES
        if f"`{name}`" not in doc
    ]
    problems += [
        f"docs/ROBUSTNESS.md: fault kind `{name}` is not documented"
        for name in FAULT_KINDS
        if f"`{name}`" not in doc
    ]
    for needle in (PLAN_ENV, "--resume", "--keep-going",
                   "repro cache verify", "repro cache prune"):
        if needle not in doc:
            problems.append(f"docs/ROBUSTNESS.md: does not mention `{needle}`")
    arch = ROOT / "docs" / "ARCHITECTURE.md"
    if not arch.is_file() or "## Robustness" not in arch.read_text():
        problems.append(
            "docs/ARCHITECTURE.md: missing a '## Robustness' section"
        )
    return problems


def check_service_docs() -> list[str]:
    doc_path = ROOT / "docs" / "SERVICE.md"
    if not doc_path.is_file():
        return ["missing docs/SERVICE.md"]
    doc = doc_path.read_text()
    server_src = ROOT / "src" / "repro" / "service" / "server.py"
    ops = sorted(set(re.findall(r'if op == "(\w+)"', server_src.read_text())))
    problems = [
        f"docs/SERVICE.md: protocol op `{op}` is not documented"
        for op in ops
        if f"`{op}`" not in doc
    ]
    for needle in ("repro serve", "Backpressure", "What-if", "max_pending",
                   "merged_workload", "open_session"):
        if needle not in doc:
            problems.append(f"docs/SERVICE.md: does not mention `{needle}`")
    arch = ROOT / "docs" / "ARCHITECTURE.md"
    if not arch.is_file() or "## API" not in arch.read_text():
        problems.append("docs/ARCHITECTURE.md: missing a '## API' section")
    return problems


def main() -> int:
    problems = (check_scenario_catalog() + check_links()
                + check_performance_docs() + check_pipeline_docs()
                + check_observability_docs() + check_scheduler_docs()
                + check_robustness_docs() + check_service_docs())
    for p in problems:
        print(f"[check-docs] {p}", file=sys.stderr)
    if problems:
        return 1
    print("[check-docs] catalogs, pipeline docs, and doc links are consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
