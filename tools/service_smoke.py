#!/usr/bin/env python
"""CI smoke for the scheduler service (the `service-smoke` job).

End to end, against a real server process:

1. launch ``repro serve`` on an ephemeral port and parse the announced
   address from stdout;
2. stream a calibrated trace through three concurrent tenants, polling
   live metrics mid-flight;
3. ask one warm what-if and check it inherited completed history;
4. drain everyone, fetch the final result, and verify the digest and
   per-user metrics are byte-identical to an offline batch run of the
   merged trace;
5. shut the server down cleanly and require exit status 0.

Usage::

    python tools/service_smoke.py           # from the repository root
"""

from __future__ import annotations

import asyncio
import json
import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import api  # noqa: E402
from repro.service import ServiceClient, merged_workload  # noqa: E402
from repro.workload.generator import (  # noqa: E402
    GeneratorConfig,
    generate_cplant_workload,
)

POLICY = "easy.fairshare"
SCALE, SEED, TENANTS = 0.02, 4, 3
STARTUP_TIMEOUT = 30.0


def start_server(system_size: int) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--policy", POLICY, "--system-size", str(system_size),
         "--max-pending", "64"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=ROOT,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    lines: queue.Queue[str] = queue.Queue()
    threading.Thread(
        target=lambda: [lines.put(ln) for ln in proc.stdout],  # type: ignore[union-attr]
        daemon=True,
    ).start()
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        try:
            line = lines.get(timeout=0.5)
        except queue.Empty:
            if proc.poll() is not None:
                raise SystemExit(f"server died during startup (rc={proc.returncode})")
            continue
        print(line, end="")
        if "[repro-serve] listening on " in line:
            addr = line.split("listening on ", 1)[1].split()[0]
            host, port = addr.rsplit(":", 1)
            return proc, host, int(port)
    proc.kill()
    raise SystemExit("server did not announce a port in time")


async def tenant(host: str, port: int, name: str, jobs: list) -> None:
    async with await ServiceClient.connect(host, port) as c:
        await c.hello(name)
        for i in range(0, len(jobs), 7):
            await c.submit(jobs[i:i + 7])
            await asyncio.sleep(0)
        await c.drain()


async def drive(host: str, port: int, streams: dict) -> dict:
    # tenants stream concurrently while a control connection watches
    feeders = [asyncio.create_task(tenant(host, port, n, j))
               for n, j in streams.items()]
    async with await ServiceClient.connect(host, port) as ctl:
        polls = 0
        while not all(f.done() for f in feeders):
            snap = await ctl.metrics()
            polls += 1
            await asyncio.sleep(0.05)
        await asyncio.gather(*feeders)
        snap = await ctl.metrics()
        print(f"[smoke] {polls} metric polls; engine at t={snap['now']:.0f}, "
              f"{snap['jobs_completed']} completed")
        assert snap["jobs_submitted"] == sum(map(len, streams.values()))

        whatif = await ctl.whatif({"decay_factor": 0.5})
        assert whatif["events_inherited"] == snap["events_processed"], \
            "what-if did not start from warm state"
        assert whatif["baseline"]["events_simulated"] >= 0
        print(f"[smoke] what-if inherited {whatif['events_inherited']} events, "
              f"simulated {whatif['variant']['events_simulated']} forward")

        result = await ctl.result()
        await ctl.shutdown()
        return result


def main() -> int:
    wl = generate_cplant_workload(GeneratorConfig(scale=SCALE), seed=SEED)
    streams: dict = {}
    for j in wl.jobs:
        streams.setdefault(f"tenant-{j.user_id % TENANTS}", []).append(
            {"at": j.submit_time, "nodes": j.nodes, "runtime": j.runtime,
             "wcl": j.wcl, "user": j.user_id})
    print(f"[smoke] {len(wl.jobs)} jobs across {len(streams)} tenants")

    proc, host, port = start_server(wl.system_size)
    try:
        result = asyncio.run(drive(host, port, streams))
        rc = proc.wait(timeout=STARTUP_TIMEOUT)
    finally:
        if proc.poll() is None:
            proc.kill()
    if rc != 0:
        print(f"[smoke] FAIL: server exited with {rc}", file=sys.stderr)
        return 1

    offline = api.run(policy=POLICY,
                      workload=merged_workload(streams, wl.system_size))
    live = api.open_session(policy=POLICY,
                            workload=merged_workload(streams, wl.system_size))
    ref = live.finish()
    if result["digest"] != offline.digest():
        print("[smoke] FAIL: served digest != offline batch digest",
              file=sys.stderr)
        return 1
    served = json.dumps(result["per_user"], sort_keys=True)
    batch = json.dumps(live.per_user_metrics(ref.metric_jobs), sort_keys=True)
    if served != batch:
        print("[smoke] FAIL: per-user metrics differ from the batch run",
              file=sys.stderr)
        return 1
    print(f"[smoke] OK: digest {result['digest'][:12]}... matches offline, "
          f"per-user metrics byte-identical, clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
