#!/usr/bin/env python
"""Performance-trajectory harness: track simulator throughput across PRs.

Each perf-relevant PR commits a ``BENCH_<pr>.json`` report at the repo
root (written by ``benchmarks/bench_fulltrace.py --out BENCH_<pr>.json``)
with a ``baseline`` section (numbers measured on the pre-PR tree) and a
``post`` section (same machine, same workload, after the change).  This
tool reads every such report and renders the trajectory, so "is the
simulator actually getting faster?" has a one-command answer:

    python tools/bench_trajectory.py            # table across all BENCH_*.json
    python tools/bench_trajectory.py --check    # CI mode: exit 1 on regression

``--check`` fails when a report's post numbers are slower than its own
baseline (beyond ``--tolerance``), or when a report claims a speedup but
its digests do not match (a "speedup" that changes simulation results is
a behavior change, not an optimization).

Absolute seconds are machine-dependent; only within-report ratios are
meaningful, which is why every report carries its own baseline.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_BENCH_NAME = re.compile(r"BENCH_(\d+)\.json$")


def load_reports(root: Path):
    """[(pr_number, path, report), ...] sorted by PR number."""
    out = []
    for path in root.glob("BENCH_*.json"):
        m = _BENCH_NAME.search(path.name)
        if not m:
            continue
        try:
            out.append((int(m.group(1)), path, json.loads(path.read_text())))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"[trajectory] unreadable {path.name}: {exc}", file=sys.stderr)
    return sorted(out, key=lambda t: t[0])


def policy_rows(report: dict):
    """{policy: (baseline_s, post_s, speedup, digests_match)} for a report."""
    base = report.get("baseline", {}).get("policies", {})
    post = report.get("post", {}).get("policies", {})
    rows = {}
    for policy in sorted(set(base) | set(post)):
        b = base.get(policy, {}).get("seconds")
        p = post.get(policy, {}).get("seconds")
        speedup = (b / p) if (b and p) else None
        match = report.get("digests_match", {}).get(policy)
        rows[policy] = (b, p, speedup, match)
    return rows


def counter_line(rec: dict, top: int = 4) -> str:
    """Compact one-line view of a record's hot-path counters, if any."""
    counts = rec.get("counters")
    if not counts:
        return ""
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    shown = ", ".join(f"{name}={value:,}" for name, value in ranked[:top])
    extra = len(ranked) - top
    if extra > 0:
        shown += f" (+{extra} more)"
    return shown


def render(reports) -> str:
    lines = []
    for pr, path, report in reports:
        meta = report.get("post") or report.get("baseline") or {}
        post = report.get("post", {}).get("policies", {})
        lines.append(
            f"== {path.name} (PR {pr}, scale={meta.get('scale', '?')}, "
            f"{meta.get('n_jobs', '?')} jobs) =="
        )
        lines.append(f"{'policy':24s} {'baseline':>10s} {'post':>10s} "
                     f"{'speedup':>8s}  digest")
        for policy, (b, p, s, match) in policy_rows(report).items():
            fmt = lambda v, suffix="s": f"{v:.2f}{suffix}" if v is not None else "-"
            digest = {True: "ok", False: "MISMATCH", None: "-"}[match]
            lines.append(
                f"{policy:24s} {fmt(b):>10s} {fmt(p):>10s} "
                f"{fmt(s, 'x'):>8s}  {digest}"
            )
            counters = counter_line(post.get(policy, {}))
            if counters:
                lines.append(f"{'':24s} counters: {counters}")
        lines.append("")
    return "\n".join(lines)


def check(reports, tolerance: float) -> list:
    problems = []
    for pr, path, report in reports:
        for policy, (b, p, s, match) in policy_rows(report).items():
            if s is not None and s < 1.0 - tolerance:
                problems.append(
                    f"{path.name}: {policy} regressed x{s:.2f} vs its baseline"
                )
            if match is False:
                problems.append(
                    f"{path.name}: {policy} digests differ between baseline "
                    "and post — results changed, not just speed"
                )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=ROOT,
                    help="directory holding BENCH_*.json reports")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 if any report regresses vs its own baseline")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional slowdown before --check fails")
    args = ap.parse_args(argv)

    reports = load_reports(args.root)
    if not reports:
        print(f"[trajectory] no BENCH_*.json reports under {args.root}")
        return 0 if not args.check else 1
    print(render(reports))
    if args.check:
        problems = check(reports, args.tolerance)
        for p in problems:
            print(f"[trajectory] {p}", file=sys.stderr)
        if problems:
            return 1
        print("[trajectory] all reports at or above their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
