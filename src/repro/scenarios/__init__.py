"""Scenario library: named, sweepable workload regimes.

``get_scenario("heavy-tail-runtimes").build(seed=7, alpha=1.3)`` yields a
:class:`~repro.workload.model.Workload`; the same names slot into campaign
specs (``{"kind": "scenario", "scenario": ...}`` workloads or the
top-level ``"scenarios"`` list) and the ``repro scenarios`` CLI.  See
docs/SCENARIOS.md for the catalog.
"""

from .base import (
    Param,
    Scenario,
    ScenarioParam,
    TransformStep,
    all_scenarios,
    build_scenario,
    get_scenario,
    register,
    scenario_names,
)
from . import library  # noqa: F401  (imports populate the registry)

__all__ = [
    "Param",
    "Scenario",
    "ScenarioParam",
    "TransformStep",
    "all_scenarios",
    "build_scenario",
    "get_scenario",
    "register",
    "scenario_names",
]
