"""The stock scenario library: ten named workload regimes.

Every scenario isolates one axis the fairness literature says matters:

* **runtime-tail weight** — size-based policies' fairness hinges on how
  heavy the job-size tail is (Dell'Amico, Carra & Michiardi, *On Fair
  Size-Based Scheduling*);
* **estimate quality** — scheduling with known vs. noisy sizes changes
  what is achievable (Berg, Vesilo & Harchol-Balter, *heSRPT*); in this
  simulator WCLs drive backfill reservations and kill decisions directly;
* **arrival burstiness** — the paper's Section 2.2 overload weeks are
  where CPlant's fairness problems appeared;
* **user skew** — the fairshare priority only matters when heavy and
  light users coexist (paper Section 4.1);
* **packing pressure** — width-categorized fairness (Figures 10/12/16/18)
  and loss of capacity (Eq. 4) respond to job width vs. machine size;
* **runtime limits** — the paper's Section 5.1 chunking policy, exposed
  as a workload transform so *any* policy can be studied under it.

All cplant-based scenarios accept a ``scale`` parameter (fraction of the
full 13,614-job trace; default 0.1 keeps a stock run under a minute) and
keep the Table 1/2 calibration for everything their axis does not touch.
"""

from __future__ import annotations

from .base import Param, Scenario, ScenarioParam, TransformStep, register

_SCALE = ScenarioParam("scale", 0.1, "fraction of the full calibrated trace")


CPLANT_BASELINE = register(Scenario(
    name="cplant-baseline",
    axis="none (calibrated reference)",
    summary="the Table-1/Table-2-calibrated CPlant/Ross trace, unmodified",
    motivation="paper Tables 1-2 and Figure 3: the case study's own workload",
    params=(_SCALE,),
    config_map=(("scale", "scale"),),
))

HEAVY_TAIL_RUNTIMES = register(Scenario(
    name="heavy-tail-runtimes",
    axis="runtime-tail weight",
    summary="runtimes quantile-remapped onto a Pareto tail (median kept)",
    motivation="Dell'Amico et al., On Fair Size-Based Scheduling: fairness "
               "of size-based policies hinges on heavy-tailed size "
               "distributions",
    params=(
        _SCALE,
        ScenarioParam("alpha", 1.1, "Pareto shape; smaller = heavier tail"),
    ),
    config_map=(("scale", "scale"),),
    transforms=(
        TransformStep("runtime_tail",
                      (("dist", "pareto"), ("alpha", Param("alpha")))),
    ),
))

BURSTY_ARRIVALS = register(Scenario(
    name="bursty-arrivals",
    axis="arrival burstiness",
    summary="spiked weekly profile plus flash crowds packed into short "
            "windows",
    motivation="paper Section 2.2: overload weeks with 'extremely high "
               "queue lengths and wait times' are where unfairness appears",
    params=(
        _SCALE,
        ScenarioParam("peak_ratio", 4.0, "spike-week load as multiple of mean"),
        ScenarioParam("crowd_fraction", 0.25,
                      "fraction of jobs resubmitted inside flash crowds"),
    ),
    config_map=(("scale", "scale"), ("peak_ratio", "peak_load_ratio")),
    transforms=(
        TransformStep("flash_crowds",
                      (("fraction", Param("crowd_fraction")),
                       ("n_crowds", 4), ("width_hours", 2.0))),
    ),
))

ACCURATE_ESTIMATES = register(Scenario(
    name="accurate-estimates",
    axis="estimate quality",
    summary="near-perfect wall-clock limits: 90% exact, tiny overestimates, "
            "no round-number snapping",
    motivation="Berg et al., heSRPT: scheduling with known job sizes — the "
               "optimistic endpoint of the paper's Figures 5-7 estimate "
               "structure",
    generator=(("exact_estimate_prob", 0.9), ("underestimate_prob", 0.0),
               ("round_wcl_prob", 0.0)),
    params=(
        _SCALE,
        ScenarioParam("sigma", 0.05,
                      "log10 half-normal spread of the residual "
                      "overestimation factor"),
    ),
    config_map=(("scale", "scale"), ("sigma", "overest_sigma")),
    options=(("estimate_mode", "wcl"),),
))

NOISY_ESTIMATES = register(Scenario(
    name="noisy-estimates",
    axis="estimate quality",
    summary="no exact estimates and a wide overestimation spread "
            "(sweep sigma for the error dial)",
    motivation="Berg et al., heSRPT: error-prone size estimates; the paper's "
               "Figure 5 shows CPlant users overestimated by 3x+ routinely",
    generator=(("exact_estimate_prob", 0.0), ("underestimate_prob", 0.08)),
    params=(
        _SCALE,
        ScenarioParam("sigma", 1.5,
                      "log10 half-normal spread of the overestimation factor "
                      "(calibrated trace uses 0.85)"),
    ),
    config_map=(("scale", "scale"), ("sigma", "overest_sigma")),
    options=(("estimate_mode", "wcl"),),
))

ZIPF_EXTREME = register(Scenario(
    name="zipf-extreme",
    axis="user skew",
    summary="a few users dominate submissions (steep Zipf exponent)",
    motivation="paper Section 4.1: the fairshare priority exists to "
               "discriminate heavy from light users; this is its stress end",
    params=(
        _SCALE,
        ScenarioParam("s", 2.0, "Zipf exponent over user ranks "
                                "(calibrated trace uses 1.10)"),
    ),
    config_map=(("scale", "scale"), ("s", "zipf_exponent")),
))

UNIFORM_USERS = register(Scenario(
    name="uniform-users",
    axis="user skew",
    summary="every user submits equally often (Zipf exponent 0)",
    motivation="fairshare's null hypothesis: with no heavy users, fairshare "
               "order should degenerate towards FCFS (paper Section 4.1)",
    generator=(("zipf_exponent", 0.0),),
    params=(
        _SCALE,
        ScenarioParam("n_users", 120, "population size"),
    ),
    config_map=(("scale", "scale"), ("n_users", "n_users")),
))

NARROW_CLUSTER = register(Scenario(
    name="narrow-cluster",
    axis="packing pressure",
    summary="the calibrated job mix offered to a smaller machine "
            "(same work, fewer nodes, wide jobs near machine size)",
    motivation="paper Figures 10/12: width-categorized fairness; shrinking "
               "the machine raises offered load and packing difficulty "
               "together",
    params=(
        _SCALE,
        ScenarioParam("nodes", 512,
                      "machine size (calibrated trace uses 1024)"),
    ),
    config_map=(("scale", "scale"), ("nodes", "system_size")),
))

WIDE_JOBS = register(Scenario(
    name="wide-jobs",
    axis="packing pressure",
    summary="uniform-width jobs up to 90% of the machine: maximal "
            "fragmentation stress",
    motivation="paper Figures 16/18 and Eq. 4 (loss of capacity): wide jobs "
               "are the ones backfilling strands",
    base="random",
    generator=(("system_size", 256), ("n_users", 24)),
    params=(
        ScenarioParam("n_jobs", 1200, "number of jobs"),
        ScenarioParam("load", 1.1, "offered load (1.0 = machine saturated)"),
        ScenarioParam("width_frac", 0.9,
                      "widest job as a fraction of the machine"),
    ),
    config_map=(("n_jobs", "n_jobs"), ("load", "load"),
                ("width_frac", "max_width_frac")),
))

RUNTIME_LIMIT_CHUNKING = register(Scenario(
    name="runtime-limit-chunking",
    axis="runtime limits",
    summary="calibrated trace with the Section 5.1 maximum-runtime split "
            "pre-applied (long jobs become checkpoint/restart chunk chains)",
    motivation="paper Section 5.1: runtime limits as a fairness lever — "
               "pre-applying the transform lets *nomax* policies be studied "
               "under limits too",
    params=(
        _SCALE,
        ScenarioParam("limit_hours", 72.0, "maximum runtime before splitting"),
    ),
    config_map=(("scale", "scale"),),
    transforms=(
        TransformStep("split_runtime_limit",
                      (("limit", Param("limit_hours", scale=3600.0)),)),
    ),
))
