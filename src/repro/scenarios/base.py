"""Scenario machinery: declarative workload recipes plus their registry.

A :class:`Scenario` is a *named, parameterized recipe* that turns one seed
into one :class:`~repro.workload.model.Workload`:

* a **base generator** (``cplant`` — the calibrated synthetic trace — or
  ``random``) with fixed keyword overrides;
* **sweepable parameters** with defaults, each optionally mapped onto a
  generator keyword (``config_map``) or spliced into a transform argument
  (:class:`Param` references);
* a **transform pipeline** applied in order, each seeded step receiving an
  independent child seed derived from the scenario seed;
* **run-option defaults** (e.g. ``estimate_mode``) the single-scenario
  runner applies unless the caller overrides them.

Everything that determines the output is in ``(name, params, seed)``, so a
scenario slots into campaign cache keys exactly like a generator config:
same triple, same workload, byte for byte, in any process.

The registry is module-level and populated by :mod:`.library` at import
time; :func:`register` is public so downstream studies can add their own
scenarios next to the stock ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..workload.generator import GeneratorConfig, generate_cplant_workload, random_workload
from ..workload.model import Workload
from ..workload.transforms import flash_crowds, remap_runtime_tail, split_by_runtime_limit

#: base generator kinds a scenario may build on
SCENARIO_BASES = ("cplant", "random")

#: transform steps a recipe may name -> the callable that applies them
TRANSFORMS: Dict[str, Callable[..., Workload]] = {
    "runtime_tail": remap_runtime_tail,
    "flash_crowds": flash_crowds,
    "split_runtime_limit": split_by_runtime_limit,
}

#: transform steps that take a ``seed`` keyword (fed a derived child seed)
SEEDED_TRANSFORMS = frozenset({"flash_crowds"})


@dataclass(frozen=True)
class Param:
    """Reference to a scenario parameter inside a transform-step argument.

    ``scale`` converts user-facing units into transform units (e.g. a
    ``limit_hours`` parameter feeding a seconds-valued ``limit`` argument).
    """

    name: str
    scale: float = 1.0

    def resolve(self, params: Mapping[str, object]) -> object:
        value = params[self.name]
        if self.scale != 1.0:
            return float(value) * self.scale
        return value


@dataclass(frozen=True)
class ScenarioParam:
    """One sweepable knob: name, default, and what it dials."""

    name: str
    default: object
    doc: str = ""


@dataclass(frozen=True)
class TransformStep:
    """One named pipeline stage with (possibly :class:`Param`-valued) args."""

    name: str
    args: Tuple[Tuple[str, object], ...] = ()

    def apply(self, wl: Workload, params: Mapping[str, object], seed: int) -> Workload:
        fn = TRANSFORMS[self.name]
        kwargs = {
            k: (v.resolve(params) if isinstance(v, Param) else v)
            for k, v in self.args
        }
        if self.name in SEEDED_TRANSFORMS and "seed" not in kwargs:
            kwargs["seed"] = seed
        return fn(wl, **kwargs)


@dataclass(frozen=True)
class Scenario:
    """A named workload regime: base generator + params + transforms.

    ``axis`` names the workload dimension the scenario isolates (runtime
    tail, arrival burstiness, estimate quality, user skew, packing
    pressure, ...); ``motivation`` cites the paper section or related work
    that makes that axis worth studying.
    """

    name: str
    axis: str
    summary: str
    motivation: str
    base: str = "cplant"
    #: fixed generator keywords (not sweepable)
    generator: Tuple[Tuple[str, object], ...] = ()
    #: sweepable parameters with defaults
    params: Tuple[ScenarioParam, ...] = ()
    #: (param name, generator keyword) wiring
    config_map: Tuple[Tuple[str, str], ...] = ()
    #: transform pipeline, applied in order after generation
    transforms: Tuple[TransformStep, ...] = ()
    #: RunOptions defaults for single-scenario runs (campaigns set their own)
    options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.base not in SCENARIO_BASES:
            raise ValueError(
                f"scenario {self.name!r}: unknown base {self.base!r}; "
                f"known: {SCENARIO_BASES}"
            )
        for step in self.transforms:
            if step.name not in TRANSFORMS:
                raise ValueError(
                    f"scenario {self.name!r}: unknown transform {step.name!r}; "
                    f"known: {sorted(TRANSFORMS)}"
                )

    # -- parameters ----------------------------------------------------------

    def param_defaults(self) -> Dict[str, object]:
        return {p.name: p.default for p in self.params}

    def resolve_params(self, overrides: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Defaults merged with overrides; unknown names fail fast."""
        resolved = self.param_defaults()
        unknown = sorted(set(overrides or {}) - set(resolved))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) {unknown}; "
                f"known: {sorted(resolved) or '(none)'}"
            )
        resolved.update(overrides or {})
        return resolved

    # -- construction --------------------------------------------------------

    def build(self, seed: int = 0, **overrides: object) -> Workload:
        """One workload from one seed; ``overrides`` dial the parameters."""
        params = self.resolve_params(overrides)
        gen_kwargs = dict(self.generator)
        for pname, gfield in self.config_map:
            gen_kwargs[gfield] = params[pname]
        if self.base == "cplant":
            wl = generate_cplant_workload(GeneratorConfig(**gen_kwargs), seed=seed)
        else:
            wl = random_workload(seed=seed, **gen_kwargs)
        for i, step in enumerate(self.transforms):
            wl = step.apply(wl, params, seed=_child_seed(seed, i))
        inner = ", ".join(f"{k}={params[k]}" for k in sorted(params))
        wl.name = f"scenario:{self.name}({inner}, seed={seed})" if inner \
            else f"scenario:{self.name}(seed={seed})"
        wl.metadata = {
            **wl.metadata,
            "scenario": self.name,
            "scenario_params": dict(params),
            "scenario_seed": seed,
        }
        return wl

    def describe(self) -> str:
        lines = [
            f"{self.name} — {self.summary}",
            f"  axis       : {self.axis}",
            f"  motivation : {self.motivation}",
            f"  base       : {self.base}"
            + (f" ({', '.join(f'{k}={v}' for k, v in self.generator)})"
               if self.generator else ""),
        ]
        if self.params:
            lines.append("  parameters :")
            for p in self.params:
                lines.append(f"    {p.name:<14} default={p.default!r:<8} {p.doc}")
        else:
            lines.append("  parameters : (none)")
        if self.transforms:
            steps = " -> ".join(s.name for s in self.transforms)
            lines.append(f"  transforms : {steps}")
        if self.options:
            opts = ", ".join(f"{k}={v}" for k, v in self.options)
            lines.append(f"  run options: {opts}")
        return "\n".join(lines)


def _child_seed(seed: int, stage: int) -> int:
    """Independent per-transform-stage seed, stable across processes."""
    return int(np.random.SeedSequence([int(seed), stage]).generate_state(1)[0])


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (library scenarios and user ones)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> List[Scenario]:
    return [_REGISTRY[k] for k in scenario_names()]


def build_scenario(name: str, seed: int = 0, **overrides: object) -> Workload:
    """Shorthand: look up a scenario and build its workload."""
    return get_scenario(name).build(seed=seed, **overrides)
