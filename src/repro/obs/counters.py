"""Hot-path counters: a registry of named integer counters, off by default.

The simulator's fast paths (trusted profile mutations, the skip-when-clean
compression pass, the cached fairshare priority order, the incremental
FreeTimeline) were landed on the promise that they fire on the hot path —
this module is how that promise becomes observable.  Instrumented sites
follow one pattern::

    from ..obs import counters as _counters
    ...
    c = _counters.ACTIVE
    if c is not None:
        c.hit("profile.reserve_fitted")

``ACTIVE`` is a module-level global that is ``None`` unless a collection
is in progress, so the disabled cost per site is one module-attribute
load and an identity test — no method call, no allocation.  The digest
regression suite runs with counters both off and on; counting must never
change simulation results (counters are write-only from the simulator's
point of view).

Collection is process-local and not re-entrant by design: ``collect()``
installs a fresh :class:`Counters` as ``ACTIVE`` and restores the
previous value on exit, so nested scopes each see their own registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

#: the live registry instrumented sites write into; ``None`` = disabled.
ACTIVE: Optional["Counters"] = None


class Counters:
    """A plain name -> integer-count registry.

    Names are dotted paths (``subsystem.event``); the canonical set is
    :data:`CATALOG`, which docs and tests are checked against.  Unknown
    names are accepted (extensions may add their own) but the catalog is
    the contract.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def hit(self, name: str, n: int = 1) -> None:
        """Increment ``name`` by ``n`` (the single hot-path entry point)."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counts in sorted-name order (JSON-safe, deterministic)."""
        return {k: self._counts[k] for k in sorted(self._counts)}

    def merge(self, other: "Counters") -> None:
        for name, n in other._counts.items():
            self.hit(name, n)

    def clear(self) -> None:
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:
        head = ", ".join(f"{k}={v}" for k, v in list(self.as_dict().items())[:4])
        more = "..." if len(self._counts) > 4 else ""
        return f"Counters({head}{more})"


def enable(counters: Optional[Counters] = None) -> Counters:
    """Install ``counters`` (or a fresh registry) as the active one."""
    global ACTIVE
    ACTIVE = counters if counters is not None else Counters()
    return ACTIVE


def disable() -> Optional[Counters]:
    """Stop collecting; returns the registry that was active (if any)."""
    global ACTIVE
    out = ACTIVE
    ACTIVE = None
    return out


def active() -> Optional[Counters]:
    return ACTIVE


@contextmanager
def collect(counters: Optional[Counters] = None) -> Iterator[Counters]:
    """Scope-bound collection; restores the previous registry on exit."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = counters if counters is not None else Counters()
    try:
        yield ACTIVE
    finally:
        ACTIVE = prev


def render(counters: Counters, indent: str = "  ") -> str:
    """Human-readable counter block, one ``name : count`` line each."""
    counts = counters.as_dict()
    if not counts:
        return f"{indent}(no counters recorded)"
    width = max(len(k) for k in counts)
    return "\n".join(f"{indent}{k:<{width}} : {v:>12,}" for k, v in counts.items())


#: the canonical counter catalog: ``(name, what one increment means)``.
#: docs/OBSERVABILITY.md must document every name here (enforced by
#: ``tools/check_docs.py``), so the catalog cannot silently drift.
CATALOG: Tuple[Tuple[str, str], ...] = (
    ("engine.events", "one simulation event dispatched by the engine"),
    ("engine.schedule_pass", "one scheduler pass (arrival/completion/timer)"),
    ("engine.wcl_kill", "one job killed by the IF_NEEDED wall-clock rule"),
    ("engine.chunk_resubmit", "one chunk-chain successor submitted"),
    ("profile.earliest_fit", "one earliest-fit query against a profile"),
    ("profile.reserve", "one validated (slow-path) reserve"),
    ("profile.release", "one validated (slow-path) release"),
    ("profile.reserve_fitted", "one trusted fast-path reserve"),
    ("profile.release_reserved", "one trusted fast-path release"),
    ("profile.from_occupations", "one batch profile rebuild"),
    ("listsched.place", "one incremental FreeTimeline placement"),
    ("listsched.rebuild", "one full FreeTimeline rebuild (from_pairs)"),
    ("cons.rebuild", "one conservative full-profile rebuild"),
    ("cons.compress", "one compression (improvement) pass executed"),
    ("cons.compress_skipped", "one compression pass skipped as provably clean"),
    ("cons.heap_push", "one overrun/overdue heap push"),
    ("cons.heap_compact", "one lazy-heap compaction"),
    ("sched.start", "one job started by any scheduler"),
    ("sched.backfill_start", "one start that leapt past the priority head"),
    ("sched.order_cache_hit", "one priority-order request served from cache"),
    ("sched.order_sort", "one full priority-order re-sort"),
    ("fairshare.settle", "one usage settlement that advanced accounts"),
    ("fairshare.decay", "one daily decay tick applied"),
    ("fsp.settle", "one fluid-drain step of the FSP virtual machine"),
    ("fsp.virtual_complete", "one job finishing in the FSP virtual machine"),
    ("rr.rotate", "one round-robin rotation scan over user lanes"),
    ("campaign.retry", "one campaign cell retried after a failure"),
    ("campaign.pool_rebuild", "one worker pool rebuilt after loss/timeout"),
    ("campaign.timeout", "one cell killed by the wall-clock watchdog"),
    ("campaign.quarantined", "one cell quarantined (deterministic failure)"),
)

#: just the names, for membership checks.
CATALOG_NAMES: Tuple[str, ...] = tuple(name for name, _ in CATALOG)
