"""Small numeric helpers for run statistics: percentiles and a rate/ETA
progress meter.

Kept dependency-free (no numpy) so the campaign executor's stats path
stays importable in the leanest worker context, and deterministic (pure
functions of their inputs) so stats blocks embedded in outputs do not
perturb byte-identical-rebuild checks.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default (linear) method on sorted
    input; returns 0.0 for an empty sequence rather than raising, since
    stats blocks render for empty campaigns too.
    """
    if not values:
        return 0.0
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * (q / 100.0)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(data):
        return float(data[-1])
    return float(data[lo] * (1.0 - frac) + data[lo + 1] * frac)


def timing_summary(values: Sequence[float]) -> Dict[str, float]:
    """The standard wall-time histogram block: p50/p95/max plus total."""
    return {
        "p50": round(percentile(values, 50.0), 4),
        "p95": round(percentile(values, 95.0), 4),
        "max": round(max(values), 4) if values else 0.0,
        "total": round(sum(values), 4),
    }


def format_eta(seconds: float) -> str:
    """Compact duration: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressMeter:
    """Tracks completion rate and remaining time for a fixed work count.

    ``note(done)`` returns a one-line suffix (``"3.1 cells/s, eta 42s"``)
    suitable for appending to a progress line.  The clock is injectable
    for tests; rate is measured over the whole run so far (cache hits
    complete instantly and legitimately pull the rate up).
    """

    def __init__(self, total: int, clock=time.perf_counter) -> None:
        self.total = total
        self._clock = clock
        self._t0 = clock()

    def note(self, done: int) -> str:
        elapsed = max(self._clock() - self._t0, 1e-9)
        rate = done / elapsed
        if done >= self.total or rate <= 0:
            return f"{rate:.1f} cells/s, done in {format_eta(elapsed)}"
        eta = (self.total - done) / rate
        return f"{rate:.1f} cells/s, eta {format_eta(eta)}"


def utilization(busy_seconds: float, wall_seconds: float,
                workers: int) -> Optional[float]:
    """Fraction of worker capacity spent simulating (None when idle)."""
    if wall_seconds <= 0 or workers <= 0:
        return None
    return min(1.0, busy_seconds / (wall_seconds * workers))
