"""Observability: hot-path counters, structured event tracing, logging.

Three tiers, all zero-overhead when disabled:

* :mod:`.counters` — a process-local registry of named integer counters
  behind a module-level ``ACTIVE`` global (``None`` unless a collection
  is in progress); the simulator's fast paths increment them so perf
  claims ("the trusted reserve path fires", "compression passes are
  skipped") are measurable instead of asserted.
* :mod:`.trace` — a :class:`~repro.obs.trace.TraceObserver` streaming
  schema-versioned JSONL event records (arrival/start/completion/kill/
  scheduling pass) to a file or ring buffer, plus the reader and
  summarizer behind ``repro trace run|summarize``.
* :mod:`.log` — standard :mod:`logging` wiring (``repro.*`` loggers,
  CLI ``-v``/``-q`` mapping).

This package sits *below* :mod:`repro.core` in the layer map: core hot
paths import :mod:`.counters`.  The trace module imports core (it extends
``Observer``) and is therefore imported lazily — ``from repro.obs.trace
import TraceObserver`` — never from this ``__init__``.
"""

from .counters import (
    CATALOG,
    CATALOG_NAMES,
    Counters,
)
from .counters import (
    active as counters_active,
)
from .counters import (
    collect as collect_counters,
)
from .counters import (
    disable as disable_counters,
)
from .counters import (
    enable as enable_counters,
)
from .counters import (
    render as render_counters,
)
from .log import get_logger, setup_logging
from .stats import ProgressMeter, format_eta, percentile, timing_summary

__all__ = [
    "CATALOG",
    "CATALOG_NAMES",
    "Counters",
    "ProgressMeter",
    "collect_counters",
    "counters_active",
    "disable_counters",
    "enable_counters",
    "format_eta",
    "get_logger",
    "percentile",
    "render_counters",
    "setup_logging",
    "timing_summary",
]
