"""Structured event tracing: schema-versioned JSONL records of every
scheduler-visible occurrence in a simulation.

:class:`TraceObserver` rides the engine's :class:`~repro.core.engine.Observer`
hooks — including the telemetry hooks ``on_schedule_pass`` / ``on_kill`` /
``on_chunk_chain`` — and streams one JSON object per line to a file, a
file-like object, or an in-memory ring buffer.  The record stream is what
the paper's analysis is *about* (every arrival/completion triggers a queue
pass; fairness is judged against the resulting start order), so the trace
is the ground truth for per-policy decision summaries: passes per event,
queue-depth percentiles, starts per pass, kill counts.

Record shapes (all lines are JSON objects; ``t`` is simulation seconds):

=========  ==================================================================
``ev``     fields
=========  ==================================================================
header     ``schema``, ``policy``, ``cluster``, ``n_jobs``, plus caller meta
arrival    ``t``, ``job``, ``nodes``, ``wcl``, ``user``
start      ``t``, ``job``, ``nodes``, ``wait``
complete   ``t``, ``job``, ``nodes``
kill       ``t``, ``job``
chunk      ``t``, ``job``, ``parent``, ``index``
pass       ``t``, ``reason``, ``queue``, ``running``, ``free``, ``started``
end        ``t``, ``events``, ``jobs``
=========  ==================================================================

Tracing is an observation layer only: attaching a ``TraceObserver`` must
leave :meth:`SimulationResult.digest` byte-identical (enforced by
``tests/test_obs.py``).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

from ..core.engine import Engine, Observer
from ..core.job import Job
from ..core.results import SimulationResult
from .stats import percentile

#: bump when record shapes change; readers reject newer schemas.
TRACE_SCHEMA = 1

#: default ring-buffer capacity when no sink is given
DEFAULT_RING = 65_536

Sink = Union[str, Path, IO[str], None]


class TraceObserver(Observer):
    """Streams simulation events as JSONL records.

    ``sink`` may be a path (opened on attach, closed at end-of-run), an
    open file-like object (written to, left open), or ``None`` for an
    in-memory ring buffer of the last ``ring`` records (dicts, not
    strings — cheap to assert on in tests).  ``meta`` is merged into the
    header record (workload name, CLI arguments, ...).
    """

    def __init__(self, sink: Sink = None, ring: int = DEFAULT_RING,
                 meta: Optional[Dict[str, object]] = None) -> None:
        self._sink_spec = sink
        self._fh: Optional[IO[str]] = None
        self._owns_fh = False
        self.meta = dict(meta or {})
        #: ring-buffer mode storage (None when writing to a file)
        self.records: Optional[deque] = (
            deque(maxlen=ring) if sink is None else None
        )

    # -- record plumbing ---------------------------------------------------------

    def _emit(self, rec: Dict[str, object]) -> None:
        if self.records is not None:
            self.records.append(rec)
        else:
            self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")

    # -- engine hooks ------------------------------------------------------------

    def on_attach(self, engine: Engine) -> None:
        if self.records is None:
            if hasattr(self._sink_spec, "write"):
                self._fh = self._sink_spec
            else:
                self._fh = open(self._sink_spec, "w")
                self._owns_fh = True
        header: Dict[str, object] = {
            "ev": "header",
            "schema": TRACE_SCHEMA,
            "policy": getattr(engine.scheduler, "name", "?"),
            "cluster": engine.cluster.size,
            "n_jobs": len(engine._jobs),
            "kill_policy": engine.kill_policy.value,
        }
        header.update(self.meta)
        self._emit(header)

    def on_arrival(self, job: Job, now: float) -> None:
        self._emit({"t": now, "ev": "arrival", "job": job.id,
                    "nodes": job.nodes, "wcl": job.wcl, "user": job.user_id})

    def on_start(self, job: Job, now: float) -> None:
        self._emit({"t": now, "ev": "start", "job": job.id,
                    "nodes": job.nodes, "wait": now - job.submit_time})

    def on_completion(self, job: Job, now: float) -> None:
        self._emit({"t": now, "ev": "complete", "job": job.id,
                    "nodes": job.nodes})

    def on_kill(self, job: Job, now: float) -> None:
        self._emit({"t": now, "ev": "kill", "job": job.id})

    def on_chunk_chain(self, job: Job, successor: Job, now: float) -> None:
        self._emit({"t": now, "ev": "chunk", "job": successor.id,
                    "parent": successor.parent_id,
                    "index": successor.chunk_index})

    def on_schedule_pass(self, now: float, reason: str, queue_depth: int,
                         running: int, free_nodes: int, started: int) -> None:
        self._emit({"t": now, "ev": "pass", "reason": reason,
                    "queue": queue_depth, "running": running,
                    "free": free_nodes, "started": started})

    def on_end(self, now: float) -> None:
        pass  # the end record needs the event count, written in collect()

    def collect(self, result: SimulationResult) -> None:
        self._emit({"t": result.end_time, "ev": "end",
                    "events": result.events_processed,
                    "jobs": len(result.jobs)})
        if self._owns_fh and self._fh is not None:
            self._fh.close()
            self._fh = None
            self._owns_fh = False


# -- reading and summarizing ---------------------------------------------------


def read_trace(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Yield records from a JSONL trace file, validating the schema.

    Raises ``ValueError`` on a malformed line, a missing header, or a
    schema this reader does not understand.
    """
    with open(path) as fh:
        first = True
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if first:
                if rec.get("ev") != "header":
                    raise ValueError(f"{path}: first record is not a header")
                if rec.get("schema") != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}: trace schema {rec.get('schema')!r} "
                        f"unsupported (this reader understands {TRACE_SCHEMA})"
                    )
                first = False
            yield rec
        if first:
            raise ValueError(f"{path}: empty trace")


def summarize_records(records: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Per-run decision summary computed from a record stream.

    Works on a file iterator or a ring buffer; single pass, O(passes)
    memory (queue depths are kept for percentile computation).
    """
    header: Dict[str, object] = {}
    counts: Dict[str, int] = {}
    by_reason: Dict[str, int] = {}
    depths: List[int] = []
    waits: List[float] = []
    started_total = 0
    productive = 0
    t_min: Optional[float] = None
    t_max = 0.0
    end: Dict[str, object] = {}
    for rec in records:
        ev = rec.get("ev")
        counts[ev] = counts.get(ev, 0) + 1
        if ev == "header":
            header = rec
            continue
        t = float(rec.get("t", 0.0))
        t_min = t if t_min is None else min(t_min, t)
        t_max = max(t_max, t)
        if ev == "pass":
            by_reason[rec["reason"]] = by_reason.get(rec["reason"], 0) + 1
            depths.append(int(rec["queue"]))
            started = int(rec["started"])
            started_total += started
            if started:
                productive += 1
        elif ev == "start":
            waits.append(float(rec["wait"]))
        elif ev == "end":
            end = rec
    n_pass = counts.get("pass", 0)
    n_sched_events = counts.get("arrival", 0) + counts.get("complete", 0)
    return {
        "schema": header.get("schema"),
        "policy": header.get("policy"),
        "cluster": header.get("cluster"),
        "n_jobs": header.get("n_jobs"),
        "events": {k: counts.get(k, 0)
                   for k in ("arrival", "start", "complete", "kill",
                             "chunk", "pass")},
        "engine_events": end.get("events"),
        "passes": {
            "total": n_pass,
            "by_reason": dict(sorted(by_reason.items())),
            "per_schedule_event": (
                round(n_pass / n_sched_events, 4) if n_sched_events else 0.0
            ),
            "productive_fraction": (
                round(productive / n_pass, 4) if n_pass else 0.0
            ),
            "starts_per_pass": (
                round(started_total / n_pass, 4) if n_pass else 0.0
            ),
        },
        "queue_depth": {
            "p50": percentile(depths, 50.0),
            "p95": percentile(depths, 95.0),
            "max": max(depths) if depths else 0,
        },
        "wait": {
            "p50": round(percentile(waits, 50.0), 1),
            "p95": round(percentile(waits, 95.0), 1),
            "max": round(max(waits), 1) if waits else 0.0,
        },
        "horizon": [t_min or 0.0, t_max],
    }


def render_summary(summary: Dict[str, object]) -> str:
    """The ``repro trace summarize`` text block."""
    ev = summary["events"]
    p = summary["passes"]
    qd = summary["queue_depth"]
    w = summary["wait"]
    lines = [
        f"trace: policy {summary.get('policy')}, "
        f"{summary.get('n_jobs')} jobs on {summary.get('cluster')} nodes "
        f"(schema v{summary.get('schema')})",
        f"  events     : {ev['arrival']} arrivals, {ev['start']} starts, "
        f"{ev['complete']} completions, {ev['kill']} kills, "
        f"{ev['chunk']} chunk resubmits",
        f"  passes     : {p['total']} total "
        f"({', '.join(f'{k}={v}' for k, v in p['by_reason'].items()) or '-'})",
        f"  per event  : {p['per_schedule_event']:.2f} passes/scheduling event, "
        f"{p['starts_per_pass']:.2f} starts/pass, "
        f"{100 * p['productive_fraction']:.1f}% productive",
        f"  queue depth: p50 {qd['p50']:.0f}, p95 {qd['p95']:.0f}, "
        f"max {qd['max']}",
        f"  wait time  : p50 {w['p50']:,.0f}s, p95 {w['p95']:,.0f}s, "
        f"max {w['max']:,.0f}s",
        f"  horizon    : {summary['horizon'][0]:,.0f}s .. "
        f"{summary['horizon'][1]:,.0f}s",
    ]
    return "\n".join(lines)
