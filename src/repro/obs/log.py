"""Standard :mod:`logging` wiring for the whole package.

Every module logs through a child of the ``repro`` logger::

    from ..obs.log import get_logger
    log = get_logger(__name__)

and the CLI maps its top-level ``-v/--verbose`` and ``-q/--quiet`` flags
onto :func:`setup_logging`.  Library use stays silent by default (a
``NullHandler`` on the root ``repro`` logger), matching the stdlib
convention — embedding applications configure handlers themselves.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: root logger name for the package
ROOT_LOGGER = "repro"

#: verbosity steps for :func:`setup_logging` (0 is the CLI default)
_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}

# library default: never emit "No handlers could be found" noise
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the package root.

    Dotted module names (``repro.campaign.cache``) pass through; anything
    else is nested under ``repro.``.
    """
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def setup_logging(verbosity: int = 0, stream: Optional[TextIO] = None) -> logging.Logger:
    """Configure the package logger for CLI use.

    ``verbosity`` is (count of ``-v``) minus (count of ``-q``), clamped to
    [-1, 2]: -1 errors only, 0 warnings (default), 1 info, 2 debug.
    Re-running replaces the previous CLI handler instead of stacking, so
    tests can call it repeatedly.
    """
    verbosity = max(-1, min(2, verbosity))
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(_LEVELS[verbosity])
    for h in list(root.handlers):
        if getattr(h, "_repro_cli", False):
            root.removeHandler(h)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_cli = True  # type: ignore[attr-defined]
    handler.setFormatter(logging.Formatter("[%(name)s] %(levelname)s: %(message)s"))
    root.addHandler(handler)
    return root
