"""Published CPlant/Ross workload characterization (Tables 1 and 2).

These are the paper's numbers for the December 1, 2002 – July 14, 2003
trace (231 days).  They are both the ground truth the synthetic generator
is calibrated against and the reference the Table 1/2 reproduction
benchmarks compare to.

The paper never states the machine size; DESIGN.md substitution #2 derives
1024 nodes from the Table 2 totals (≈3.97 M proc-hours ⇒ ≈70 % average
utilization with >90 % peaks, matching Figure 3).
"""

from __future__ import annotations

import numpy as np

from .categories import N_LENGTH, N_WIDTH

#: nodes in the simulated CPlant/Ross machine (see DESIGN.md)
SYSTEM_SIZE = 1024

#: trace span (the paper: "13614 jobs over the 7.5 months (231 days)")
TRACE_DAYS = 231
TRACE_SECONDS = TRACE_DAYS * 86_400.0
TRACE_WEEKS = 33

#: job count the paper quotes for the full trace
REPORTED_TOTAL_JOBS = 13_614

# Table 1: number of jobs in each width x length category.
# Rows: width categories (1, 2, 3-4, ..., 513+); columns: length categories
# (0-15 min, 15-60 min, 1-4 h, 4-8 h, 8-16 h, 16-24 h, 1-2 d, 2+ d).
TABLE1_COUNTS = np.array(
    [
        [681, 141, 44, 7, 7, 3, 6, 16],
        [458, 80, 8, 0, 2, 0, 1, 0],
        [672, 440, 273, 55, 26, 3, 5, 5],
        [832, 238, 700, 155, 142, 90, 76, 91],
        [1032, 131, 347, 206, 260, 141, 205, 160],
        [917, 608, 113, 72, 67, 53, 116, 160],
        [879, 130, 134, 70, 79, 48, 130, 178],
        [494, 72, 78, 31, 49, 24, 53, 76],
        [447, 127, 9, 5, 12, 1, 3, 10],
        [147, 24, 6, 3, 1, 0, 0, 1],
        [51, 18, 1, 0, 0, 0, 0, 0],
    ],
    dtype=np.int64,
)

# Table 2: processor-hours in each width x length category.
TABLE2_PROC_HOURS = np.array(
    [
        [14, 61, 76, 42, 70, 62, 259, 2883],
        [32, 70, 21, 0, 53, 0, 68, 0],
        [103, 1197, 2210, 1272, 1030, 213, 614, 1310],
        [281, 1101, 10263, 6582, 12107, 14118, 18287, 92549],
        [522, 1102, 12522, 18175, 45859, 42072, 105884, 207496],
        [968, 6870, 6630, 11008, 22031, 28232, 109166, 363944],
        [1775, 2895, 15252, 20429, 48457, 48493, 251748, 986649],
        [1876, 4149, 19125, 17333, 53098, 48296, 179321, 796517],
        [3273, 12395, 4219, 4322, 27041, 5451, 19030, 183949],
        [3719, 4723, 5027, 6850, 3888, 0, 0, 30761],
        [2692, 9503, 0, 3183, 0, 0, 0, 0],
    ],
    dtype=np.float64,
)

assert TABLE1_COUNTS.shape == (N_WIDTH, N_LENGTH)
assert TABLE2_PROC_HOURS.shape == (N_WIDTH, N_LENGTH)

#: jobs actually accounted for in Table 1 (slightly below the quoted 13,614;
#: the paper's tables evidently exclude a few hundred degenerate entries)
TABLE_TOTAL_JOBS = int(TABLE1_COUNTS.sum())

#: total work in the trace per Table 2
TOTAL_PROC_HOURS = float(TABLE2_PROC_HOURS.sum())

#: implied average utilization at SYSTEM_SIZE nodes
AVERAGE_UTILIZATION = TOTAL_PROC_HOURS / (TRACE_DAYS * 24.0 * SYSTEM_SIZE)


def mean_runtime_hours(width_cat: int, length_cat: int, mean_width: float) -> float:
    """Mean runtime (hours) Table 2 implies for one cell, given the mean
    width of jobs generated in that cell."""
    count = TABLE1_COUNTS[width_cat, length_cat]
    if count == 0:
        return 0.0
    return TABLE2_PROC_HOURS[width_cat, length_cat] / (count * mean_width)
