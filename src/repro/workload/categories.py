"""Width x length job categories used throughout the paper.

Tables 1-2 and Figures 10/12/16/18 bucket jobs into 11 width (node-count)
categories and 8 length (runtime) categories.  This module owns the bucket
boundaries, labels, and classification helpers; the actual CPlant numbers
live in :mod:`repro.workload.cplant`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

MINUTE = 60.0
HOUR = 3600.0
DAY = 86_400.0

#: inclusive (lo, hi) node-count bounds per width category; hi=None is open.
WIDTH_BOUNDS: Tuple[Tuple[int, int | None], ...] = (
    (1, 1),
    (2, 2),
    (3, 4),
    (5, 8),
    (9, 16),
    (17, 32),
    (33, 64),
    (65, 128),
    (129, 256),
    (257, 512),
    (513, None),
)

WIDTH_LABELS: Tuple[str, ...] = (
    "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64",
    "65-128", "129-256", "257-512", "513+",
)

#: [lo, hi) runtime bounds in seconds per length category; hi=None is open.
LENGTH_BOUNDS: Tuple[Tuple[float, float | None], ...] = (
    (0.0, 15 * MINUTE),
    (15 * MINUTE, 60 * MINUTE),
    (1 * HOUR, 4 * HOUR),
    (4 * HOUR, 8 * HOUR),
    (8 * HOUR, 16 * HOUR),
    (16 * HOUR, 24 * HOUR),
    (1 * DAY, 2 * DAY),
    (2 * DAY, None),
)

LENGTH_LABELS: Tuple[str, ...] = (
    "0-15 mins", "15-60 mins", "1-4 hrs", "4-8 hrs",
    "8-16 hrs", "16-24 hrs", "1-2 days", "2+ days",
)

N_WIDTH = len(WIDTH_BOUNDS)
N_LENGTH = len(LENGTH_BOUNDS)

# precomputed edges for vectorized classification
_WIDTH_EDGES = np.array([lo for lo, _ in WIDTH_BOUNDS], dtype=np.int64)
_LENGTH_EDGES = np.array([lo for lo, _ in LENGTH_BOUNDS], dtype=np.float64)


def width_category(nodes: int) -> int:
    """Index into WIDTH_BOUNDS for a node count."""
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    return int(np.searchsorted(_WIDTH_EDGES, nodes, side="right")) - 1


def length_category(runtime: float) -> int:
    """Index into LENGTH_BOUNDS for a runtime in seconds."""
    if runtime < 0:
        raise ValueError(f"runtime must be >= 0, got {runtime}")
    return max(int(np.searchsorted(_LENGTH_EDGES, runtime, side="right")) - 1, 0)


def width_categories(nodes: Sequence[int]) -> np.ndarray:
    """Vectorized :func:`width_category`."""
    arr = np.asarray(nodes)
    if (arr < 1).any():
        raise ValueError("all node counts must be >= 1")
    return np.searchsorted(_WIDTH_EDGES, arr, side="right") - 1


def length_categories(runtimes: Sequence[float]) -> np.ndarray:
    """Vectorized :func:`length_category`."""
    arr = np.asarray(runtimes, dtype=np.float64)
    if (arr < 0).any():
        raise ValueError("all runtimes must be >= 0")
    return np.maximum(np.searchsorted(_LENGTH_EDGES, arr, side="right") - 1, 0)


def category_matrix(
    nodes: Sequence[int],
    runtimes: Sequence[float],
    weights: Sequence[float] | None = None,
) -> np.ndarray:
    """(N_WIDTH x N_LENGTH) histogram of jobs.

    Unweighted gives Table 1 (job counts); weighted by proc-hours gives
    Table 2.
    """
    w = width_categories(nodes)
    ln_cat = length_categories(runtimes)
    out = np.zeros((N_WIDTH, N_LENGTH), dtype=np.float64)
    if weights is None:
        np.add.at(out, (w, ln_cat), 1.0)
    else:
        np.add.at(out, (w, ln_cat), np.asarray(weights, dtype=np.float64))
    return out


def width_bounds_contain(cat: int, nodes: int) -> bool:
    lo, hi = WIDTH_BOUNDS[cat]
    return nodes >= lo and (hi is None or nodes <= hi)


def length_bounds_contain(cat: int, runtime: float) -> bool:
    lo, hi = LENGTH_BOUNDS[cat]
    return runtime >= lo and (hi is None or runtime < hi)


def format_category_table(matrix: np.ndarray, title: str, fmt: str = "{:.0f}") -> str:
    """Render a category matrix in the paper's Tables 1/2 layout."""
    if matrix.shape != (N_WIDTH, N_LENGTH):
        raise ValueError(f"expected {(N_WIDTH, N_LENGTH)} matrix, got {matrix.shape}")
    col_w = 11
    lines = [title]
    header = " " * 14 + "".join(lab.rjust(col_w) for lab in LENGTH_LABELS)
    lines.append(header)
    for i, wlab in enumerate(WIDTH_LABELS):
        row = f"{wlab + ' nodes':<14}" + "".join(
            fmt.format(v).rjust(col_w) for v in matrix[i]
        )
        lines.append(row)
    return "\n".join(lines)


def width_label_of(nodes: int) -> str:
    return WIDTH_LABELS[width_category(nodes)]


def length_label_of(runtime: float) -> str:
    return LENGTH_LABELS[length_category(runtime)]
