"""Workload container and summary statistics."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

import numpy as np

from ..core.job import Job
from . import categories


@dataclass
class Workload:
    """An ordered job list plus the machine it targets.

    Jobs are kept sorted by submit time; ids are unique.  A workload is
    immutable in spirit — transforms return new instances.
    """

    jobs: List[Job]
    system_size: int
    name: str = "workload"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.system_size <= 0:
            raise ValueError("system_size must be positive")
        ids = [j.id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in workload")
        too_wide = [j.id for j in self.jobs if j.nodes > self.system_size]
        if too_wide:
            raise ValueError(
                f"jobs wider than system ({self.system_size}): {too_wide[:5]}"
            )
        self.jobs = sorted(self.jobs, key=lambda j: (j.submit_time, j.id))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    # -- bulk views (NumPy) ------------------------------------------------------

    def submit_times(self) -> np.ndarray:
        return np.array([j.submit_time for j in self.jobs])

    def nodes(self) -> np.ndarray:
        return np.array([j.nodes for j in self.jobs], dtype=np.int64)

    def runtimes(self) -> np.ndarray:
        return np.array([j.runtime for j in self.jobs])

    def wcls(self) -> np.ndarray:
        return np.array([j.wcl for j in self.jobs])

    def users(self) -> np.ndarray:
        return np.array([j.user_id for j in self.jobs], dtype=np.int64)

    # -- aggregates ------------------------------------------------------------------

    @property
    def total_work(self) -> float:
        """Processor-seconds of actual work."""
        return float(sum(j.area for j in self.jobs))

    @property
    def span(self) -> float:
        """Last submit - first submit, seconds."""
        if not self.jobs:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    @property
    def n_users(self) -> int:
        return len({j.user_id for j in self.jobs})

    def offered_load(self, horizon: float | None = None) -> float:
        """Total work / (horizon x system size); horizon defaults to span."""
        horizon = horizon if horizon is not None else self.span
        if horizon <= 0:
            return 0.0
        return self.total_work / (horizon * self.system_size)

    # -- category tables (Tables 1-2 machinery) ------------------------------------------

    def count_table(self) -> np.ndarray:
        """Table 1 for this workload: job counts per width x length cell."""
        return categories.category_matrix(self.nodes(), self.runtimes())

    def proc_hours_table(self) -> np.ndarray:
        """Table 2 for this workload: proc-hours per width x length cell."""
        areas_h = self.nodes() * self.runtimes() / 3600.0
        return categories.category_matrix(self.nodes(), self.runtimes(), areas_h)

    # -- misc -----------------------------------------------------------------------------

    def content_digest(self) -> str:
        """SHA-256 of the job list and machine size.

        Floats are hashed by their exact bit pattern (``float.hex``), so
        two workloads digest equal iff a simulation cannot tell them apart
        — the scenario determinism contract (same recipe + seed must yield
        the same digest in any process, mirroring campaign cache keys).
        Names and metadata are deliberately excluded.
        """
        h = hashlib.sha256()
        h.update(f"system={self.system_size};n={len(self.jobs)}".encode())
        for j in self.jobs:
            h.update(
                (
                    f"|{j.id},{j.submit_time.hex()},{j.nodes},"
                    f"{j.runtime.hex()},{j.wcl.hex()},{j.user_id},{j.group_id},"
                    f"{j.parent_id},{j.chunk_index},{j.chunk_count},"
                    f"{'' if j.seniority_time is None else j.seniority_time.hex()}"
                ).encode()
            )
        return h.hexdigest()

    def subset(self, n: int, name: str | None = None) -> "Workload":
        """First ``n`` jobs by submit order (cheap scale-down for tests)."""
        return Workload(
            jobs=[j.fresh_copy() for j in self.jobs[:n]],
            system_size=self.system_size,
            name=name or f"{self.name}[:{n}]",
            metadata=dict(self.metadata),
        )

    def describe(self) -> str:
        if not self.jobs:
            return f"{self.name}: empty"
        rt = self.runtimes()
        nd = self.nodes()
        return (
            f"{self.name}: {len(self.jobs)} jobs, {self.n_users} users, "
            f"{self.span / 86400:.1f} days, system={self.system_size} nodes, "
            f"work={self.total_work / 3600:.0f} proc-h, "
            f"offered load={self.offered_load():.2f}, "
            f"median rt={np.median(rt):.0f}s, median width={int(np.median(nd))}"
        )
