"""Workload analysis beyond the category tables.

Section 2.2 characterizes the trace along several axes (arrival pattern,
user population, estimate quality); this module computes those summaries
for any workload — generated or parsed from SWF — so a real trace dropped
into the pipeline can be compared against the paper's description before
simulating on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .model import Workload

DAY = 86_400.0
HOUR = 3600.0


@dataclass(frozen=True)
class EstimateQuality:
    """How users estimate (Figures 5-7 in summary form)."""

    exact_fraction: float          # WCL == runtime (within 1%)
    over_fraction: float           # WCL > runtime
    under_fraction: float          # WCL < runtime (killed/aborted/overran)
    median_factor: float           # median WCL/runtime over positive runtimes
    p90_factor: float
    median_factor_short: float     # jobs under 15 min
    median_factor_long: float      # jobs over 1 day


def estimate_quality(workload: Workload) -> EstimateQuality:
    rt = workload.runtimes()
    wcl = workload.wcls()
    pos = rt > 0
    f = wcl[pos] / rt[pos]
    near = np.abs(wcl - rt) <= 0.01 * np.maximum(rt, 1.0)
    short = pos & (rt < 15 * 60)
    long_ = pos & (rt > DAY)

    def med(mask):
        sel = wcl[mask] / rt[mask]
        return float(np.median(sel)) if mask.any() else float("nan")

    return EstimateQuality(
        exact_fraction=float(near.mean()),
        over_fraction=float(((wcl > rt) & ~near).mean()),
        under_fraction=float(((wcl < rt) & ~near).mean()),
        median_factor=float(np.median(f)) if pos.any() else float("nan"),
        p90_factor=float(np.percentile(f, 90)) if pos.any() else float("nan"),
        median_factor_short=med(short),
        median_factor_long=med(long_),
    )


@dataclass(frozen=True)
class ArrivalPattern:
    """Submission rhythm: day-of-week and hour-of-day concentrations."""

    jobs_per_day: float
    weekday_fraction: float        # Mon-Fri share of submissions
    work_hours_fraction: float     # 08:00-18:00 share
    busiest_hour: int
    peak_day_jobs: int


def arrival_pattern(workload: Workload) -> ArrivalPattern:
    t = workload.submit_times()
    if len(t) == 0:
        return ArrivalPattern(0.0, 0.0, 0.0, 0, 0)
    day_idx = (t // DAY).astype(np.int64)
    dow = day_idx % 7  # day 0 of the trace taken as Monday
    hour = ((t % DAY) // HOUR).astype(np.int64)
    span_days = max((t.max() - t.min()) / DAY, 1e-9)
    _, per_day = np.unique(day_idx, return_counts=True)
    hour_counts = np.bincount(hour, minlength=24)
    return ArrivalPattern(
        jobs_per_day=len(t) / span_days,
        weekday_fraction=float((dow < 5).mean()),
        work_hours_fraction=float(((hour >= 8) & (hour < 18)).mean()),
        busiest_hour=int(hour_counts.argmax()),
        peak_day_jobs=int(per_day.max()),
    )


@dataclass(frozen=True)
class UserActivity:
    """User-population shape driving the fairshare dynamics."""

    n_users: int
    top_user_job_share: float      # share of jobs by the most active user
    top_user_work_share: float     # share of proc-seconds
    top5_work_share: float
    gini_work: float               # inequality of per-user work


def _gini(values: np.ndarray) -> float:
    if len(values) == 0:
        return 0.0
    v = np.sort(values.astype(np.float64))
    total = v.sum()
    if total <= 0:
        return 0.0
    n = len(v)
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def user_activity(workload: Workload) -> UserActivity:
    users = workload.users()
    if len(users) == 0:
        return UserActivity(0, 0.0, 0.0, 0.0, 0.0)
    areas = workload.nodes() * workload.runtimes()
    uniq = np.unique(users)
    work = np.array([areas[users == u].sum() for u in uniq])
    counts = np.array([(users == u).sum() for u in uniq])
    total_work = max(work.sum(), 1e-12)
    top = np.sort(work)[::-1]
    return UserActivity(
        n_users=len(uniq),
        top_user_job_share=float(counts.max() / len(users)),
        top_user_work_share=float(top[0] / total_work),
        top5_work_share=float(top[:5].sum() / total_work),
        gini_work=_gini(work),
    )


def analyze(workload: Workload) -> Dict[str, object]:
    """All summaries in one dictionary (the CLI's ``analyze`` output)."""
    return {
        "describe": workload.describe(),
        "estimates": estimate_quality(workload),
        "arrivals": arrival_pattern(workload),
        "users": user_activity(workload),
    }


def render_analysis(workload: Workload) -> str:
    est = estimate_quality(workload)
    arr = arrival_pattern(workload)
    usr = user_activity(workload)
    lines = [
        workload.describe(),
        "",
        "estimate quality (Figures 5-7 summary):",
        f"  exact / over / under   : {100 * est.exact_fraction:.1f}% / "
        f"{100 * est.over_fraction:.1f}% / {100 * est.under_fraction:.1f}%",
        f"  median factor          : {est.median_factor:.2f} "
        f"(short jobs {est.median_factor_short:.1f}, long jobs "
        f"{est.median_factor_long:.2f})",
        f"  p90 factor             : {est.p90_factor:.1f}",
        "",
        "arrival pattern:",
        f"  jobs/day               : {arr.jobs_per_day:.1f} "
        f"(peak day {arr.peak_day_jobs})",
        f"  weekday share          : {100 * arr.weekday_fraction:.1f}%",
        f"  08-18h share           : {100 * arr.work_hours_fraction:.1f}% "
        f"(busiest hour {arr.busiest_hour:02d}:00)",
        "",
        "user population (fairshare relevance):",
        f"  users                  : {usr.n_users}",
        f"  top user               : {100 * usr.top_user_job_share:.1f}% of jobs, "
        f"{100 * usr.top_user_work_share:.1f}% of work",
        f"  top-5 work share       : {100 * usr.top5_work_share:.1f}%",
        f"  Gini (per-user work)   : {usr.gini_work:.2f}",
    ]
    return "\n".join(lines)
