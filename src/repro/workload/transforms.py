"""Workload transforms.

The load-bearing one is :func:`split_by_runtime_limit` — the paper's
Section 5.1 "maximum runtime limits" policy.  Jobs longer than the limit
are broken into chunks that the scheduler sees as ordinary jobs; chunk
*k+1* is submitted the instant chunk *k* completes (CPlant users had
checkpoint/restart scripts for exactly this).  Metrics count chunks as the
scheduler-visible jobs; :func:`parent_view` rebuilds the per-original-job
picture when wanted (DESIGN.md substitution #5).
"""

from __future__ import annotations

import math
from dataclasses import replace
from statistics import NormalDist
from typing import Dict, List

import numpy as np

from ..core.job import Job, JobState
from .model import Workload


def split_by_runtime_limit(
    workload: Workload,
    limit: float,
    min_chunk_wcl: float = 60.0,
) -> Workload:
    """Split every job longer than ``limit`` seconds into limit-sized chunks.

    * runtime is divided into ``ceil(runtime / limit)`` segments;
    * every chunk's wall-clock limit is capped at ``limit`` (users must now
      request at most the limit); the last chunk carries the remaining
      estimate, floored at ``min_chunk_wcl``;
    * unsplit jobs keep their ids; chunks get fresh ids above the original
      maximum and carry ``parent_id`` (the original job id), so collapsing
      chunks back with :func:`parent_view` restores the exact original id
      set.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")

    new_jobs: List[Job] = []
    next_id = max((j.id for j in workload.jobs), default=0) + 1

    for job in workload.jobs:
        k = max(1, math.ceil(job.runtime / limit))
        if k == 1:
            clone = replace(job.fresh_copy(), wcl=min(job.wcl, limit))
            new_jobs.append(clone)
            continue
        remaining_wcl = job.wcl
        for i in range(k):
            if i < k - 1:
                chunk_rt = limit
                chunk_wcl = min(remaining_wcl, limit)
            else:
                chunk_rt = job.runtime - (k - 1) * limit
                chunk_wcl = min(max(remaining_wcl, min_chunk_wcl), limit)
            chunk_wcl = max(chunk_wcl, min_chunk_wcl)
            new_jobs.append(
                Job(
                    id=next_id,
                    submit_time=job.submit_time,  # placeholder for i>0; the
                    # engine stamps the real submit when the predecessor ends
                    nodes=job.nodes,
                    runtime=chunk_rt,
                    wcl=chunk_wcl,
                    user_id=job.user_id,
                    group_id=job.group_id,
                    parent_id=job.id,
                    chunk_index=i,
                    chunk_count=k,
                    seniority_time=job.submit_time,
                )
            )
            next_id += 1
            remaining_wcl -= limit

    return Workload(
        jobs=new_jobs,
        system_size=workload.system_size,
        name=f"{workload.name}+max{limit / 3600:.0f}h",
        metadata={**workload.metadata, "max_runtime": limit},
    )


def parent_view(jobs: List[Job]) -> List[Job]:
    """Collapse completed chunk chains back into per-original-job records.

    The synthetic parent spans first-chunk submit to last-chunk completion;
    its runtime is the summed chunk runtimes.  Non-chunk jobs pass through
    unchanged.  All inputs must be completed.
    """
    chains: Dict[int, List[Job]] = {}
    out: List[Job] = []
    for j in jobs:
        if j.state is not JobState.COMPLETED:
            raise ValueError(f"job {j.id} not completed; parent_view needs results")
        if j.is_chunk:
            chains.setdefault(j.parent_id, []).append(j)
        else:
            out.append(j)
    for pid, chunks in chains.items():
        chunks.sort(key=lambda c: c.chunk_index)
        expected = chunks[0].chunk_count
        if len(chunks) != expected:
            raise ValueError(
                f"chain {pid}: {len(chunks)} chunks present, expected {expected}"
            )
        parent = Job(
            id=pid,
            submit_time=chunks[0].submit_time,
            nodes=chunks[0].nodes,
            runtime=sum(c.runtime for c in chunks),
            wcl=sum(c.wcl for c in chunks),
            user_id=chunks[0].user_id,
            group_id=chunks[0].group_id,
        )
        parent.state = JobState.COMPLETED
        parent.start_time = chunks[0].start_time
        parent.end_time = chunks[-1].end_time
        out.append(parent)
    out.sort(key=lambda j: (j.submit_time, j.id))
    return out


def remap_runtime_tail(
    workload: Workload,
    dist: str = "pareto",
    alpha: float = 1.1,
    sigma: float = 2.0,
    median: float | None = None,
    min_runtime: float = 10.0,
    max_runtime: float = 40 * 86_400.0,
    preserve_work: bool = True,
) -> Workload:
    """Remap runtimes onto a heavy-tailed distribution, rank-preserved.

    Each job keeps its *rank* in the runtime order but its value is mapped
    to the corresponding quantile of the target distribution — ``pareto``
    (shape ``alpha``; smaller = heavier tail) or ``lognormal`` (log-sd
    ``sigma``) — anchored at the median runtime (or an explicit
    ``median``).  The fairness of size-based policies hinges on exactly
    this tail weight (Dell'Amico et al., *On Fair Size-Based Scheduling*),
    which the calibrated CPlant trace cannot dial.

    With ``preserve_work`` (the default) the mapped runtimes are rescaled
    so total processor-seconds match the input: the offered load — and so
    the queueing regime — stays comparable while only the tail shape
    moves.  Wall-clock limits are scaled by each job's runtime ratio, so
    the overestimation-factor structure (Figures 5-7) survives the remap.
    The mapping is a deterministic function of the input workload — no
    RNG.
    """
    if not workload.jobs:
        return workload
    rt = workload.runtimes()
    n = len(rt)
    order = np.argsort(rt, kind="stable")
    u = (np.arange(n) + 0.5) / n  # plotting-position quantile per rank
    med = float(median) if median is not None else float(np.median(rt))
    med = max(med, min_runtime)
    if dist == "pareto":
        if alpha <= 0:
            raise ValueError(f"pareto alpha must be positive, got {alpha}")
        xm = med / 2.0 ** (1.0 / alpha)
        q = xm * (1.0 - u) ** (-1.0 / alpha)
    elif dist == "lognormal":
        if sigma <= 0:
            raise ValueError(f"lognormal sigma must be positive, got {sigma}")
        nd = NormalDist()
        q = med * np.exp(sigma * np.array([nd.inv_cdf(x) for x in u]))
    else:
        raise ValueError(f"unknown tail dist {dist!r}; known: 'pareto', 'lognormal'")
    q = np.clip(q, min_runtime, max_runtime)
    new_rt = np.empty(n)
    new_rt[order] = q
    if preserve_work:
        nodes = workload.nodes()
        target = float((nodes * rt).sum())
        for _ in range(4):
            cur = float((nodes * new_rt).sum())
            if cur <= 0:
                break
            ratio = target / cur
            if abs(ratio - 1.0) < 0.01:
                break
            new_rt = np.clip(new_rt * ratio, min_runtime, max_runtime)
    jobs: List[Job] = []
    for j, nr in zip(workload.jobs, new_rt):
        f = nr / max(j.runtime, 1e-9)
        jobs.append(
            replace(j.fresh_copy(), runtime=float(nr), wcl=float(max(j.wcl * f, 60.0)))
        )
    tag = f"{dist}(a={alpha})" if dist == "pareto" else f"{dist}(s={sigma})"
    return Workload(
        jobs,
        workload.system_size,
        name=f"{workload.name}|tail:{tag}",
        metadata={**workload.metadata,
                  "runtime_tail": {"dist": dist, "alpha": alpha, "sigma": sigma}},
    )


def flash_crowds(
    workload: Workload,
    fraction: float = 0.25,
    n_crowds: int = 4,
    width_hours: float = 2.0,
    seed: int = 0,
) -> Workload:
    """Concentrate a fraction of arrivals into a few short bursts.

    A seeded RNG picks ``fraction`` of the jobs and resubmits each inside
    one of ``n_crowds`` windows of ``width_hours`` placed across the trace
    span — the flash-crowd overloads of the paper's Section 2.2 narrative
    ("extremely high queue lengths and wait times"), made dialable instead
    of emergent from the weekly profile.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if n_crowds < 1:
        raise ValueError(f"need at least one crowd, got {n_crowds}")
    sub = workload.submit_times()
    n = len(sub)
    k = int(round(fraction * n))
    if k == 0 or n == 0:
        return workload
    rng = np.random.default_rng(seed)
    t0, t1 = float(sub[0]), float(sub[-1])
    moved = rng.choice(n, size=k, replace=False)
    centers = t0 + (t1 - t0) * rng.uniform(0.05, 0.95, size=n_crowds)
    which = rng.integers(0, n_crowds, size=k)
    w = width_hours * 3600.0
    new_sub = sub.copy()
    new_sub[moved] = np.maximum(
        centers[which] + rng.uniform(-w / 2.0, w / 2.0, size=k), 0.0
    )
    jobs = [
        replace(j.fresh_copy(), submit_time=float(s), seniority_time=None)
        for j, s in zip(workload.jobs, new_sub)
    ]
    return Workload(
        jobs,
        workload.system_size,
        name=f"{workload.name}|crowds({n_crowds}x{width_hours}h)",
        metadata={**workload.metadata,
                  "flash_crowds": {"fraction": fraction, "n_crowds": n_crowds,
                                   "width_hours": width_hours, "seed": seed}},
    )


def filter_width(workload: Workload, min_nodes: int = 1, max_nodes: int | None = None) -> Workload:
    """Keep only jobs whose width is within [min_nodes, max_nodes]."""
    hi = max_nodes if max_nodes is not None else workload.system_size
    kept = [j.fresh_copy() for j in workload.jobs if min_nodes <= j.nodes <= hi]
    return Workload(
        kept, workload.system_size,
        name=f"{workload.name}|width[{min_nodes},{hi}]",
        metadata=dict(workload.metadata),
    )


def shift_to_zero(workload: Workload) -> Workload:
    """Shift submit times so the first job arrives at t=0."""
    if not workload.jobs:
        return workload
    t0 = workload.jobs[0].submit_time
    shifted = [
        replace(j.fresh_copy(), submit_time=j.submit_time - t0) for j in workload.jobs
    ]
    return Workload(
        shifted, workload.system_size, name=workload.name,
        metadata=dict(workload.metadata),
    )
