"""Workload transforms.

The load-bearing one is :func:`split_by_runtime_limit` — the paper's
Section 5.1 "maximum runtime limits" policy.  Jobs longer than the limit
are broken into chunks that the scheduler sees as ordinary jobs; chunk
*k+1* is submitted the instant chunk *k* completes (CPlant users had
checkpoint/restart scripts for exactly this).  Metrics count chunks as the
scheduler-visible jobs; :func:`parent_view` rebuilds the per-original-job
picture when wanted (DESIGN.md substitution #5).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List

from ..core.job import Job, JobState
from .model import Workload


def split_by_runtime_limit(
    workload: Workload,
    limit: float,
    min_chunk_wcl: float = 60.0,
) -> Workload:
    """Split every job longer than ``limit`` seconds into limit-sized chunks.

    * runtime is divided into ``ceil(runtime / limit)`` segments;
    * every chunk's wall-clock limit is capped at ``limit`` (users must now
      request at most the limit); the last chunk carries the remaining
      estimate, floored at ``min_chunk_wcl``;
    * unsplit jobs keep their ids; chunks get fresh ids above the original
      maximum and carry ``parent_id`` (the original job id), so collapsing
      chunks back with :func:`parent_view` restores the exact original id
      set.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")

    new_jobs: List[Job] = []
    next_id = max((j.id for j in workload.jobs), default=0) + 1

    for job in workload.jobs:
        k = max(1, math.ceil(job.runtime / limit))
        if k == 1:
            clone = replace(job.fresh_copy(), wcl=min(job.wcl, limit))
            new_jobs.append(clone)
            continue
        remaining_wcl = job.wcl
        for i in range(k):
            if i < k - 1:
                chunk_rt = limit
                chunk_wcl = min(remaining_wcl, limit)
            else:
                chunk_rt = job.runtime - (k - 1) * limit
                chunk_wcl = min(max(remaining_wcl, min_chunk_wcl), limit)
            chunk_wcl = max(chunk_wcl, min_chunk_wcl)
            new_jobs.append(
                Job(
                    id=next_id,
                    submit_time=job.submit_time,  # placeholder for i>0; the
                    # engine stamps the real submit when the predecessor ends
                    nodes=job.nodes,
                    runtime=chunk_rt,
                    wcl=chunk_wcl,
                    user_id=job.user_id,
                    group_id=job.group_id,
                    parent_id=job.id,
                    chunk_index=i,
                    chunk_count=k,
                    seniority_time=job.submit_time,
                )
            )
            next_id += 1
            remaining_wcl -= limit

    return Workload(
        jobs=new_jobs,
        system_size=workload.system_size,
        name=f"{workload.name}+max{limit / 3600:.0f}h",
        metadata={**workload.metadata, "max_runtime": limit},
    )


def parent_view(jobs: List[Job]) -> List[Job]:
    """Collapse completed chunk chains back into per-original-job records.

    The synthetic parent spans first-chunk submit to last-chunk completion;
    its runtime is the summed chunk runtimes.  Non-chunk jobs pass through
    unchanged.  All inputs must be completed.
    """
    chains: Dict[int, List[Job]] = {}
    out: List[Job] = []
    for j in jobs:
        if j.state is not JobState.COMPLETED:
            raise ValueError(f"job {j.id} not completed; parent_view needs results")
        if j.is_chunk:
            chains.setdefault(j.parent_id, []).append(j)
        else:
            out.append(j)
    for pid, chunks in chains.items():
        chunks.sort(key=lambda c: c.chunk_index)
        expected = chunks[0].chunk_count
        if len(chunks) != expected:
            raise ValueError(
                f"chain {pid}: {len(chunks)} chunks present, expected {expected}"
            )
        parent = Job(
            id=pid,
            submit_time=chunks[0].submit_time,
            nodes=chunks[0].nodes,
            runtime=sum(c.runtime for c in chunks),
            wcl=sum(c.wcl for c in chunks),
            user_id=chunks[0].user_id,
            group_id=chunks[0].group_id,
        )
        parent.state = JobState.COMPLETED
        parent.start_time = chunks[0].start_time
        parent.end_time = chunks[-1].end_time
        out.append(parent)
    out.sort(key=lambda j: (j.submit_time, j.id))
    return out


def filter_width(workload: Workload, min_nodes: int = 1, max_nodes: int | None = None) -> Workload:
    """Keep only jobs whose width is within [min_nodes, max_nodes]."""
    hi = max_nodes if max_nodes is not None else workload.system_size
    kept = [j.fresh_copy() for j in workload.jobs if min_nodes <= j.nodes <= hi]
    return Workload(
        kept, workload.system_size,
        name=f"{workload.name}|width[{min_nodes},{hi}]",
        metadata=dict(workload.metadata),
    )


def shift_to_zero(workload: Workload) -> Workload:
    """Shift submit times so the first job arrives at t=0."""
    if not workload.jobs:
        return workload
    t0 = workload.jobs[0].submit_time
    shifted = [
        replace(j.fresh_copy(), submit_time=j.submit_time - t0) for j in workload.jobs
    ]
    return Workload(
        shifted, workload.system_size, name=workload.name,
        metadata=dict(workload.metadata),
    )
