"""Standard Workload Format (SWF) version 2 reader/writer.

The paper converted the raw CPlant PBS/yod logs to SWF V2; this module lets
real traces from the Parallel Workloads Archive be dropped into the
pipeline, and lets generated workloads be exported for other simulators.

SWF records are whitespace-separated lines of 18 integer fields
(missing = -1):

  1 job number            7 used memory         13 group id
  2 submit time           8 requested procs     14 executable id
  3 wait time             9 requested time      15 queue id
  4 run time             10 requested memory    16 partition id
  5 used procs           11 status              17 preceding job
  6 avg cpu time         12 user id             18 think time

Header comments start with ';'.  We honor ``; UnixStartTime`` and
``; MaxNodes`` if present.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import List, TextIO, Tuple, Union

from ..core.job import Job
from .model import Workload

N_FIELDS = 18


@dataclass
class SwfHeader:
    version: int = 2
    computer: str = "synthetic CPlant/Ross"
    max_nodes: int | None = None
    unix_start_time: int = 0
    note: str = ""


class SwfFormatError(ValueError):
    """Malformed SWF input."""


def _parse_fields(line: str, lineno: int) -> List[float]:
    parts = line.split()
    if len(parts) != N_FIELDS:
        raise SwfFormatError(
            f"line {lineno}: expected {N_FIELDS} fields, got {len(parts)}"
        )
    try:
        return [float(p) for p in parts]
    except ValueError as exc:
        raise SwfFormatError(f"line {lineno}: non-numeric field ({exc})") from None


def read_swf(
    source: Union[str, Path, TextIO],
    system_size: int | None = None,
    name: str | None = None,
    skip_invalid: bool = True,
) -> Workload:
    """Parse an SWF file into a :class:`Workload`.

    Jobs with non-positive width or negative runtime are skipped when
    ``skip_invalid`` (the archive convention: status/cleanup records), else
    raised on.  ``system_size`` overrides the ``; MaxNodes`` header.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        text = path.read_text()
        stream: TextIO = io.StringIO(text)
        default_name = path.stem
    else:
        stream = source
        default_name = "swf"

    header = SwfHeader()
    jobs: List[Job] = []
    skipped = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            _parse_header_line(line, header)
            continue
        f = _parse_fields(line, lineno)
        job, ok = _fields_to_job(f)
        if ok:
            jobs.append(job)
        elif skip_invalid:
            skipped += 1
        else:
            raise SwfFormatError(f"line {lineno}: invalid job record {f[:9]}")

    size = system_size or header.max_nodes
    if size is None:
        size = max((j.nodes for j in jobs), default=1)
    wl = Workload(
        jobs=jobs,
        system_size=size,
        name=name or default_name,
        metadata={"swf_header": header, "skipped_records": skipped},
    )
    return wl


def _parse_header_line(line: str, header: SwfHeader) -> None:
    body = line.lstrip(";").strip()
    if ":" not in body:
        return
    key, _, value = body.partition(":")
    key = key.strip().lower()
    value = value.strip()
    if key == "version":
        try:
            header.version = int(float(value))
        except ValueError:
            pass
    elif key == "computer":
        header.computer = value
    elif key == "maxnodes":
        try:
            header.max_nodes = int(value)
        except ValueError:
            pass
    elif key == "unixstarttime":
        try:
            header.unix_start_time = int(value)
        except ValueError:
            pass


def _fields_to_job(f: List[float]) -> Tuple[Job | None, bool]:
    """Map one SWF record to a Job; returns (job, valid)."""
    (job_no, submit, _wait, run, used_procs, _avg_cpu, _used_mem, req_procs,
     req_time, _req_mem, _status, uid, gid, _exe, _queue, _part, _prev,
     _think) = f
    nodes = int(req_procs) if req_procs > 0 else int(used_procs)
    runtime = run if run >= 0 else -1.0
    wcl = req_time if req_time > 0 else runtime
    if nodes <= 0 or runtime < 0 or submit < 0:
        return None, False
    if wcl <= 0:
        wcl = max(runtime, 1.0)
    job = Job(
        id=int(job_no),
        submit_time=submit,
        nodes=nodes,
        runtime=runtime,
        wcl=wcl,
        user_id=int(uid) if uid >= 0 else 0,
        group_id=int(gid) if gid >= 0 else 0,
    )
    return job, True


def write_swf(
    workload: Workload,
    target: Union[str, Path, TextIO],
    header: SwfHeader | None = None,
) -> None:
    """Write a workload as SWF V2 (wait/used fields are -1: scheduling
    outcomes belong to simulations, not workloads)."""
    header = header or SwfHeader(max_nodes=workload.system_size)
    if header.max_nodes is None:
        header.max_nodes = workload.system_size

    def emit(out: TextIO) -> None:
        out.write(f"; Version: {header.version}\n")
        out.write(f"; Computer: {header.computer}\n")
        out.write(f"; MaxNodes: {header.max_nodes}\n")
        out.write(f"; UnixStartTime: {header.unix_start_time}\n")
        if header.note:
            out.write(f"; Note: {header.note}\n")
        for j in workload.jobs:
            fields = [
                j.id, int(j.submit_time), -1, int(round(j.runtime)), j.nodes,
                -1, -1, j.nodes, int(round(j.wcl)), -1, 1, j.user_id,
                j.group_id, -1, -1, -1, -1, -1,
            ]
            out.write(" ".join(str(v) for v in fields) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w") as out:
            emit(out)
    else:
        emit(target)


def roundtrip_equal(a: Workload, b: Workload) -> bool:
    """Field-level equality modulo integer rounding of times (writer emits
    integer seconds, the archive convention)."""
    if len(a) != len(b):
        return False
    for ja, jb in zip(a.jobs, b.jobs):
        if (ja.id != jb.id or ja.nodes != jb.nodes
                or ja.user_id != jb.user_id or ja.group_id != jb.group_id):
            return False
        if abs(ja.submit_time - jb.submit_time) > 1.0:
            return False
        if abs(ja.runtime - jb.runtime) > 1.0 or abs(ja.wcl - jb.wcl) > 1.0:
            return False
    return True
