"""Synthetic CPlant/Ross workload generator.

The paper's SWF trace is not publicly bundled; this generator produces a
statistically equivalent workload calibrated against everything the paper
quantifies (DESIGN.md substitution #1):

* per-cell job counts of **Table 1** (exact at scale=1);
* per-cell processor-hours of **Table 2** (within ~2%, via in-cell runtime
  rescaling);
* the bursty weekly offered-load shape of **Figure 3** (weeks above 100%
  followed by light weeks);
* the user-estimate structure of **Figures 5-7**: overestimation factors
  that shrink with runtime (log-uniform between 1 and max-WCL/runtime),
  a slice of exact estimates, a tail of under-estimates (aborted/overrun
  jobs), and round "standard" wall-clock limits;
* a Zipf user population so the fairshare priority has heavy and light
  users to discriminate.

Everything is driven by one :class:`numpy.random.Generator` seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.job import Job
from . import cplant
from .categories import LENGTH_BOUNDS, WIDTH_BOUNDS
from .model import Workload

DAY = 86_400.0
WEEK = 7 * DAY

#: round wall-clock limits users actually type (seconds)
STANDARD_WCLS = np.array(
    [300, 900, 1800, 3600, 2 * 3600, 4 * 3600, 8 * 3600, 12 * 3600,
     24 * 3600, 36 * 3600, 48 * 3600, 72 * 3600, 96 * 3600, 7 * 86_400,
     10 * 86_400, 30 * 86_400, 40 * 86_400],
    dtype=np.float64,
)


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic trace; defaults reproduce the paper's trace."""

    system_size: int = cplant.SYSTEM_SIZE
    #: fraction of the full trace to generate (scales job counts and weeks
    #: together, preserving the offered-load level)
    scale: float = 1.0
    weeks: Optional[int] = None
    n_users: int = 120
    n_groups: int = 12
    zipf_exponent: float = 1.10
    # wall-clock-limit model
    exact_estimate_prob: float = 0.08
    underestimate_prob: float = 0.04
    round_wcl_prob: float = 0.5
    min_wcl: float = 60.0
    max_wcl: float = 10 * DAY
    #: log10 half-normal spread of the overestimation factor (median ~3.7)
    overest_sigma: float = 0.85
    #: cap for the open-ended "2+ days" runtime bucket
    max_runtime: float = 10 * DAY
    #: weekly offered-load peak as a multiple of the mean (Fig. 3 tops ~1.6
    #: at a ~0.7 mean)
    peak_load_ratio: float = 2.3

    def resolved_weeks(self) -> int:
        if self.weeks is not None:
            return self.weeks
        return max(4, round(cplant.TRACE_WEEKS * self.scale))

    def __post_init__(self) -> None:
        if not (0 < self.scale <= 1.0):
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.n_users < 1:
            raise ValueError("need at least one user")
        if self.min_wcl <= 0 or self.max_wcl <= self.min_wcl:
            raise ValueError("need 0 < min_wcl < max_wcl")


# --------------------------------------------------------------------------
# per-cell sampling
# --------------------------------------------------------------------------

def _sample_widths(rng: np.random.Generator, cat: int, n: int, size_cap: int) -> np.ndarray:
    """Node counts within one width category, biased to 'standard' sizes."""
    lo, hi = WIDTH_BOUNDS[cat]
    open_ended = hi is None
    hi = min(hi if hi is not None else size_cap, size_cap)
    # a bucket lying entirely above a small machine collapses to
    # full-machine jobs (scenario machines can be far below 1024 nodes)
    lo = min(lo, hi)
    if lo >= hi:
        return np.full(n, lo, dtype=np.int64)
    out = rng.integers(lo, hi + 1, size=n)
    if open_ended:
        # the paper's 513+ bucket is 70 short jobs (~17 min mean): wide
        # scaling tests just above half the machine, not full-machine
        # monsters.  Sample mostly 513-700, occasionally wider, full
        # machine only as a rare event — a full drain is exceptional.
        u = rng.random(n)
        out = lo + rng.integers(0, max(hi - lo, 1) + 1, size=n)
        mid_cap = min(lo + max((hi - lo) // 3, 1), hi)
        out[u < 0.80] = rng.integers(lo, mid_cap + 1, size=int((u < 0.80).sum()))
        out[u >= 0.95] = hi
    else:
        # users favor powers of two / the bucket's round top (Figure 4)
        snap = rng.random(n) < 0.55
        out[snap] = hi
        snap_lo = (~snap) & (rng.random(n) < 0.3)
        out[snap_lo] = lo
    return out.astype(np.int64)


def _sample_runtimes(
    rng: np.random.Generator,
    cat: int,
    widths: np.ndarray,
    target_proc_hours: float,
    max_runtime: float,
) -> np.ndarray:
    """Runtimes within one length bucket, rescaled so the cell's total
    processor-hours match Table 2 (where the bucket bounds allow)."""
    lo, hi = LENGTH_BOUNDS[cat]
    hi = hi if hi is not None else max_runtime
    lo_c = max(lo, 10.0)
    hi_c = hi - 1.0
    n = len(widths)
    # log-uniform within the bucket
    r = np.exp(rng.uniform(np.log(lo_c), np.log(hi_c), size=n))
    if target_proc_hours <= 0:
        return r
    target = target_proc_hours * 3600.0
    for _ in range(6):
        cur = float((widths * r).sum())
        if cur <= 0:
            break
        ratio = target / cur
        if abs(ratio - 1.0) < 0.01:
            break
        r = np.clip(r * ratio, lo_c, hi_c)
    return r


def _weekly_profile(rng: np.random.Generator, weeks: int, peak_ratio: float) -> np.ndarray:
    """Relative weekly work weights, bursty like Figure 3.

    A slow cycle with lognormal noise, plus *guaranteed* spike weeks pinned
    at ``peak_ratio`` x mean (roughly one spike every 8 weeks, at least
    one): the overload-then-lull pattern the paper highlights must survive
    down-scaling, so spikes are enforced rather than left to noise.
    """
    k = np.arange(weeks)
    base = 1.0 + 0.45 * np.sin(
        2 * np.pi * k / max(8, weeks // 4) + rng.uniform(0, 2 * np.pi)
    )
    noise = rng.lognormal(mean=0.0, sigma=0.3, size=weeks)
    w = base * noise
    w = np.minimum(w / w.mean(), peak_ratio)
    n_spikes = max(1, round(weeks / 8))
    spikes = rng.choice(weeks, size=n_spikes, replace=False)
    w[spikes] = peak_ratio * rng.uniform(0.95, 1.15, size=n_spikes)
    return w / w.mean()


def _assign_weeks(
    rng: np.random.Generator,
    areas: np.ndarray,
    profile: np.ndarray,
) -> np.ndarray:
    """Greedy weighted assignment of jobs to weeks so per-week arriving work
    tracks the profile.  Big jobs placed first against remaining deficits."""
    weeks = len(profile)
    target = profile / profile.sum() * areas.sum()
    deficit = target.copy()
    order = np.argsort(-areas)
    out = np.empty(len(areas), dtype=np.int64)
    for idx in order:
        p = np.clip(deficit, 0.0, None)
        total = p.sum()
        if total <= 0:
            week = int(rng.integers(0, weeks))
        else:
            week = int(rng.choice(weeks, p=p / total))
        out[idx] = week
        deficit[week] -= areas[idx]
    return out


def _arrival_offsets(rng: np.random.Generator, n: int) -> np.ndarray:
    """Second-of-week offsets with a work-hours bias: weekdays over
    weekends, 9:00-18:00 over nights."""
    day_w = np.array([1.0, 1.0, 1.0, 1.0, 0.9, 0.45, 0.4])  # Mon..Sun
    day = rng.choice(7, size=n, p=day_w / day_w.sum())
    hour_w = np.ones(24)
    hour_w[9:18] = 3.0
    hour_w[0:7] = 0.5
    hour = rng.choice(24, size=n, p=hour_w / hour_w.sum())
    sec = rng.uniform(0, 3600, size=n)
    return day * DAY + hour * 3600.0 + sec


def _sample_wcls(
    rng: np.random.Generator,
    runtimes: np.ndarray,
    cfg: GeneratorConfig,
) -> np.ndarray:
    n = len(runtimes)
    u = rng.random(n)
    wcl = np.empty(n)

    exact = u < cfg.exact_estimate_prob
    under = (~exact) & (u < cfg.exact_estimate_prob + cfg.underestimate_prob)
    over = ~(exact | under)

    wcl[exact] = runtimes[exact]
    # aborted / overrunning jobs: the estimate undershoots the trace runtime
    f_under = np.exp(rng.uniform(np.log(0.02), np.log(0.9), size=int(under.sum())))
    wcl[under] = runtimes[under] * f_under
    # the common case: half-normal (in log10) overestimation capped by the
    # largest permissible request — the bulk of jobs overestimate by a few
    # x, short jobs can reach huge factors, long jobs are capped low
    # (Figure 6's wedge)
    rt_o = np.maximum(runtimes[over], 1.0)
    f_cap = np.maximum(cfg.max_wcl / rt_o, 1.05)
    log_f = np.abs(rng.normal(0.0, cfg.overest_sigma, size=len(rt_o)))
    f = np.minimum(10.0 ** log_f, f_cap)
    wcl[over] = rt_o * f

    snap = over & (rng.random(n) < cfg.round_wcl_prob)
    idx = np.searchsorted(STANDARD_WCLS, wcl[snap], side="left")
    idx = np.minimum(idx, len(STANDARD_WCLS) - 1)
    wcl[snap] = STANDARD_WCLS[idx]

    return np.clip(wcl, cfg.min_wcl, cfg.max_wcl)


def _zipf_weights(n_users: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    w = ranks ** (-s)
    return w / w.sum()


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------

def generate_cplant_workload(
    config: GeneratorConfig | None = None,
    seed: int = 0,
) -> Workload:
    """Generate the calibrated synthetic CPlant/Ross trace."""
    cfg = config or GeneratorConfig()
    rng = np.random.default_rng(seed)

    widths_all: List[np.ndarray] = []
    runtimes_all: List[np.ndarray] = []
    counts = cplant.TABLE1_COUNTS
    hours = cplant.TABLE2_PROC_HOURS
    for wi in range(counts.shape[0]):
        for li in range(counts.shape[1]):
            base = int(counts[wi, li])
            if base == 0:
                continue
            if cfg.scale >= 1.0:
                n = base
            else:
                exact = base * cfg.scale
                n = int(exact) + (1 if rng.random() < exact - int(exact) else 0)
            if n == 0:
                continue
            w = _sample_widths(rng, wi, n, cfg.system_size)
            target = float(hours[wi, li]) * (n / base)
            r = _sample_runtimes(rng, li, w, target, cfg.max_runtime)
            widths_all.append(w)
            runtimes_all.append(r)

    widths = np.concatenate(widths_all)
    runtimes = np.concatenate(runtimes_all)
    n = len(widths)

    wcls = _sample_wcls(rng, runtimes, cfg)

    weeks = cfg.resolved_weeks()
    profile = _weekly_profile(rng, weeks, cfg.peak_load_ratio)
    week_of = _assign_weeks(rng, widths * runtimes, profile)
    submit = week_of * WEEK + _arrival_offsets(rng, n)

    user_w = _zipf_weights(cfg.n_users, cfg.zipf_exponent)
    users = rng.choice(cfg.n_users, size=n, p=user_w) + 1
    groups = (users - 1) % cfg.n_groups + 1

    order = np.argsort(submit, kind="stable")
    jobs = [
        Job(
            id=i + 1,
            submit_time=float(submit[k]),
            nodes=int(widths[k]),
            runtime=float(runtimes[k]),
            wcl=float(wcls[k]),
            user_id=int(users[k]),
            group_id=int(groups[k]),
        )
        for i, k in enumerate(order)
    ]
    return Workload(
        jobs=jobs,
        system_size=cfg.system_size,
        name=f"cplant-synthetic(scale={cfg.scale}, seed={seed})",
        metadata={
            "seed": seed,
            "scale": cfg.scale,
            "weeks": weeks,
            "weekly_profile": profile,
            "config": cfg,
        },
    )


def replication_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent generator seeds derived from one base seed.

    Uses :class:`numpy.random.SeedSequence` spawning rather than
    ``base_seed + i`` so replicated traces draw from decorrelated streams;
    the derivation is deterministic, so campaign cache keys built from
    these seeds are stable across processes and runs.
    """
    if n < 1:
        raise ValueError("need at least one replication")
    ss = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(n)]


def generate_replications(
    config: GeneratorConfig | None = None,
    seeds: Sequence[int] = (0,),
) -> List[Workload]:
    """One calibrated workload per seed (multi-seed replication studies)."""
    return [generate_cplant_workload(config, seed=int(s)) for s in seeds]


def random_workload(
    n_jobs: int,
    system_size: int = 64,
    seed: int = 0,
    load: float = 0.8,
    n_users: int = 8,
    max_width_frac: float = 0.5,
) -> Workload:
    """Small uniform-ish workload for tests and examples.

    ``load`` sets the offered load: mean inter-arrival = mean job area /
    (load x system size).
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = np.random.default_rng(seed)
    max_w = max(1, int(system_size * max_width_frac))
    widths = rng.integers(1, max_w + 1, size=n_jobs)
    runtimes = np.exp(rng.uniform(np.log(60), np.log(8 * 3600), size=n_jobs))
    mean_area = float((widths * runtimes).mean())
    mean_gap = mean_area / (load * system_size)
    gaps = rng.exponential(mean_gap, size=n_jobs)
    submit = np.cumsum(gaps)
    factors = np.exp(rng.uniform(0.0, np.log(10.0), size=n_jobs))
    wcls = np.maximum(runtimes * factors, 60.0)
    users = rng.integers(1, n_users + 1, size=n_jobs)
    jobs = [
        Job(
            id=i + 1,
            submit_time=float(submit[i]),
            nodes=int(widths[i]),
            runtime=float(runtimes[i]),
            wcl=float(wcls[i]),
            user_id=int(users[i]),
        )
        for i in range(n_jobs)
    ]
    return Workload(jobs, system_size, name=f"random(n={n_jobs}, seed={seed})")
