"""Workloads: the CPlant/Ross characterization, SWF I/O, the calibrated
synthetic generator, and workload transforms."""

from . import categories, cplant
from .generator import (
    GeneratorConfig,
    generate_cplant_workload,
    generate_replications,
    random_workload,
    replication_seeds,
)
from .model import Workload
from .swf import SwfFormatError, SwfHeader, read_swf, write_swf
from .transforms import (
    filter_width,
    flash_crowds,
    parent_view,
    remap_runtime_tail,
    shift_to_zero,
    split_by_runtime_limit,
)

__all__ = [
    "GeneratorConfig",
    "SwfFormatError",
    "SwfHeader",
    "Workload",
    "categories",
    "cplant",
    "filter_width",
    "flash_crowds",
    "generate_cplant_workload",
    "generate_replications",
    "parent_view",
    "random_workload",
    "read_swf",
    "remap_runtime_tail",
    "replication_seeds",
    "shift_to_zero",
    "split_by_runtime_limit",
    "write_swf",
]
