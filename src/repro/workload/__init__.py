"""Workloads: the CPlant/Ross characterization, SWF I/O, the calibrated
synthetic generator, and workload transforms."""

from . import categories, cplant
from .generator import (
    GeneratorConfig,
    generate_cplant_workload,
    generate_replications,
    random_workload,
    replication_seeds,
)
from .model import Workload
from .swf import SwfFormatError, SwfHeader, read_swf, write_swf
from .transforms import (
    filter_width,
    parent_view,
    shift_to_zero,
    split_by_runtime_limit,
)

__all__ = [
    "GeneratorConfig",
    "SwfFormatError",
    "SwfHeader",
    "Workload",
    "categories",
    "cplant",
    "filter_width",
    "generate_cplant_workload",
    "generate_replications",
    "parent_view",
    "random_workload",
    "read_swf",
    "replication_seeds",
    "shift_to_zero",
    "split_by_runtime_limit",
    "write_swf",
]
