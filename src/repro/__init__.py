"""repro — reproduction of *Parallel Job Scheduling Policies to Improve
Fairness: A Case Study* (Leung, Sabin, Sadayappan; SAND2008-1310 / ICPP).

Quickstart::

    from repro import (
        generate_cplant_workload, GeneratorConfig, run_policy,
    )

    wl = generate_cplant_workload(GeneratorConfig(scale=0.1), seed=1)
    run = run_policy(wl, "cplant24.nomax.all")
    print(run.summary)
    print(run.fairness)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (
    Cluster,
    Engine,
    Job,
    JobState,
    KillPolicy,
    FreeTimeline,
    ListScheduler,
    Observer,
    ReservationProfile,
    SimulationResult,
)
from .campaign import (
    CampaignCache,
    CampaignCell,
    CampaignResult,
    CampaignSpec,
    CellResult,
    WorkloadSpec,
    aggregate_cells,
    cell_key,
    run_campaign,
    run_cell,
)
from .experiments import (
    PolicyRun,
    RunOptions,
    bench_workload,
    run_policy,
    run_policy_with_options,
    run_scenario,
    run_suite,
)
from .scenarios import (
    Scenario,
    all_scenarios,
    build_scenario,
    get_scenario,
    scenario_names,
)
from .metrics import (
    FairnessStats,
    HybridFSTObserver,
    LossOfCapacityObserver,
    SummaryStats,
    consp_fst,
    fairness_stats,
    resource_equality_deficits,
    sabin_fst,
    summarize,
    weekly_series,
)
from .sched import (
    CONSERVATIVE_POLICIES,
    MINOR_POLICIES,
    PAPER_POLICIES,
    BaseScheduler,
    ConservativeScheduler,
    DepthKScheduler,
    DynamicReservationScheduler,
    EasyBackfillScheduler,
    FairshareTracker,
    NoBackfillScheduler,
    NoGuaranteeScheduler,
    get_policy,
    policy_names,
)
from .workload import (
    GeneratorConfig,
    Workload,
    generate_cplant_workload,
    generate_replications,
    parent_view,
    random_workload,
    read_swf,
    replication_seeds,
    split_by_runtime_limit,
    write_swf,
)

__version__ = "1.0.0"

__all__ = [
    "BaseScheduler",
    "CONSERVATIVE_POLICIES",
    "CampaignCache",
    "CampaignCell",
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "Cluster",
    "ConservativeScheduler",
    "DepthKScheduler",
    "DynamicReservationScheduler",
    "EasyBackfillScheduler",
    "Engine",
    "FairnessStats",
    "FairshareTracker",
    "GeneratorConfig",
    "HybridFSTObserver",
    "Job",
    "JobState",
    "KillPolicy",
    "FreeTimeline",
    "ListScheduler",
    "LossOfCapacityObserver",
    "MINOR_POLICIES",
    "NoBackfillScheduler",
    "NoGuaranteeScheduler",
    "Observer",
    "PAPER_POLICIES",
    "PolicyRun",
    "ReservationProfile",
    "RunOptions",
    "Scenario",
    "SimulationResult",
    "SummaryStats",
    "Workload",
    "WorkloadSpec",
    "aggregate_cells",
    "all_scenarios",
    "bench_workload",
    "build_scenario",
    "cell_key",
    "consp_fst",
    "fairness_stats",
    "generate_cplant_workload",
    "generate_replications",
    "get_policy",
    "get_scenario",
    "parent_view",
    "policy_names",
    "random_workload",
    "read_swf",
    "replication_seeds",
    "resource_equality_deficits",
    "run_campaign",
    "run_cell",
    "run_policy",
    "run_policy_with_options",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "sabin_fst",
    "split_by_runtime_limit",
    "summarize",
    "weekly_series",
    "write_swf",
    "__version__",
]
