"""Command-line interface.

Subcommands::

    repro-sched generate  --scale 0.2 --seed 7 --out trace.swf
    repro-sched run       --policy cplant24.nomax.all [--swf trace.swf | --scale 0.1]
    repro-sched compare   --policies cplant24.nomax.all,cons.72max --scale 0.1
    repro-sched figures   --scale 0.1          # print every paper figure
    repro-sched tables    --scale 1.0          # print Tables 1-2
    repro-sched sweep     campaign.json --jobs 4   # parallel cached sweep
    repro-sched sweep     campaign.json --resume   # continue an interrupted run
    repro-sched cache     verify|prune             # audit/repair the cell cache
    repro-sched paper build --scale 0.05 --jobs 4  # build every paper artifact
    repro-sched paper build --only fig08,table1
    repro-sched paper list                      # the artifact registry
    repro-sched paper diff --against other/manifest.json
    repro-sched matrix    --scale 0.02          # policy x reference-order fairness
    repro-sched policies                        # list known policies
    repro-sched trace run --policy cons.nomax --out run.jsonl
    repro-sched trace summarize run.jsonl       # per-policy decision summary
    repro-sched scenarios list                  # the scenario library
    repro-sched scenarios describe heavy-tail-runtimes
    repro-sched scenarios run heavy-tail-runtimes --set alpha=1.3
    repro-sched scenarios export bursty-arrivals --out bursty.swf

``python -m repro ...`` works too, and ``pip install -e .`` provides the
``repro`` entry point.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import artifacts as A
from .campaign import (
    CampaignCache,
    CampaignSpec,
    RetryPolicy,
    aggregate_rows,
    default_journal_dir,
)
from .experiments import figures as F
from .experiments.export import (
    export_campaign_csv,
    export_campaign_json,
    export_per_job_csv,
    export_suite_csv,
    export_suite_json,
)
from . import api
from .obs import collect_counters, render_counters, setup_logging
from .obs.stats import ProgressMeter
from .workload.analysis import render_analysis
from .experiments.tables import (
    render_table1,
    render_table2,
    table1_job_counts,
    table2_proc_hours,
)
from .sched.registry import PAPER_POLICIES, REGISTRY
from .workload.generator import GeneratorConfig, generate_cplant_workload
from .workload.model import Workload
from .workload.swf import read_swf, write_swf


def _load_workload(args) -> Workload:
    if getattr(args, "swf", None):
        return read_swf(args.swf)
    cfg = GeneratorConfig(scale=args.scale)
    return generate_cplant_workload(cfg, seed=args.seed)


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--swf", help="read an SWF trace instead of generating")
    p.add_argument("--scale", type=float, default=0.1,
                   help="synthetic trace scale (fraction of the full trace)")
    p.add_argument("--seed", type=int, default=7, help="generator seed")


def cmd_generate(args) -> int:
    wl = _load_workload(args)
    write_swf(wl, args.out)
    print(wl.describe())
    print(f"wrote {args.out}")
    return 0


def cmd_run(args) -> int:
    wl = _load_workload(args)
    print(wl.describe())
    if args.stats:
        with collect_counters() as counters:
            handle = api.run(policy=args.policy, workload=wl)
        print(handle.report())
        print("hot-path counters:")
        print(render_counters(counters))
    else:
        handle = api.run(policy=args.policy, workload=wl)
        print(handle.report())
    return 0


def cmd_trace_run(args) -> int:
    from .obs.trace import TraceObserver, read_trace, render_summary, \
        summarize_records

    wl = _load_workload(args)
    print(wl.describe())
    obs = TraceObserver(args.out or None, meta={"workload": wl.name})
    api.run(policy=args.policy, workload=wl, observers=(obs,))
    if args.out:
        records = list(read_trace(args.out))
        print(f"wrote {args.out} ({len(records)} records)")
    else:
        records = list(obs.records)
    print(render_summary(summarize_records(records)))
    return 0


def cmd_trace_summarize(args) -> int:
    from .obs.trace import read_trace, render_summary, summarize_records

    try:
        summary = summarize_records(read_trace(args.trace))
    except (OSError, ValueError) as exc:
        print(f"[trace] {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def cmd_compare(args) -> int:
    wl = _load_workload(args)
    print(wl.describe())
    keys = args.policies.split(",") if args.policies else list(PAPER_POLICIES)
    suite = api.compare(keys, workload=wl, progress=True)
    hdr = (f"{'policy':<24}{'%unfair':>9}{'avg miss':>12}{'avg TAT':>12}"
           f"{'LOC%':>8}{'util%':>8}")
    print(hdr)
    for k, r in suite.items():
        print(
            f"{k:<24}{100 * r.percent_unfair:>8.2f}%"
            f"{r.average_miss_time:>12,.0f}{r.average_turnaround:>12,.0f}"
            f"{100 * r.loss_of_capacity:>7.2f}%{100 * r.summary.utilization:>7.1f}%"
        )
    return 0


def cmd_figures(args) -> int:
    wl = _load_workload(args)
    print(wl.describe())
    suite = api.compare(PAPER_POLICIES, workload=wl, progress=True)
    baseline = suite["cplant24.nomax.all"]
    sections = [
        F.render_fig03(F.fig03_weekly_load(baseline, wl)),
        F.render_fig04(F.fig04_runtime_vs_nodes(wl)),
        F.render_fig05(F.fig05_estimates(wl)),
        F.render_fig06(F.fig06_overestimation_vs_runtime(wl)),
        F.render_fig07(F.fig07_overestimation_vs_nodes(wl)),
        F.render_fig08(F.fig08_percent_unfair_minor(suite)),
        F.render_fig09(F.fig09_miss_time_minor(suite)),
        F.render_fig10(F.fig10_miss_by_width_minor(suite)),
        F.render_fig11(F.fig11_turnaround_minor(suite)),
        F.render_fig12(F.fig12_turnaround_by_width_minor(suite)),
        F.render_fig13(F.fig13_loc_minor(suite)),
        F.render_fig14(F.fig14_percent_unfair_all(suite)),
        F.render_fig15(F.fig15_miss_time_all(suite)),
        F.render_fig16(F.fig16_miss_by_width_cons(suite)),
        F.render_fig17(F.fig17_turnaround_all(suite)),
        F.render_fig18(F.fig18_turnaround_by_width_cons(suite)),
        F.render_fig19(F.fig19_loc_all(suite)),
    ]
    print("\n\n".join(sections))
    return 0


def cmd_tables(args) -> int:
    wl = _load_workload(args)
    print(wl.describe())
    print(render_table1(table1_job_counts(wl)))
    print()
    print(render_table2(table2_proc_hours(wl)))
    return 0


def cmd_analyze(args) -> int:
    wl = _load_workload(args)
    print(render_analysis(wl))
    return 0


def cmd_export(args) -> int:
    wl = _load_workload(args)
    print(wl.describe())
    keys = args.policies.split(",") if args.policies else list(PAPER_POLICIES)
    suite = api.compare(keys, workload=wl, progress=True)
    wrote = []
    if args.json:
        export_suite_json(suite, args.json)
        wrote.append(args.json)
    if args.csv:
        export_suite_csv(suite, args.csv)
        wrote.append(args.csv)
    if args.per_job:
        for key, run in suite.items():
            path = f"{args.per_job}.{key}.csv"
            export_per_job_csv(run, path)
            wrote.append(path)
    if not wrote:
        print("nothing to write: pass --json, --csv, and/or --per-job")
        return 1
    for path in wrote:
        print(f"wrote {path}")
    return 0


def _retry_policy(args) -> "RetryPolicy":
    """The :class:`RetryPolicy` described by ``--retries``/``--timeout``."""
    return RetryPolicy(max_attempts=args.retries + 1, timeout=args.timeout)


def _add_robustness_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts per failed cell (0 = fail fast)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock budget in seconds "
                        "(pool mode only; default: unlimited)")
    p.add_argument("--resume", action="store_true",
                   help="replay completed cells from this grid's run "
                        "journal before executing the rest")


def cmd_sweep(args) -> int:
    spec = CampaignSpec.from_json(args.spec)
    cache = None if args.no_cache else CampaignCache(args.cache_dir)
    meter: List[ProgressMeter] = []

    def progress(done, total, cell, source, elapsed):
        if not args.quiet:
            if not meter:
                meter.append(ProgressMeter(total))
            tag = {"cache": "cache", "journal": "jrnl "}.get(source, "run  ")
            print(f"[sweep] {done:>4}/{total} {tag} {cell.label()} "
                  f"— {meter[0].note(done)}", flush=True)

    result = api.sweep(
        spec,
        jobs=args.jobs,
        cache=cache,
        force=args.force,
        progress=progress,
        retry=_retry_policy(args),
        keep_going=args.keep_going,
        resume=args.resume,
        journal_dir=default_journal_dir(cache),
    )
    doc = result.aggregate()

    print(
        f"campaign {spec.name!r}: {result.n_cells} cells "
        f"({result.n_simulated} simulated, {result.n_cached} cached) "
        f"in {result.elapsed:.1f}s with --jobs {args.jobs}"
    )
    if args.stats and result.stats is not None:
        print(result.stats.render())
    if result.n_failed:
        for f in result.report.failures:
            print(f"[sweep] FAILED {f.cell.label()} [{f.kind}] after "
                  f"{f.attempts} attempt(s): {f.error}", file=sys.stderr)
        print(f"[sweep] partial result: {result.n_failed} cells missing "
              f"from aggregates", file=sys.stderr)
    def _group_label(g) -> str:
        wl = g["workload"]
        head = wl.get("scenario") or wl["kind"]
        wname = (wl.get("path") or
                 f"{head}({', '.join(f'{k}={v}' for k, v in wl.get('params', {}).items())})")
        if g["overrides"]:
            ov = ",".join(f"{k}={v}" for k, v in g["overrides"].items())
            wname = f"{wname} [{ov}]"
        return wname

    labels = [_group_label(g) for g in doc["groups"]]
    wcol = max([len("workload"), *map(len, labels)]) + 2
    print(f"{'policy':<24}{'workload':<{wcol}}{'n':>3}"
          f"{'%unfair':>14}{'avg TAT':>20}")
    for g, wname in zip(doc["groups"], labels):
        pu = g["metrics"].get("fairness.percent_unfair", {})
        tat = g["metrics"].get("summary.avg_turnaround", {})
        print(
            f"{g['policy']:<24}{wname:<{wcol}}{g['n_cells']:>3}"
            f"{100 * pu.get('mean', 0):>8.2f}±{100 * pu.get('ci95', 0):<4.2f}%"
            f"{tat.get('mean', 0):>13,.0f}±{tat.get('ci95', 0):<,.0f}s"
        )
    wrote = []
    if args.json:
        export_campaign_json(doc, args.json)
        wrote.append(args.json)
    if args.csv:
        export_campaign_csv(aggregate_rows(doc), args.csv)
        wrote.append(args.csv)
    for path in wrote:
        print(f"wrote {path}")
    return 1 if result.n_failed else 0


def cmd_cache_verify(args) -> int:
    cache = CampaignCache(args.cache_dir)
    audit = cache.verify()
    if args.json:
        print(json.dumps(audit.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"[cache] {cache.root}: {audit.n_entries} entries — "
              f"{audit.n_ok} ok, {audit.n_corrupt} corrupt, "
              f"{audit.n_other_schema} other-schema, "
              f"{audit.n_tmp} tmp orphan(s)")
        for key, why in audit.corrupt:
            print(f"[cache] corrupt {key[:16]}…: {why}")
    return 1 if audit.corrupt else 0


def cmd_cache_prune(args) -> int:
    cache = CampaignCache(args.cache_dir)
    audit = cache.prune(quarantine=args.quarantine)
    action = "quarantined" if args.quarantine else "removed"
    print(f"[cache] {cache.root}: {action} {audit.n_corrupt} corrupt "
          f"entr{'y' if audit.n_corrupt == 1 else 'ies'}, reaped "
          f"{audit.n_tmp} tmp orphan(s) "
          f"({audit.n_ok} of {audit.n_entries} entries ok)")
    return 0


def cmd_matrix(args) -> int:
    from .experiments.matrix import MatrixConfig, run_matrix

    try:
        cfg = MatrixConfig(
            policies=tuple(args.policies.split(","))
            if args.policies else MatrixConfig.policies,
            reference_orders=tuple(args.orders.split(","))
            if args.orders else MatrixConfig.reference_orders,
            scenarios=tuple(args.scenarios.split(","))
            if args.scenarios else MatrixConfig.scenarios,
            scale=args.scale,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    cache = None if args.no_cache else CampaignCache(args.cache_dir)
    meter: List[ProgressMeter] = []

    def progress(done, total, cell, source, elapsed):
        if not args.quiet:
            if not meter:
                meter.append(ProgressMeter(total))
            tag = "cache" if source == "cache" else "run  "
            print(f"[matrix] {done:>3}/{total} {tag} {cell.label()} "
                  f"— {meter[0].note(done)}", flush=True)

    result = run_matrix(
        cfg, jobs=args.jobs, cache=cache, force=args.force, progress=progress,
    )
    text = result.render()
    print(text)
    print(
        f"\nmatrix: {len(result.results)} cells "
        f"({result.n_simulated} simulated, {result.n_cached} cached) "
        f"— {len(cfg.policies)} policies x {len(cfg.reference_orders)} "
        f"orders x {len(cfg.scenarios)} scenarios"
    )
    wrote = []
    if args.out:
        Path(args.out).write_text(text + "\n")
        wrote.append(args.out)
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.doc(), indent=2, sort_keys=True) + "\n"
        )
        wrote.append(args.json)
    for path in wrote:
        print(f"wrote {path}")
    return 0


def _parse_param_sets(items) -> dict:
    """``--set k=v`` pairs -> typed values (int, float, bool, or str)."""
    out = {}
    for item in items or ():
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        if raw.lower() in ("true", "false"):
            out[key] = raw.lower() == "true"
            continue
        for cast in (int, float):
            try:
                out[key] = cast(raw)
                break
            except ValueError:
                continue
        else:
            out[key] = raw
    return out


def cmd_scenarios_list(_args) -> int:
    print(f"{'scenario':<24}{'axis':<28}{'parameters'}")
    for sc in api.list_scenarios():
        params = ", ".join(f"{p.name}={p.default}" for p in sc.params) or "-"
        print(f"{sc.name:<24}{sc.axis:<28}{params}")
    print("\nrepro scenarios describe <name> for the full recipe; "
          "docs/SCENARIOS.md for the catalog")
    return 0


def cmd_scenarios_describe(args) -> int:
    print(api.get_scenario(args.name).describe())
    return 0


def cmd_scenarios_run(args) -> int:
    params = _parse_param_sets(args.set)
    sc = api.get_scenario(args.name)  # unknown name dies before any simulation
    keys = args.policies.split(",") if args.policies else ["cplant24.nomax.all"]
    print(sc.build(seed=args.seed, **params).describe())
    # rebuilds the workload (generation is cheap next to simulation) so the
    # scenario-option merge semantics live in the facade alone
    suite = api.compare(keys, scenario=args.name, seed=args.seed,
                        params=tuple(params.items()),
                        progress=len(keys) > 1)
    for handle in suite.values():
        print(handle.report())
    return 0


def cmd_scenarios_export(args) -> int:
    params = _parse_param_sets(args.set)
    wl = api.get_scenario(args.name).build(seed=args.seed, **params)
    out = args.out or f"{args.name}.swf"
    write_swf(wl, out)
    print(wl.describe())
    print(f"wrote {out}")
    return 0


def cmd_paper_list(_args) -> int:
    print(f"{'id':<8}{'kind':<8}{'inputs':<26}{'output'}")
    for art in A.all_artifacts():
        deps = []
        if art.policies:
            deps.append(f"{len(art.policies)} policy cells")
        if art.needs_workload:
            deps.append("workload")
        print(f"{art.id:<8}{art.kind:<8}{' + '.join(deps):<26}{art.output}")
    print(f"\n{len(A.all_artifacts())} artifacts; "
          "repro paper build [--only id,id] builds them (docs/PIPELINE.md)")
    return 0


def cmd_paper_build(args) -> int:
    only = args.only.split(",") if args.only else None
    cache = None if args.no_cache else CampaignCache(args.cache_dir)
    config = A.PaperConfig(scale=args.scale, seed=args.seed)

    meter: List[ProgressMeter] = []

    def progress(done, total, cell, source, elapsed):
        if not args.quiet:
            if not meter:
                meter.append(ProgressMeter(total))
            tag = {"cache": "cache", "journal": "jrnl "}.get(source, "run  ")
            print(f"[paper] {done:>3}/{total} {tag} {cell.label()} "
                  f"— {meter[0].note(done)}", flush=True)

    try:
        result = api.build_artifacts(
            only=only,
            config=config,
            out_dir=args.out_dir,
            jobs=args.jobs,
            cache=cache,
            force=args.force,
            check=args.check,
            progress=progress,
            retry=_retry_policy(args),
            resume=args.resume,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    plan = result.plan
    if args.stats and result.stats is not None:
        print(result.stats.render())
    if not args.quiet:
        for rendered in result.outputs:
            print(f"[paper] wrote {rendered.path} "
                  f"(sha256 {rendered.sha256[:12]})")
    print(
        f"paper build: {len(result.outputs)} artifacts, "
        f"{len(plan.cells)} cells ({result.n_simulated} simulated, "
        f"{result.n_cached} cached, {plan.n_shared} shared) "
        f"in {result.elapsed:.1f}s at scale {plan.config.scale}"
    )
    print(f"manifest: {result.manifest_path}")
    return 0


def cmd_paper_diff(args) -> int:
    if args.against:
        try:
            ours = A.load_manifest(args.out_dir)
        except (OSError, ValueError):
            print(f"[paper-diff] missing or unreadable "
                  f"{A.MANIFEST_NAME} in {args.out_dir}")
            return 1
        try:
            theirs = json.loads(Path(args.against).read_text())
        except (OSError, ValueError):
            print(f"[paper-diff] missing or unreadable manifest "
                  f"{args.against}")
            return 1
        diffs = A.diff_manifests(ours, theirs)
        for d in diffs:
            print(f"[paper-diff] {d}")
        if diffs:
            return 1
        print(f"[paper-diff] manifests agree ({len(ours['artifacts'])} artifacts)")
        return 0
    problems = A.verify_outputs(args.out_dir)
    for p in problems:
        print(f"[paper-diff] {p}")
    if problems:
        return 1
    doc = A.load_manifest(args.out_dir)
    print(f"[paper-diff] {args.out_dir} matches its manifest "
          f"({len(doc['artifacts'])} artifacts)")
    return 0


def cmd_serve(args) -> int:
    overrides = {}
    if args.estimate_mode:
        overrides["estimate_mode"] = args.estimate_mode
    if args.epsilon is not None:
        overrides["epsilon"] = args.epsilon
    api.serve(
        host=args.host,
        port=args.port,
        policy=args.policy,
        system_size=args.system_size,
        options=overrides or None,
        max_pending=args.max_pending,
    )
    return 0


def cmd_policies(_args) -> int:
    for key, spec in REGISTRY.items():
        star = "*" if key in PAPER_POLICIES else " "
        print(f"{star} {key:<24} {spec.description}")
    print("\n* = one of the paper's nine evaluated policies")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-sched",
        description="CPlant fairness case-study reproduction",
    )
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="more logging (-v info, -vv debug)")
    # top-level quiet gets its own dest: `sweep`/`paper build` define a
    # --quiet of their own whose default would clobber a shared dest
    p.add_argument("-q", dest="log_quiet", action="count", default=0,
                   help="less logging (errors only)")
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a synthetic SWF trace")
    _add_workload_args(g)
    g.add_argument("--out", default="cplant_synthetic.swf")
    g.set_defaults(fn=cmd_generate)

    r = sub.add_parser("run", help="simulate one policy")
    _add_workload_args(r)
    r.add_argument("--policy", default="cplant24.nomax.all",
                   choices=sorted(REGISTRY))
    r.add_argument("--stats", action="store_true",
                   help="collect and print hot-path counters")
    r.set_defaults(fn=cmd_run)

    tr = sub.add_parser(
        "trace", help="structured event tracing (JSONL) and summaries",
    )
    trsub = tr.add_subparsers(dest="trace_command", required=True)

    trr = trsub.add_parser(
        "run", help="simulate one policy with the trace observer attached",
    )
    _add_workload_args(trr)
    trr.add_argument("--policy", default="cplant24.nomax.all",
                     choices=sorted(REGISTRY))
    trr.add_argument("--out", default=None,
                     help="JSONL trace path (default: in-memory, summary only)")
    trr.set_defaults(fn=cmd_trace_run)

    trs = trsub.add_parser(
        "summarize", help="per-policy decision summary of a JSONL trace",
    )
    trs.add_argument("trace", help="trace file written by `trace run --out`")
    trs.add_argument("--json", action="store_true",
                     help="print the summary as JSON instead of text")
    trs.set_defaults(fn=cmd_trace_summarize)

    c = sub.add_parser("compare", help="simulate several policies")
    _add_workload_args(c)
    c.add_argument("--policies", default=None,
                   help="comma-separated policy keys (default: the paper's nine)")
    c.set_defaults(fn=cmd_compare)

    f = sub.add_parser("figures", help="print every paper figure")
    _add_workload_args(f)
    f.set_defaults(fn=cmd_figures)

    t = sub.add_parser("tables", help="print Tables 1-2")
    _add_workload_args(t)
    t.set_defaults(fn=cmd_tables)

    a = sub.add_parser("analyze", help="workload characterization summary")
    _add_workload_args(a)
    a.set_defaults(fn=cmd_analyze)

    e = sub.add_parser("export", help="simulate and export metrics")
    _add_workload_args(e)
    e.add_argument("--policies", default=None,
                   help="comma-separated policy keys (default: the nine)")
    e.add_argument("--json", default=None, help="suite metrics JSON path")
    e.add_argument("--csv", default=None, help="suite metrics CSV path")
    e.add_argument("--per-job", default=None,
                   help="per-job CSV path prefix (one file per policy)")
    e.set_defaults(fn=cmd_export)

    sw = sub.add_parser(
        "sweep",
        help="run a campaign spec: parallel sweep with on-disk caching",
    )
    sw.add_argument("spec", help="campaign spec JSON path (see README)")
    sw.add_argument("--jobs", type=int, default=1,
                    help="worker processes (1 = run inline, no pool)")
    sw.add_argument("--cache-dir", default=None,
                    help="cache root (default ~/.cache/repro-campaign)")
    sw.add_argument("--no-cache", action="store_true",
                    help="neither read nor write the on-disk cache")
    sw.add_argument("--force", action="store_true",
                    help="ignore cached cells but still refresh them")
    sw.add_argument("--json", default=None, help="aggregate JSON output path")
    sw.add_argument("--csv", default=None, help="aggregate CSV output path")
    sw.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines")
    sw.add_argument("--stats", action="store_true",
                    help="print the run-stats block (cache hits, cell-time "
                         "percentiles, worker utilization, recovery counts)")
    _add_robustness_args(sw)
    sw.add_argument("--keep-going", action="store_true",
                    help="on terminal cell failures, aggregate what "
                         "completed (with an explicit 'incomplete' block) "
                         "instead of raising")
    sw.set_defaults(fn=cmd_sweep)

    ca = sub.add_parser(
        "cache", help="inspect and repair the campaign cell cache",
    )
    casub = ca.add_subparsers(dest="cache_command", required=True)

    cv = casub.add_parser(
        "verify", help="checksum-verify every cache entry (read-only)",
    )
    cv.add_argument("--cache-dir", default=None,
                    help="cache root (default ~/.cache/repro-campaign)")
    cv.add_argument("--json", action="store_true",
                    help="print the audit as JSON")
    cv.set_defaults(fn=cmd_cache_verify)

    cp = casub.add_parser(
        "prune", help="remove corrupt entries and reap tmp orphans",
    )
    cp.add_argument("--cache-dir", default=None,
                    help="cache root (default ~/.cache/repro-campaign)")
    cp.add_argument("--quarantine", action="store_true",
                    help="move corrupt entries to <root>/quarantine/ "
                         "instead of deleting them")
    cp.set_defaults(fn=cmd_cache_prune)

    pp = sub.add_parser(
        "paper",
        help="declarative paper-artifact pipeline (figures 3-19, tables 1-2)",
    )
    ppsub = pp.add_subparsers(dest="paper_command", required=True)

    pb = ppsub.add_parser(
        "build",
        help="build paper artifacts through the content-addressed cache",
    )
    pb.add_argument("--only", default=None,
                    help="comma-separated artifact ids (default: all; "
                         "see `repro paper list`)")
    pb.add_argument("--scale", type=float, default=A.DEFAULT_SCALE,
                    help="synthetic trace scale (1.0 = the full trace)")
    pb.add_argument("--seed", type=int, default=A.DEFAULT_SEED,
                    help="generator seed")
    pb.add_argument("--jobs", type=int, default=1,
                    help="simulation worker processes (1 = inline)")
    pb.add_argument("--out-dir", default="paper-artifacts",
                    help="output directory for renderings + manifest.json")
    pb.add_argument("--cache-dir", default=None,
                    help="cell cache root (default ~/.cache/repro-campaign)")
    pb.add_argument("--no-cache", action="store_true",
                    help="neither read nor write the on-disk cell cache")
    pb.add_argument("--force", action="store_true",
                    help="ignore cached cells but still refresh them")
    pb.add_argument("--check", action="store_true",
                    help="run each artifact's qualitative shape checks")
    pb.add_argument("--quiet", action="store_true",
                    help="suppress per-cell and per-artifact lines")
    pb.add_argument("--stats", action="store_true",
                    help="print the run-stats block (cache hits, cell-time "
                         "percentiles, worker utilization, recovery counts)")
    _add_robustness_args(pb)
    pb.set_defaults(fn=cmd_paper_build)

    pl = ppsub.add_parser("list", help="list registered paper artifacts")
    pl.set_defaults(fn=cmd_paper_list)

    pd = ppsub.add_parser(
        "diff",
        help="verify outputs against manifest.json, or compare manifests",
    )
    pd.add_argument("--out-dir", default="paper-artifacts",
                    help="build directory holding manifest.json")
    pd.add_argument("--against", default=None,
                    help="second manifest.json to compare against")
    pd.set_defaults(fn=cmd_paper_diff)

    mx = sub.add_parser(
        "matrix",
        help="policy x reference-order fairness matrix (cached sweep)",
    )
    mx.add_argument("--policies", default=None,
                    help="comma-separated policy keys "
                         "(default: the registry's matrix frontier)")
    mx.add_argument("--orders", default=None,
                    help="comma-separated hybrid-FST reference orders "
                         "(default: fairshare,fcfs,shortest-first)")
    mx.add_argument("--scenarios", default=None,
                    help="comma-separated scenario names "
                         "(default: cplant-baseline)")
    mx.add_argument("--scale", type=float, default=0.05,
                    help="scenario trace scale")
    mx.add_argument("--seed", type=int, default=7, help="generator seed")
    mx.add_argument("--jobs", type=int, default=1,
                    help="worker processes (1 = run inline, no pool)")
    mx.add_argument("--cache-dir", default=None,
                    help="cache root (default ~/.cache/repro-campaign)")
    mx.add_argument("--no-cache", action="store_true",
                    help="neither read nor write the on-disk cache")
    mx.add_argument("--force", action="store_true",
                    help="ignore cached cells but still refresh them")
    mx.add_argument("--out", default=None,
                    help="write the rendered matrix to a text file")
    mx.add_argument("--json", default=None,
                    help="write the matrix document as sorted JSON")
    mx.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines")
    mx.set_defaults(fn=cmd_matrix)

    sv = sub.add_parser(
        "serve",
        help="run the multi-tenant scheduler server (line-JSON over TCP)",
    )
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument("--port", type=int, default=0,
                    help="bind port (0 = ephemeral, announced on stdout)")
    sv.add_argument("--policy", default="easy.fairshare",
                    help="scheduling policy for the shared simulation")
    sv.add_argument("--system-size", type=int, default=1024,
                    help="cluster size in nodes")
    sv.add_argument("--max-pending", type=int, default=512,
                    help="per-tenant pending-buffer bound (backpressure)")
    sv.add_argument("--estimate-mode", default=None,
                    choices=["perfect", "wcl"], help="FST estimate mode")
    sv.add_argument("--epsilon", type=float, default=None,
                    help="fairness tolerance (seconds)")
    sv.set_defaults(fn=cmd_serve)

    ls = sub.add_parser("policies", help="list known policies")
    ls.set_defaults(fn=cmd_policies)

    sc = sub.add_parser("scenarios", help="the named workload scenario library")
    scsub = sc.add_subparsers(dest="scenario_command", required=True)

    sl = scsub.add_parser("list", help="list registered scenarios")
    sl.set_defaults(fn=cmd_scenarios_list)

    sd = scsub.add_parser("describe", help="show one scenario's full recipe")
    sd.add_argument("name")
    sd.set_defaults(fn=cmd_scenarios_describe)

    def _add_scenario_build_args(sp) -> None:
        sp.add_argument("name")
        sp.add_argument("--seed", type=int, default=7, help="scenario seed")
        sp.add_argument("--set", action="append", metavar="PARAM=VALUE",
                        help="override a scenario parameter (repeatable)")

    sr = scsub.add_parser(
        "run", help="build a scenario and run policies on it",
    )
    _add_scenario_build_args(sr)
    sr.add_argument("--policies", default=None,
                    help="comma-separated policy keys "
                         "(default: cplant24.nomax.all)")
    sr.set_defaults(fn=cmd_scenarios_run)

    se = scsub.add_parser("export", help="write a scenario workload as SWF")
    _add_scenario_build_args(se)
    se.add_argument("--out", default=None,
                    help="output path (default <scenario>.swf)")
    se.set_defaults(fn=cmd_scenarios_export)

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.verbose - args.log_quiet)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro sweep ... | head`);
        # redirect to devnull so the interpreter's shutdown flush doesn't
        # print a second traceback, and exit like a killed pipe consumer
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    sys.exit(main())
