"""Loss of Capacity (Equation 4).

LOC is the fraction of processor cycles left idle *while work was
waiting*: the time integral of ``min(queued demand, idle nodes)``
normalized by makespan x system size.  A work-conserving scheduler has
LOC 0; backfilling schedulers trade some LOC for fairness guarantees.

The integrand only changes at simulation events, so this is an
:class:`~repro.core.engine.Observer` that accumulates exactly between
state changes rather than a post-processing pass.
"""

from __future__ import annotations

from ..core.engine import Engine, Observer
from ..core.job import Job
from ..core.results import SimulationResult


class LossOfCapacityObserver(Observer):
    """Attach to an engine; read ``loss_of_capacity`` afterwards."""

    def __init__(self) -> None:
        self._integral = 0.0
        self._last_time = 0.0
        self._queued_nodes = 0
        self._free_nodes = 0
        self._size = 0
        # recorded at completion for Eq. 4's normalization
        self._min_start = None
        self._max_end = None

    # -- wiring ------------------------------------------------------------------

    def on_attach(self, engine: Engine) -> None:
        self._size = engine.cluster.size
        self._free_nodes = engine.cluster.free_nodes
        self._last_time = engine.now

    def _accumulate(self, now: float) -> None:
        dt = now - self._last_time
        if dt > 0:
            waste = min(self._queued_nodes, self._free_nodes)
            if waste > 0:
                self._integral += waste * dt
            self._last_time = now
        elif dt == 0:
            return
        else:
            raise RuntimeError(f"time went backwards in LOC observer: {now}")

    def on_arrival(self, job: Job, now: float) -> None:
        self._accumulate(now)
        self._queued_nodes += job.nodes

    def on_start(self, job: Job, now: float) -> None:
        self._accumulate(now)
        self._queued_nodes -= job.nodes
        self._free_nodes -= job.nodes
        if self._queued_nodes < 0 or self._free_nodes < 0:
            raise RuntimeError("LOC accounting went negative")
        if self._min_start is None:
            self._min_start = now

    def on_completion(self, job: Job, now: float) -> None:
        self._accumulate(now)
        self._free_nodes += job.nodes
        self._max_end = now

    def on_end(self, now: float) -> None:
        self._accumulate(now)

    # -- results ---------------------------------------------------------------------

    @property
    def wasted_proc_seconds(self) -> float:
        """The raw integral in Eq. 4's numerator."""
        return self._integral

    @property
    def loss_of_capacity(self) -> float:
        """Equation 4: integral / (makespan x system size)."""
        if self._min_start is None or self._max_end is None:
            return 0.0
        span = self._max_end - self._min_start
        if span <= 0:
            return 0.0
        return self._integral / (span * self._size)

    def collect(self, result: SimulationResult) -> None:
        result.series["loss_of_capacity"] = {0: self.loss_of_capacity}
        result.series["wasted_proc_seconds"] = {0: self._integral}


def loc_of(result: SimulationResult) -> float:
    """Pull LOC from a result produced with a LossOfCapacityObserver."""
    try:
        return result.series["loss_of_capacity"][0]
    except KeyError:
        raise KeyError(
            "result has no LOC series; attach LossOfCapacityObserver"
        ) from None
