"""Weekly offered-load and achieved-utilization series (Figure 3).

Offered load for week *k* is the work (nodes x runtime) submitted during
that week divided by the week's capacity; achieved utilization is the work
actually *executed* during that week (interval overlap of running jobs
with the week) over the same capacity.  Offered load can exceed 100%;
utilization cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.job import Job, JobState

WEEK = 7 * 86_400.0


@dataclass(frozen=True)
class WeeklySeries:
    week_start: np.ndarray      # seconds, left edge of each week
    offered_load: np.ndarray    # fraction of weekly capacity submitted
    utilization: np.ndarray     # fraction of weekly capacity executed

    def __len__(self) -> int:
        return len(self.week_start)


def weekly_series(
    jobs: Sequence[Job],
    system_size: int,
    origin: float = 0.0,
    n_weeks: int | None = None,
) -> WeeklySeries:
    """Compute the Figure 3 series from completed jobs."""
    if not jobs:
        return WeeklySeries(np.array([]), np.array([]), np.array([]))
    for j in jobs:
        if j.state is not JobState.COMPLETED:
            raise ValueError(f"job {j.id} not completed")

    submit = np.array([j.submit_time for j in jobs])
    start = np.array([j.start_time for j in jobs])
    end = np.array([j.end_time for j in jobs])
    nodes = np.array([j.nodes for j in jobs], dtype=np.float64)

    horizon = max(float(end.max()), float(submit.max()))
    if n_weeks is None:
        n_weeks = int(np.ceil((horizon - origin) / WEEK))
    n_weeks = max(n_weeks, 1)
    edges = origin + WEEK * np.arange(n_weeks + 1)
    capacity = WEEK * system_size

    # offered load: histogram of submitted work by submit week
    areas = nodes * np.array([j.runtime for j in jobs])
    offered, _ = np.histogram(submit, bins=edges, weights=areas)
    # work submitted past the last edge lands in the final week
    tail = submit >= edges[-1]
    if tail.any():
        offered[-1] += areas[tail].sum()

    # utilization: executed proc-seconds overlapping each week
    lo = np.clip(start[:, None], edges[None, :-1], edges[None, 1:])
    hi = np.clip(end[:, None], edges[None, :-1], edges[None, 1:])
    overlap = np.clip(hi - lo, 0.0, None)          # (jobs x weeks)
    executed = (overlap * nodes[:, None]).sum(axis=0)

    return WeeklySeries(
        week_start=edges[:-1],
        offered_load=offered / capacity,
        utilization=executed / capacity,
    )


def format_weekly(series: WeeklySeries) -> str:
    lines = ["week  offered%  utilized%"]
    for k in range(len(series)):
        lines.append(
            f"{k:4d}  {100 * series.offered_load[k]:7.1f}  "
            f"{100 * series.utilization[k]:8.1f}"
        )
    return "\n".join(lines)
