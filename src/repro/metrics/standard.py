"""Standard user and system metrics (Section 3.2).

User metrics: wait time, turnaround time (Eq. 1), slowdown.  System
metrics: utilization (Eq. 2) over the makespan (Eq. 3).  Loss of Capacity
(Eq. 4) has its own module because it needs in-simulation integration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.job import Job, JobState
from ..core.results import SimulationResult


def _require_completed(jobs: Sequence[Job]) -> None:
    bad = [j.id for j in jobs if j.state is not JobState.COMPLETED]
    if bad:
        raise ValueError(f"metrics need completed jobs; incomplete: {bad[:5]}")


def wait_times(jobs: Sequence[Job]) -> np.ndarray:
    _require_completed(jobs)
    return np.array([j.start_time - j.submit_time for j in jobs])


def turnaround_times(jobs: Sequence[Job]) -> np.ndarray:
    _require_completed(jobs)
    return np.array([j.end_time - j.submit_time for j in jobs])


def average_turnaround(jobs: Sequence[Job]) -> float:
    """Equation 1."""
    if not jobs:
        return 0.0
    return float(turnaround_times(jobs).mean())


def average_wait(jobs: Sequence[Job]) -> float:
    if not jobs:
        return 0.0
    return float(wait_times(jobs).mean())


def slowdowns(jobs: Sequence[Job], bound: float = 10.0) -> np.ndarray:
    """Bounded slowdown: TAT / max(runtime, bound); the bound keeps
    zero-length jobs from dominating the mean."""
    _require_completed(jobs)
    tat = turnaround_times(jobs)
    rt = np.array([max(j.end_time - j.start_time, bound) for j in jobs])
    return tat / rt


def average_slowdown(jobs: Sequence[Job], bound: float = 10.0) -> float:
    if not jobs:
        return 0.0
    return float(slowdowns(jobs, bound).mean())


def makespan(jobs: Sequence[Job]) -> float:
    """Equation 3: MaxCompletionTime - MinStartTime."""
    if not jobs:
        return 0.0
    _require_completed(jobs)
    return max(j.end_time for j in jobs) - min(j.start_time for j in jobs)


def utilization(jobs: Sequence[Job], system_size: int) -> float:
    """Equation 2: executed work / (makespan x system size)."""
    span = makespan(jobs)
    if span <= 0:
        return 0.0
    work = sum(j.nodes * (j.end_time - j.start_time) for j in jobs)
    return work / (span * system_size)


@dataclass(frozen=True)
class SummaryStats:
    """One simulation's headline numbers."""

    n_jobs: int
    avg_wait: float
    avg_turnaround: float
    avg_slowdown: float
    utilization: float
    makespan: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_jobs": self.n_jobs,
            "avg_wait": self.avg_wait,
            "avg_turnaround": self.avg_turnaround,
            "avg_slowdown": self.avg_slowdown,
            "utilization": self.utilization,
            "makespan": self.makespan,
        }


def summarize(result: SimulationResult) -> SummaryStats:
    jobs = result.jobs
    return SummaryStats(
        n_jobs=len(jobs),
        avg_wait=average_wait(jobs),
        avg_turnaround=average_turnaround(jobs),
        avg_slowdown=average_slowdown(jobs),
        utilization=utilization(jobs, result.cluster_size),
        makespan=makespan(jobs),
    )
