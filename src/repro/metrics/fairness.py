"""Fairness metrics for parallel job scheduling (Section 4).

Four metrics, in the order the paper surveys them:

* **CONS_P FST** (Srinivasan et al.): one global conservative-backfill
  schedule with perfect estimates in FCFS order; each job's start there is
  its fair-start time.
* **Sabin/Sadayappan FST**: re-run the *actual* policy from each job's
  arrival assuming no later arrivals; expensive but scheduler-faithful.
* **Resource equality** (Sabin & Sadayappan 2005): every live job
  "deserves" 1/N of the machine; unfairness is the shortfall between
  deserved and received resource integrals.
* **The hybrid "fairshare" FST — this paper's contribution** (Section
  4.1): at each arrival, freeze the scheduler state (running jobs + queued
  jobs + fairshare priorities) and build a *no-backfill list schedule* in
  fairshare order; the arriving job's start in that hypothetical schedule
  is its FST.  Implemented as a simulation observer
  (:class:`HybridFSTObserver`).

Aggregation (Figures 8/9, 14/15): a job is *unfair* if its real start
misses its FST by more than ``epsilon``; average miss time is Eq. 5
(summed over all jobs, including the fair ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..core.engine import Engine, KillPolicy, Observer
from ..core.job import Job, JobState
from ..core.listsched import FreeTimeline
from ..core.profile import ReservationProfile
from ..core.results import SimulationResult

#: seconds of slack before a missed FST counts as unfair (float noise guard)
DEFAULT_EPSILON = 1.0


# --------------------------------------------------------------------------
# pluggable "socially just" reference orders
# --------------------------------------------------------------------------
#
# The paper's conclusion invites exactly this: "the fairness metric can be
# modified in a similar way to measure fairness via other alternative
# fairness priorities."  A reference order is the priority of the
# hypothetical no-backfill schedule the hybrid FST is computed against;
# swapping it answers "fair according to whom" — seniority (FCFS), decayed
# usage (fairshare), or job size (shortest-first, the size-based school of
# Dell'Amico et al.).

@dataclass(frozen=True)
class ReferenceOrder:
    """One named reference order for the hybrid-FST hypothetical schedule.

    ``order(ctx, jobs, now)`` sorts the waiting jobs into the socially-just
    start order; ``ctx`` is the live :class:`HybridFSTObserver`, exposing
    the scheduler's fairshare ``tracker`` and the observer's
    ``duration_of`` memo (the hypothetical-schedule durations) so orders
    can rank by usage or by size without recomputing either.
    """

    name: str
    description: str
    order: Callable[["HybridFSTObserver", Sequence[Job], float], List[Job]]


def _fairshare_reference(ctx: "HybridFSTObserver", jobs, now: float):
    return ctx.tracker.order(jobs, now)


def _fcfs_reference(ctx: "HybridFSTObserver", jobs, now: float):
    return sorted(jobs, key=lambda j: (j.submit_time, j.id))


def _shortest_first_reference(ctx: "HybridFSTObserver", jobs, now: float):
    return sorted(jobs, key=lambda j: (ctx.duration_of(j), j.submit_time, j.id))


_REFERENCE_ORDERS: Dict[str, ReferenceOrder] = {}


def register_reference_order(ref: ReferenceOrder) -> ReferenceOrder:
    if ref.name in _REFERENCE_ORDERS:
        raise ValueError(f"duplicate reference order {ref.name!r}")
    _REFERENCE_ORDERS[ref.name] = ref
    return ref


def get_reference_order(name: str) -> ReferenceOrder:
    try:
        return _REFERENCE_ORDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown reference order (FST basis) {name!r}; "
            f"known: {', '.join(sorted(_REFERENCE_ORDERS))}"
        ) from None


def reference_order_names() -> Tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REFERENCE_ORDERS)


register_reference_order(ReferenceOrder(
    "fairshare",
    "decayed per-user usage, light users first (the paper's choice)",
    _fairshare_reference,
))
register_reference_order(ReferenceOrder(
    "fcfs",
    "strict seniority: arrival order decides the hypothetical schedule",
    _fcfs_reference,
))
register_reference_order(ReferenceOrder(
    "shortest-first",
    "smallest hypothetical duration first (size-based fairness)",
    _shortest_first_reference,
))


# --------------------------------------------------------------------------
# the hybrid fairshare FST (Section 4.1)
# --------------------------------------------------------------------------

class HybridFSTObserver(Observer):
    """Records the paper's hybrid fair-start time for every job.

    ``estimate_mode`` picks the runtimes of the hypothetical schedule:
    ``"perfect"`` (actual runtimes — the default, matching the CONS_P-style
    perfect-estimate reference) or ``"wcl"`` (user estimates).

    ``basis`` names the socially-just order of the hypothetical schedule —
    any registered :class:`ReferenceOrder` (``"fairshare"``, the paper's
    choice; ``"fcfs"``; ``"shortest-first"``; plus extensions registered
    via :func:`register_reference_order`).

    The observer requires a scheduler that exposes ``waiting_jobs()`` and a
    fairshare ``tracker`` (every :class:`repro.sched.BaseScheduler` does).

    Implementation: the running-occupation view is maintained incrementally
    from the ``on_start``/``on_completion`` hooks (in ``"perfect"`` mode an
    occupation's hypothetical end is fixed the moment the job starts, so
    nothing is recomputed per arrival), and the hypothetical no-backfill
    schedule is built on a compact :class:`FreeTimeline` multiset —
    O(occupations) per placement instead of O(machine size) — stopping at
    the arriving job, whose start later entries in the order cannot move.
    """

    def __init__(self, estimate_mode: str = "perfect", basis: str = "fairshare") -> None:
        if estimate_mode not in ("perfect", "wcl"):
            raise ValueError("estimate_mode must be 'perfect' or 'wcl'")
        try:
            self._reference = get_reference_order(basis)
        except KeyError as exc:
            raise ValueError(f"basis: {exc.args[0]}") from None
        self.estimate_mode = estimate_mode
        self.basis = basis
        self.fst: Dict[int, float] = {}
        self._engine: Engine | None = None
        #: running occupations, maintained across events:
        #: job id -> (nodes, fixed hypothetical end)        ("perfect")
        #: job id -> (nodes, start + wcl, tail wcl)         ("wcl")
        self._occupied: Dict[int, tuple] = {}
        #: per-job hypothetical durations (immutable for a given run —
        #: runtime/wcl and chain tails never change); queued jobs are
        #: re-placed at every arrival, so this memo is hit constantly
        self._durations: Dict[int, float] = {}

    def on_attach(self, engine: Engine) -> None:
        self._engine = engine
        self._occupied = {}
        self._durations = {}
        sched = engine.scheduler
        if not hasattr(sched, "waiting_jobs") or not hasattr(sched, "tracker"):
            raise TypeError(
                "HybridFSTObserver needs a scheduler with waiting_jobs() and "
                "a fairshare tracker"
            )

    @property
    def tracker(self):
        """The scheduler's fairshare tracker (for usage-ranked orders)."""
        return self._engine.scheduler.tracker

    def duration_of(self, job: Job) -> float:
        """Hypothetical-schedule duration: a chunk carries its whole
        remaining chain, so the fair reference treats the original trace job
        as one contiguous block regardless of runtime-limit splitting."""
        d = self._durations.get(job.id)
        if d is not None:
            return d
        if self.estimate_mode == "wcl":
            d = job.wcl + self._engine.chain_tail_wcl(job)
        else:
            rt = job.runtime
            if self._engine.kill_policy is KillPolicy.AT_WCL:
                rt = min(rt, job.wcl)
            d = max(rt + self._engine.chain_tail_runtime(job), 1e-9)
        self._durations[job.id] = d
        return d

    def on_start(self, job: Job, now: float) -> None:
        if self.estimate_mode == "wcl":
            self._occupied[job.id] = (
                job.nodes, job.start_time + job.wcl,
                self._engine.chain_tail_wcl(job),
            )
        else:
            # in perfect mode the hypothetical end never moves: the job's
            # (kill-policy-capped) runtime plus its chain tail is >= the
            # real occupation, so max(end, now) == end while it runs
            self._occupied[job.id] = (
                job.nodes, job.start_time + self.duration_of(job),
            )

    def on_completion(self, job: Job, now: float) -> None:
        self._occupied.pop(job.id, None)

    def _occupation_pairs(self, now: float):
        if self.estimate_mode == "wcl":
            for nodes, wcl_end, tail in self._occupied.values():
                end = now + tail
                if wcl_end > end:
                    end = wcl_end
                yield nodes, end
        else:
            yield from self._occupied.values()

    def on_arrival(self, job: Job, now: float) -> None:
        engine = self._engine
        sched = engine.scheduler
        # machine state: running occupations at their (mode-dependent) ends
        tl = FreeTimeline.from_pairs(
            engine.cluster.size, now, self._occupation_pairs(now)
        )
        # hypothetical: everyone queued right now runs in the socially-just
        # order, no backfilling.  Placement can stop at the arriving job —
        # later entries in the order cannot move it.
        order = self._reference.order(self, sched.waiting_jobs(), now)
        target = job.id
        for queued in order:
            start = tl.place(queued.nodes, self.duration_of(queued), earliest=now)
            if queued.id == target:
                self.fst[target] = start
                return
        raise RuntimeError(f"arriving job {job.id} missing from waiting_jobs()")

    def collect(self, result: SimulationResult) -> None:
        key = "fst_hybrid" if self.basis == "fairshare" else f"fst_hybrid_{self.basis}"
        result.series[key] = dict(self.fst)


# --------------------------------------------------------------------------
# CONS_P: conservative backfilling with perfect estimates, FCFS
# --------------------------------------------------------------------------

def consp_fst(jobs: Sequence[Job], system_size: int) -> Dict[int, float]:
    """The CONS_P fair-start times.

    With perfect estimates nothing ever finishes early, so the conservative
    schedule is exactly "insert each arrival at its earliest fit": no holes
    appear and no reservation ever moves.  One pass over arrivals suffices.
    """
    profile = ReservationProfile(system_size)
    out: Dict[int, float] = {}
    for job in sorted(jobs, key=lambda j: (j.submit_time, j.id)):
        rt = max(job.runtime, 1e-9)
        start = profile.earliest_fit(job.nodes, rt, job.submit_time)
        profile.reserve_fitted(start, start + rt, job.nodes)
        out[job.id] = start
    return out


# --------------------------------------------------------------------------
# Sabin/Sadayappan FST: actual policy, no later arrivals
# --------------------------------------------------------------------------

def sabin_fst(
    jobs: Sequence[Job],
    system_size: int,
    scheduler_factory: Callable[[], object],
    kill_policy: KillPolicy = KillPolicy.NEVER,
) -> Dict[int, float]:
    """FSTs by re-simulating the actual policy per job with later arrivals
    dropped.  O(n) full simulations — use on small workloads.
    """
    from ..core.cluster import Cluster  # local import avoids a cycle

    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.id))
    out: Dict[int, float] = {}
    for j in ordered:
        prefix = [x.fresh_copy() for x in ordered
                  if (x.submit_time, x.id) <= (j.submit_time, j.id)]
        engine = Engine(
            Cluster(system_size), scheduler_factory(), prefix,
            kill_policy=kill_policy,
        )
        result = engine.run()
        out[j.id] = result.job_by_id()[j.id].start_time
    return out


# --------------------------------------------------------------------------
# resource equality (Sabin & Sadayappan 2005 family)
# --------------------------------------------------------------------------

def resource_equality_deficits(
    jobs: Sequence[Job],
    system_size: int,
) -> Dict[int, float]:
    """Per-job shortfall between deserved and received processor-seconds.

    While N jobs are live (queued or running), each deserves a 1/N share of
    the machine — capped at its own width, since a job cannot use more
    nodes than it requested.  A job receives its node count while running
    and nothing while queued.  The deficit is
    max(0, deserved integral - received integral).
    """
    done = [j for j in jobs if j.state is JobState.COMPLETED]
    if not done:
        return {}
    events: List[tuple[float, int]] = []
    for j in done:
        events.append((j.submit_time, +1))
        events.append((j.end_time, -1))
    events.sort()
    # interval sweep: edges are event times; N is constant per interval
    edges: List[float] = [events[0][0]]
    live_counts: List[int] = []
    live = 0
    for t, d in events:
        if t > edges[-1]:
            edges.append(t)
            live_counts.append(live)
        live += d
    edges_arr = np.array(edges)
    dt = np.diff(edges_arr)
    n_live = np.array(live_counts, dtype=np.float64)
    share = np.where(n_live > 0, system_size / np.maximum(n_live, 1.0), 0.0)

    out: Dict[int, float] = {}
    for j in done:
        i0 = int(np.searchsorted(edges_arr, j.submit_time, side="left"))
        i1 = int(np.searchsorted(edges_arr, j.end_time, side="left"))
        rate = np.minimum(j.nodes, share[i0:i1])
        deserved = float((rate * dt[i0:i1]).sum())
        received = j.nodes * (j.end_time - j.start_time)
        out[j.id] = max(0.0, deserved - received)
    return out


# --------------------------------------------------------------------------
# aggregation (Figures 8/9/14/15 and Eq. 5)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FairnessStats:
    n_jobs: int
    n_unfair: int
    percent_unfair: float       # fraction in [0,1]
    average_miss_time: float    # Eq. 5: summed misses / all jobs
    average_miss_of_unfair: float  # summed misses / unfair jobs
    total_miss_time: float
    #: fraction of the *load* (nodes x runtime) on unfair jobs — the
    #: paper's alternative aggregate ("measuring the percentage of the
    #: load that misses its FST"); 0 when job areas are unavailable.
    percent_unfair_load: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_jobs": self.n_jobs,
            "n_unfair": self.n_unfair,
            "percent_unfair": self.percent_unfair,
            "average_miss_time": self.average_miss_time,
            "average_miss_of_unfair": self.average_miss_of_unfair,
            "total_miss_time": self.total_miss_time,
            "percent_unfair_load": self.percent_unfair_load,
        }


def miss_times(jobs: Sequence[Job], fst: Dict[int, float]) -> Dict[int, float]:
    """Per-job max(0, start - FST)."""
    out: Dict[int, float] = {}
    for j in jobs:
        if j.state is not JobState.COMPLETED:
            raise ValueError(f"job {j.id} not completed")
        if j.id not in fst:
            raise KeyError(f"job {j.id} has no fair-start time")
        out[j.id] = max(0.0, j.start_time - fst[j.id])
    return out


def fairness_stats(
    jobs: Sequence[Job],
    fst: Dict[int, float],
    epsilon: float = DEFAULT_EPSILON,
) -> FairnessStats:
    misses = miss_times(jobs, fst)
    n = len(misses)
    if n == 0:
        return FairnessStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = list(jobs)
    vals = np.array([misses[j.id] for j in ordered])
    areas = np.array([j.area for j in ordered])
    unfair = vals > epsilon
    n_unfair = int(unfair.sum())
    total = float(vals.sum())
    total_area = float(areas.sum())
    return FairnessStats(
        n_jobs=n,
        n_unfair=n_unfair,
        percent_unfair=n_unfair / n,
        average_miss_time=total / n,
        average_miss_of_unfair=float(vals[unfair].sum() / n_unfair) if n_unfair else 0.0,
        total_miss_time=total,
        percent_unfair_load=(
            float(areas[unfair].sum() / total_area) if total_area > 0 else 0.0
        ),
    )
