"""Per-width-category metric breakdowns (Figures 10, 12, 16, 18).

The paper's width-categorized bar charts average a per-job quantity (miss
time or turnaround time) within each of the 11 node-count buckets.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.job import Job
from ..workload.categories import N_WIDTH, WIDTH_LABELS, width_categories
from .fairness import miss_times


def _by_width(jobs: Sequence[Job], values: np.ndarray) -> np.ndarray:
    """Mean of ``values`` per width category (NaN -> 0 for empty buckets)."""
    cats = width_categories([j.nodes for j in jobs])
    sums = np.zeros(N_WIDTH)
    counts = np.zeros(N_WIDTH)
    np.add.at(sums, cats, values)
    np.add.at(counts, cats, 1.0)
    with np.errstate(invalid="ignore"):
        out = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
    return out


def average_miss_by_width(jobs: Sequence[Job], fst: Dict[int, float]) -> np.ndarray:
    """Figure 10/16 series: mean FST miss time per width bucket."""
    if not jobs:
        return np.zeros(N_WIDTH)
    misses = miss_times(jobs, fst)
    vals = np.array([misses[j.id] for j in jobs])
    return _by_width(jobs, vals)


def average_turnaround_by_width(jobs: Sequence[Job]) -> np.ndarray:
    """Figure 12/18 series: mean turnaround time per width bucket."""
    if not jobs:
        return np.zeros(N_WIDTH)
    vals = np.array([j.end_time - j.submit_time for j in jobs])
    return _by_width(jobs, vals)


def job_counts_by_width(jobs: Sequence[Job]) -> np.ndarray:
    if not jobs:
        return np.zeros(N_WIDTH, dtype=np.int64)
    cats = width_categories([j.nodes for j in jobs])
    out = np.zeros(N_WIDTH, dtype=np.int64)
    np.add.at(out, cats, 1)
    return out


def format_by_width(series: Dict[str, np.ndarray], value_fmt: str = "{:12.0f}") -> str:
    """Tabulate one or more width-indexed series side by side."""
    names = list(series)
    lines = ["width     " + "".join(n.rjust(24)[:24] for n in names)]
    for i, label in enumerate(WIDTH_LABELS):
        row = f"{label:<10}" + "".join(
            value_fmt.format(series[n][i]).rjust(24)[:24] for n in names
        )
        lines.append(row)
    return "\n".join(lines)
