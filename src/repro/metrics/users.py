"""Per-user fairness breakdowns.

The fairshare priority exists to arbitrate between *users*; the paper's
aggregates never show who actually wins.  These helpers slice the
per-job outcomes by user and by heavy/light standing so a policy's
user-level redistribution is visible: barring heavy users from the
starvation queue should show up here as heavy-user misses growing while
light-user misses shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.job import Job
from .fairness import miss_times


@dataclass(frozen=True)
class UserFairness:
    user_id: int
    n_jobs: int
    total_work: float            # proc-seconds submitted
    avg_wait: float
    avg_miss_time: float
    percent_unfair: float
    worst_miss: float


def per_user_fairness(
    jobs: Sequence[Job],
    fst: Dict[int, float],
    epsilon: float = 1.0,
) -> Dict[int, UserFairness]:
    """One fairness record per user."""
    misses = miss_times(jobs, fst)
    by_user: Dict[int, list] = {}
    for j in jobs:
        by_user.setdefault(j.user_id, []).append(j)
    out: Dict[int, UserFairness] = {}
    for user, user_jobs in by_user.items():
        vals = np.array([misses[j.id] for j in user_jobs])
        waits = np.array([j.start_time - j.submit_time for j in user_jobs])
        out[user] = UserFairness(
            user_id=user,
            n_jobs=len(user_jobs),
            total_work=float(sum(j.area for j in user_jobs)),
            avg_wait=float(waits.mean()),
            avg_miss_time=float(vals.mean()),
            percent_unfair=float((vals > epsilon).mean()),
            worst_miss=float(vals.max()),
        )
    return out


@dataclass(frozen=True)
class HeavyLightSplit:
    """Fairness of the heavy half of the workload vs the light half,
    splitting users by submitted work at the median."""

    n_heavy_users: int
    n_light_users: int
    heavy_avg_miss: float
    light_avg_miss: float
    heavy_percent_unfair: float
    light_percent_unfair: float
    heavy_avg_wait: float
    light_avg_wait: float


def heavy_light_split(
    jobs: Sequence[Job],
    fst: Dict[int, float],
    epsilon: float = 1.0,
    work_quantile: float = 0.9,
) -> HeavyLightSplit:
    """Split users at the ``work_quantile`` of per-user submitted work
    (default: the top decile of users by work are "heavy") and compare
    job-weighted fairness between the groups."""
    per_user = per_user_fairness(jobs, fst, epsilon)
    if not per_user:
        return HeavyLightSplit(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    works = np.array([u.total_work for u in per_user.values()])
    cut = float(np.quantile(works, work_quantile))
    heavy_ids = {u for u, rec in per_user.items() if rec.total_work >= cut}
    misses = miss_times(jobs, fst)

    def group(ids):
        sel = [j for j in jobs if (j.user_id in ids)]
        if not sel:
            return 0.0, 0.0, 0.0
        vals = np.array([misses[j.id] for j in sel])
        waits = np.array([j.start_time - j.submit_time for j in sel])
        return float(vals.mean()), float((vals > epsilon).mean()), float(waits.mean())

    h_miss, h_unf, h_wait = group(heavy_ids)
    light_ids = set(per_user) - heavy_ids
    l_miss, l_unf, l_wait = group(light_ids)
    return HeavyLightSplit(
        n_heavy_users=len(heavy_ids),
        n_light_users=len(light_ids),
        heavy_avg_miss=h_miss,
        light_avg_miss=l_miss,
        heavy_percent_unfair=h_unf,
        light_percent_unfair=l_unf,
        heavy_avg_wait=h_wait,
        light_avg_wait=l_wait,
    )


def render_user_fairness(
    per_user: Dict[int, UserFairness],
    top: int = 10,
    title: str = "per-user fairness (heaviest users first)",
) -> str:
    recs = sorted(per_user.values(), key=lambda r: -r.total_work)[:top]
    lines = [title,
             f"{'user':>6}{'jobs':>7}{'work(proc-h)':>14}{'avg wait':>11}"
             f"{'avg miss':>11}{'%unfair':>9}"]
    for r in recs:
        lines.append(
            f"{r.user_id:>6}{r.n_jobs:>7}{r.total_work / 3600:>14,.0f}"
            f"{r.avg_wait:>11,.0f}{r.avg_miss_time:>11,.0f}"
            f"{100 * r.percent_unfair:>8.1f}%"
        )
    return "\n".join(lines)
