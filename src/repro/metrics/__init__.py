"""User, system, and fairness metrics."""

from .categories import (
    average_miss_by_width,
    average_turnaround_by_width,
    format_by_width,
    job_counts_by_width,
)
from .fairness import (
    DEFAULT_EPSILON,
    FairnessStats,
    HybridFSTObserver,
    consp_fst,
    fairness_stats,
    miss_times,
    resource_equality_deficits,
    sabin_fst,
)
from .loc import LossOfCapacityObserver, loc_of
from .queue import QueueObserver, QueueStats, queue_series_to_arrays
from .users import (
    HeavyLightSplit,
    UserFairness,
    heavy_light_split,
    per_user_fairness,
    render_user_fairness,
)
from .standard import (
    SummaryStats,
    average_slowdown,
    average_turnaround,
    average_wait,
    makespan,
    slowdowns,
    summarize,
    turnaround_times,
    utilization,
    wait_times,
)
from .weekly import WeeklySeries, format_weekly, weekly_series

__all__ = [
    "DEFAULT_EPSILON",
    "FairnessStats",
    "HybridFSTObserver",
    "HeavyLightSplit",
    "LossOfCapacityObserver",
    "QueueObserver",
    "QueueStats",
    "SummaryStats",
    "UserFairness",
    "heavy_light_split",
    "per_user_fairness",
    "queue_series_to_arrays",
    "render_user_fairness",
    "WeeklySeries",
    "average_miss_by_width",
    "average_slowdown",
    "average_turnaround",
    "average_turnaround_by_width",
    "average_wait",
    "consp_fst",
    "fairness_stats",
    "format_by_width",
    "format_weekly",
    "job_counts_by_width",
    "loc_of",
    "makespan",
    "miss_times",
    "resource_equality_deficits",
    "sabin_fst",
    "slowdowns",
    "summarize",
    "turnaround_times",
    "utilization",
    "wait_times",
    "weekly_series",
]
