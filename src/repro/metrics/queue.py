"""Queue-depth / backlog observer.

The paper's Section 2.2 narrative ("extremely high queue lengths and wait
times" during overload weeks) is about queue dynamics no per-job metric
shows.  This observer integrates queue length and queued node-demand over
time and can replay the full step series for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.engine import Engine, Observer
from ..core.job import Job
from ..core.results import SimulationResult


@dataclass(frozen=True)
class QueueStats:
    time_avg_queue_length: float
    time_avg_queued_nodes: float
    max_queue_length: int
    max_queued_nodes: int
    #: longest continuous stretch with a non-empty queue, seconds
    longest_busy_queue_spell: float


class QueueObserver(Observer):
    """Tracks the waiting-job population between events."""

    def __init__(self, record_series: bool = False) -> None:
        self.record_series = record_series
        self._len = 0
        self._nodes = 0
        self._last = 0.0
        self._len_integral = 0.0
        self._nodes_integral = 0.0
        self._max_len = 0
        self._max_nodes = 0
        self._span_start: float | None = None
        self._spell_start: float | None = None
        self._longest_spell = 0.0
        self._end = 0.0
        #: optional (time, queue_length, queued_nodes) step series
        self.series: List[Tuple[float, int, int]] = []

    def on_attach(self, engine: Engine) -> None:
        self._last = engine.now

    def _advance(self, now: float) -> None:
        dt = now - self._last
        if dt < 0:
            raise RuntimeError("time went backwards in QueueObserver")
        if dt > 0:
            self._len_integral += self._len * dt
            self._nodes_integral += self._nodes * dt
            self._last = now

    def _mark(self, now: float) -> None:
        if self._span_start is None:
            self._span_start = now
        self._end = now
        self._max_len = max(self._max_len, self._len)
        self._max_nodes = max(self._max_nodes, self._nodes)
        if self._len > 0 and self._spell_start is None:
            self._spell_start = now
        elif self._len == 0 and self._spell_start is not None:
            self._longest_spell = max(self._longest_spell, now - self._spell_start)
            self._spell_start = None
        if self.record_series:
            self.series.append((now, self._len, self._nodes))

    def on_arrival(self, job: Job, now: float) -> None:
        self._advance(now)
        self._len += 1
        self._nodes += job.nodes
        self._mark(now)

    def on_start(self, job: Job, now: float) -> None:
        self._advance(now)
        self._len -= 1
        self._nodes -= job.nodes
        if self._len < 0 or self._nodes < 0:
            raise RuntimeError("queue accounting went negative")
        self._mark(now)

    def on_end(self, now: float) -> None:
        self._advance(now)
        self._end = max(self._end, now)
        if self._spell_start is not None:
            self._longest_spell = max(self._longest_spell, now - self._spell_start)
            self._spell_start = None

    def stats(self) -> QueueStats:
        span = self._end - (self._span_start or 0.0)
        if span <= 0:
            return QueueStats(0.0, 0.0, self._max_len, self._max_nodes, 0.0)
        return QueueStats(
            time_avg_queue_length=self._len_integral / span,
            time_avg_queued_nodes=self._nodes_integral / span,
            max_queue_length=self._max_len,
            max_queued_nodes=self._max_nodes,
            longest_busy_queue_spell=self._longest_spell,
        )

    def collect(self, result: SimulationResult) -> None:
        st = self.stats()
        result.series["queue_stats"] = {
            0: st.time_avg_queue_length,
            1: st.time_avg_queued_nodes,
            2: float(st.max_queue_length),
            3: float(st.max_queued_nodes),
            4: st.longest_busy_queue_spell,
        }


def queue_series_to_arrays(series: List[Tuple[float, int, int]]):
    """Convert a recorded step series to (times, lengths, nodes) arrays."""
    if not series:
        return np.array([]), np.array([]), np.array([])
    arr = np.array(series, dtype=np.float64)
    return arr[:, 0], arr[:, 1].astype(np.int64), arr[:, 2].astype(np.int64)
