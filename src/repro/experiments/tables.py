"""Tables 1 and 2: the width x length workload characterization.

Each generator returns the matrix for a given workload plus a rendering in
the paper's layout, and a comparison against the published CPlant numbers
(meaningful at scale=1; at reduced scale the comparison is per-cell
proportional).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload import cplant
from ..workload.categories import format_category_table
from ..workload.model import Workload


@dataclass(frozen=True)
class TableComparison:
    measured: np.ndarray
    reference: np.ndarray
    #: reference scaled to the measured total (for scale<1 runs)
    scaled_reference: np.ndarray
    #: relative error on totals
    total_rel_error: float
    #: cellwise |measured - scaled_reference| summed, over reference total
    l1_rel_error: float


def _compare(measured: np.ndarray, reference: np.ndarray) -> TableComparison:
    ref_total = reference.sum()
    meas_total = measured.sum()
    scale = meas_total / ref_total if ref_total else 0.0
    scaled = reference * scale
    return TableComparison(
        measured=measured,
        reference=reference,
        scaled_reference=scaled,
        total_rel_error=abs(meas_total - ref_total) / ref_total if ref_total else 0.0,
        l1_rel_error=float(np.abs(measured - scaled).sum() / max(scaled.sum(), 1e-12)),
    )


def table1_job_counts(workload: Workload) -> TableComparison:
    """Table 1: number of jobs in each length/width category."""
    return _compare(workload.count_table(), cplant.TABLE1_COUNTS.astype(float))


def table2_proc_hours(workload: Workload) -> TableComparison:
    """Table 2: processor-hours in each length/width category."""
    return _compare(workload.proc_hours_table(), cplant.TABLE2_PROC_HOURS)


def render_table1(cmp: TableComparison) -> str:
    out = [
        format_category_table(cmp.measured, "Table 1 (measured): job counts"),
        "",
        format_category_table(
            cmp.scaled_reference,
            "Table 1 (paper, scaled to measured total): job counts",
        ),
        "",
        f"total jobs measured: {cmp.measured.sum():.0f}   "
        f"paper: {cmp.reference.sum():.0f}   "
        f"cellwise L1 error vs scaled paper: {100 * cmp.l1_rel_error:.1f}%",
    ]
    return "\n".join(out)


def render_table2(cmp: TableComparison) -> str:
    out = [
        format_category_table(cmp.measured, "Table 2 (measured): proc-hours"),
        "",
        format_category_table(
            cmp.scaled_reference,
            "Table 2 (paper, scaled to measured total): proc-hours",
        ),
        "",
        f"total proc-hours measured: {cmp.measured.sum():.0f}   "
        f"paper: {cmp.reference.sum():.0f}   "
        f"cellwise L1 error vs scaled paper: {100 * cmp.l1_rel_error:.1f}%",
    ]
    return "\n".join(out)
