"""The policy x reference-order fairness matrix.

The paper evaluates its nine policies against one definition of "fair"
(the fairshare reference order).  This module crosses a policy frontier
— the paper baseline, the classic FCFS/EASY reference points, and the
size-based extension policies — with every registered hybrid-FST
reference order, answering *which policy is fair under whose definition
of fair*.

One simulation per (scenario, policy) cell suffices: reference orders
are observers, not schedulers, so every order's FST series is recorded
from the same run (see ``RunOptions.reference_orders``).  Cells flow
through the campaign executor and its content-addressed cache, and the
rendered table is deterministic byte-for-byte, which the CI
``matrix-smoke`` job asserts by building it twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..campaign.cache import CampaignCache
from ..campaign.executor import CellResult, ProgressFn, run_cells
from ..campaign.spec import CampaignCell, WorkloadSpec
from ..metrics.fairness import get_reference_order
from ..sched.registry import MATRIX_POLICIES, get_policy
from .runner import RunOptions

#: the reference orders of the default matrix (all built-ins, in the
#: order the columns render)
MATRIX_REFERENCE_ORDERS: Tuple[str, ...] = (
    "fairshare", "fcfs", "shortest-first",
)

#: the default scenario: the paper's baseline trace recipe
MATRIX_SCENARIOS: Tuple[str, ...] = ("cplant-baseline",)


@dataclass(frozen=True)
class MatrixConfig:
    """One fairness-matrix sweep, fully determined."""

    policies: Tuple[str, ...] = MATRIX_POLICIES
    reference_orders: Tuple[str, ...] = MATRIX_REFERENCE_ORDERS
    scenarios: Tuple[str, ...] = MATRIX_SCENARIOS
    scale: float = 0.05
    seed: int = 7

    def __post_init__(self) -> None:
        object.__setattr__(self, "policies", tuple(self.policies))
        object.__setattr__(
            self, "reference_orders", tuple(self.reference_orders)
        )
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.policies:
            raise ValueError("matrix needs at least one policy")
        if not self.reference_orders:
            raise ValueError("matrix needs at least one reference order")
        if not self.scenarios:
            raise ValueError("matrix needs at least one scenario")
        for key in self.policies:
            get_policy(key)
        for name in self.reference_orders:
            get_reference_order(name)

    def options(self) -> RunOptions:
        # the shared parser pins "fairshare" (always evaluated — it is the
        # primary fairness block) first for a canonical cell identity
        return RunOptions.from_mapping(
            {"reference_orders": self.reference_orders}
        )

    def cells(self) -> List[CampaignCell]:
        """The sweep grid, in deterministic (scenario, policy) order."""
        options = self.options()
        out: List[CampaignCell] = []
        for scenario in self.scenarios:
            wspec = WorkloadSpec(
                kind="scenario",
                scenario=scenario,
                params=(("scale", self.scale),),
                seed=self.seed,
            )
            wspec.validate()
            for policy in self.policies:
                out.append(CampaignCell(
                    workload=wspec, seed=self.seed, policy=policy,
                    options=options,
                ))
        return out


@dataclass
class MatrixResult:
    """Executed matrix cells plus the config that shaped them."""

    config: MatrixConfig
    results: List[CellResult] = field(default_factory=list)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_simulated(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    def table(self) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
        """scenario -> policy -> reference order -> fairness block."""
        out: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
        for res in self.results:
            scenario = str(res.cell.workload.scenario)
            rows = res.metrics.get("fairness_by_order") or {}
            out.setdefault(scenario, {})[res.cell.policy] = {
                o: dict(rows[o]) for o in self.config.reference_orders
            }
        return out

    def doc(self) -> Dict[str, object]:
        """JSON-safe document (deterministic with sorted serialization)."""
        return {
            "config": {
                "policies": list(self.config.policies),
                "reference_orders": list(self.config.reference_orders),
                "scenarios": list(self.config.scenarios),
                "scale": self.config.scale,
                "seed": self.config.seed,
            },
            "matrix": self.table(),
        }

    def render(self) -> str:
        return render_matrix(
            self.table(),
            self.config.reference_orders,
            policies=self.config.policies,
            scenarios=self.config.scenarios,
        )


def run_matrix(
    config: Optional[MatrixConfig] = None,
    jobs: int = 1,
    cache: Optional[CampaignCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
) -> MatrixResult:
    """Execute a fairness-matrix sweep through the campaign executor."""
    cfg = config or MatrixConfig()
    results = run_cells(
        cfg.cells(), jobs=jobs, cache=cache, force=force, progress=progress
    )
    return MatrixResult(config=cfg, results=results)


# --------------------------------------------------------------------------
# rendering (shared by the CLI and the registered artifact)
# --------------------------------------------------------------------------

def _fairness_block(stats: object) -> Dict[str, float]:
    """Normalize a fairness block: FairnessStats or its as_dict() form."""
    as_dict = getattr(stats, "as_dict", None)
    return dict(as_dict()) if callable(as_dict) else dict(stats)


def matrix_from_suite(
    suite: Mapping[str, object],
    reference_orders: Sequence[str],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """policy -> order -> fairness block, from run-like suite objects
    (``PolicyRun`` or ``RecordRun``) that carry ``fairness_by_order``."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for policy, run in suite.items():
        rows = run.fairness_by_order
        if not rows:
            raise ValueError(
                f"run for {policy!r} has no fairness_by_order block; "
                f"simulate with RunOptions(reference_orders=...)"
            )
        out[policy] = {
            o: _fairness_block(rows[o]) for o in reference_orders
        }
    return out


def _cell_text(block: Mapping[str, float]) -> str:
    pct = 100.0 * float(block["percent_unfair"])
    hours = float(block["average_miss_time"]) / 3600.0
    return f"{pct:5.1f}% {hours:8.2f}h"


def render_matrix_rows(
    rows: Mapping[str, Mapping[str, Mapping[str, float]]],
    reference_orders: Sequence[str],
    policies: Optional[Sequence[str]] = None,
) -> List[str]:
    """The policy-rows block of one matrix table (no scenario header)."""
    keys = list(policies) if policies is not None else sorted(rows)
    width = max(len("policy"), *(len(k) for k in keys))
    col = max(len(_cell_text({"percent_unfair": 0, "average_miss_time": 0})),
              *(len(o) for o in reference_orders))
    head = " | ".join(
        [f"{'policy':<{width}}"] + [f"{o:>{col}}" for o in reference_orders]
    )
    rule = "-+-".join(["-" * width] + ["-" * col] * len(reference_orders))
    out = [head, rule]
    for key in keys:
        cells = [
            f"{_cell_text(rows[key][o]):>{col}}" for o in reference_orders
        ]
        out.append(" | ".join([f"{key:<{width}}"] + cells))
    return out


def render_matrix(
    table: Mapping[str, Mapping[str, Mapping[str, Mapping[str, float]]]],
    reference_orders: Sequence[str],
    policies: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> str:
    """The full fairness matrix as deterministic text."""
    names = list(scenarios) if scenarios is not None else sorted(table)
    out = [
        "policy x reference-order fairness matrix",
        "(cell: % of jobs missing their FST | average miss time, hours)",
    ]
    for scenario in names:
        out.append("")
        out.append(f"scenario: {scenario}")
        out.extend(
            render_matrix_rows(table[scenario], reference_orders, policies)
        )
    return "\n".join(out)
