"""Plain-text rendering of the paper's bar charts and scatter plots.

Figures become labeled value tables with ASCII bars (benchmarks print
these), and scatter figures become log-binned 2D density tables — enough
to eyeball the shapes against the paper without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np


def bar_chart(
    title: str,
    values: Mapping[str, float],
    unit: str = "",
    percent: bool = False,
    width: int = 44,
) -> str:
    """Render a policy->value mapping as labeled ASCII bars."""
    if not values:
        return f"{title}\n  (no data)"
    vmax = max(values.values()) or 1.0
    lines = [title]
    for name, v in values.items():
        n = int(round(width * v / vmax)) if vmax > 0 else 0
        shown = f"{100 * v:.2f}%" if percent else f"{v:,.0f}{unit}"
        lines.append(f"  {name:<22} {shown:>12} |{'#' * n}")
    return "\n".join(lines)


def series_table(
    title: str,
    row_labels: Sequence[str],
    columns: Mapping[str, np.ndarray],
    fmt: str = "{:>14.0f}",
) -> str:
    """Rows = categories (e.g. widths), columns = policies."""
    names = list(columns)
    head = " " * 12 + "".join(n.rjust(20)[:20] for n in names)
    lines = [title, head]
    for i, label in enumerate(row_labels):
        row = f"{label:<12}" + "".join(
            fmt.format(columns[n][i]).rjust(20)[:20] for n in names
        )
        lines.append(row)
    return "\n".join(lines)


def log_density(
    title: str,
    x: np.ndarray,
    y: np.ndarray,
    x_label: str,
    y_label: str,
    bins: int = 8,
) -> str:
    """A coarse log-log 2D histogram as text (scatter-figure stand-in)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    ok = (x > 0) & (y > 0)
    x, y = x[ok], y[ok]
    if len(x) == 0:
        return f"{title}\n  (no positive data)"
    lx, ly = np.log10(x), np.log10(y)
    xe = np.linspace(lx.min(), lx.max() + 1e-9, bins + 1)
    ye = np.linspace(ly.min(), ly.max() + 1e-9, bins + 1)
    h, _, _ = np.histogram2d(lx, ly, bins=[xe, ye])
    lines = [title, f"rows: {y_label} (log10 desc), cols: {x_label} (log10 asc)"]
    header = " " * 10 + "".join(f"{v:>8.1f}" for v in (xe[:-1] + xe[1:]) / 2)
    lines.append(header)
    for j in reversed(range(bins)):
        mid = (ye[j] + ye[j + 1]) / 2
        row = f"{mid:>8.1f}  " + "".join(
            f"{int(h[i, j]):>8d}" if h[i, j] else "       ." for i in range(bins)
        )
        lines.append(row)
    return "\n".join(lines)


def binned_medians(
    x: np.ndarray, y: np.ndarray, bins: int = 10
) -> Dict[str, np.ndarray]:
    """Median of y per log-bin of x (for the Figure 6/7 trend check)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    ok = (x > 0) & np.isfinite(y)
    x, y = x[ok], y[ok]
    if len(x) == 0:
        return {"bin_center": np.array([]), "median": np.array([]), "count": np.array([])}
    lx = np.log10(x)
    edges = np.linspace(lx.min(), lx.max() + 1e-9, bins + 1)
    idx = np.clip(np.digitize(lx, edges) - 1, 0, bins - 1)
    centers = 10 ** ((edges[:-1] + edges[1:]) / 2)
    med = np.full(bins, np.nan)
    cnt = np.zeros(bins, dtype=int)
    for b in range(bins):
        sel = idx == b
        cnt[b] = sel.sum()
        if cnt[b]:
            med[b] = np.median(y[sel])
    return {"bin_center": centers, "median": med, "count": cnt}
