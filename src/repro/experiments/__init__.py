"""Experiment harness: policy runs, figure/table data generators, reports."""

from .config import BenchConfig, bench_workload
from .runner import (
    PolicyRun,
    RunOptions,
    cached_suite,
    clear_suite_cache,
    run_policy,
    run_policy_with_options,
    run_scenario,
    run_suite,
)
from .tables import (
    TableComparison,
    render_table1,
    render_table2,
    table1_job_counts,
    table2_proc_hours,
)

__all__ = [
    "BenchConfig",
    "PolicyRun",
    "RunOptions",
    "TableComparison",
    "bench_workload",
    "cached_suite",
    "clear_suite_cache",
    "render_table1",
    "render_table2",
    "run_policy",
    "run_policy_with_options",
    "run_scenario",
    "run_suite",
    "table1_job_counts",
    "table2_proc_hours",
]
