"""Data generators for every figure in the paper (Figures 3-19).

Workload-characterization figures (3-7) consume a workload (Figure 3 also
needs a baseline simulation).  Policy figures (8-19) consume a policy
suite from :func:`repro.experiments.runner.run_suite` so the expensive
simulations are shared across figures.

Each ``figNN_*`` function returns plain data (dicts / arrays); each
``render_figNN`` turns that into the text the benchmarks print.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from ..metrics.weekly import WeeklySeries, format_weekly, weekly_series
from ..sched.registry import CONSERVATIVE_POLICIES, MINOR_POLICIES, PAPER_POLICIES
from ..workload.categories import WIDTH_LABELS
from ..workload.model import Workload
from .report import bar_chart, binned_medians, log_density, series_table
from .runner import PolicyRun

Suite = Mapping[str, PolicyRun]


def _subset(suite: Suite, keys: Sequence[str]) -> Dict[str, PolicyRun]:
    missing = [k for k in keys if k not in suite]
    if missing:
        raise KeyError(f"suite is missing policies: {missing}")
    return {k: suite[k] for k in keys}


# -- Figure 3: weekly offered load vs utilization --------------------------------

def fig03_weekly_load(baseline: PolicyRun, workload: Workload) -> WeeklySeries:
    return weekly_series(baseline.result.jobs, workload.system_size)


def render_fig03(series: WeeklySeries) -> str:
    head = (
        "Figure 3: offered load and actual utilization by week "
        f"(peak offered {100 * series.offered_load.max():.0f}%, "
        f"mean utilization {100 * series.utilization.mean():.0f}%)"
    )
    return head + "\n" + format_weekly(series)


# -- Figures 4-7: workload scatter characterization --------------------------------

def fig04_runtime_vs_nodes(workload: Workload) -> Dict[str, np.ndarray]:
    return {"runtime": workload.runtimes(), "nodes": workload.nodes().astype(float)}


def render_fig04(data: Dict[str, np.ndarray]) -> str:
    return log_density(
        "Figure 4: runtime vs nodes (job count per log-log cell)",
        data["runtime"], data["nodes"], "runtime (s)", "nodes",
    )


def fig05_estimates(workload: Workload) -> Dict[str, np.ndarray]:
    return {"runtime": workload.runtimes(), "wcl": workload.wcls()}


def render_fig05(data: Dict[str, np.ndarray]) -> str:
    over = float((data["wcl"] >= data["runtime"]).mean())
    txt = log_density(
        "Figure 5: user estimate (WCL) vs runtime",
        data["runtime"], data["wcl"], "runtime (s)", "WCL (s)",
    )
    return txt + f"\njobs with WCL >= runtime: {100 * over:.1f}%"


def fig06_overestimation_vs_runtime(workload: Workload) -> Dict[str, np.ndarray]:
    rt = workload.runtimes()
    factor = np.where(rt > 0, workload.wcls() / np.maximum(rt, 1e-9), np.inf)
    return {"factor": factor, "runtime": rt}


def render_fig06(data: Dict[str, np.ndarray]) -> str:
    txt = log_density(
        "Figure 6: overestimation factor vs runtime",
        data["factor"], data["runtime"], "factor", "runtime (s)",
    )
    trend = binned_medians(data["runtime"], data["factor"])
    rows = "\n".join(
        f"  runtime~{c:>12.0f}s  median factor {m:>10.1f}  (n={n})"
        for c, m, n in zip(trend["bin_center"], trend["median"], trend["count"])
        if n > 0
    )
    return txt + "\nmedian factor by runtime (should fall with runtime):\n" + rows


def fig07_overestimation_vs_nodes(workload: Workload) -> Dict[str, np.ndarray]:
    rt = workload.runtimes()
    factor = np.where(rt > 0, workload.wcls() / np.maximum(rt, 1e-9), np.inf)
    return {"factor": factor, "nodes": workload.nodes().astype(float)}


def render_fig07(data: Dict[str, np.ndarray]) -> str:
    txt = log_density(
        "Figure 7: overestimation factor vs nodes",
        data["factor"], data["nodes"], "factor", "nodes",
    )
    trend = binned_medians(data["nodes"], data["factor"])
    rows = "\n".join(
        f"  nodes~{c:>8.0f}  median factor {m:>10.1f}  (n={n})"
        for c, m, n in zip(trend["bin_center"], trend["median"], trend["count"])
        if n > 0
    )
    return txt + "\nmedian factor by nodes (should be roughly flat):\n" + rows


# -- Figures 8-13: the "minor changes" policy set -----------------------------------

def fig08_percent_unfair_minor(suite: Suite) -> Dict[str, float]:
    return {k: r.percent_unfair for k, r in _subset(suite, MINOR_POLICIES).items()}


def render_fig08(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 8: percent of jobs missing their fair start time (minor changes)",
        data, percent=True,
    )


def fig09_miss_time_minor(suite: Suite) -> Dict[str, float]:
    return {k: r.average_miss_time for k, r in _subset(suite, MINOR_POLICIES).items()}


def render_fig09(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 9: average fair-start miss time, seconds (minor changes)",
        data, unit="s",
    )


def fig10_miss_by_width_minor(suite: Suite) -> Dict[str, np.ndarray]:
    return {k: r.miss_by_width for k, r in _subset(suite, MINOR_POLICIES).items()}


def render_fig10(data: Dict[str, np.ndarray]) -> str:
    return series_table(
        "Figure 10: average miss time by job width (minor changes)",
        WIDTH_LABELS, data,
    )


def fig11_turnaround_minor(suite: Suite) -> Dict[str, float]:
    return {
        k: r.average_turnaround for k, r in _subset(suite, MINOR_POLICIES).items()
    }


def render_fig11(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 11: average turnaround time, seconds (minor changes)",
        data, unit="s",
    )


def fig12_turnaround_by_width_minor(suite: Suite) -> Dict[str, np.ndarray]:
    return {
        k: r.turnaround_by_width for k, r in _subset(suite, MINOR_POLICIES).items()
    }


def render_fig12(data: Dict[str, np.ndarray]) -> str:
    return series_table(
        "Figure 12: average turnaround time by job width (minor changes)",
        WIDTH_LABELS, data,
    )


def fig13_loc_minor(suite: Suite) -> Dict[str, float]:
    return {
        k: r.loss_of_capacity for k, r in _subset(suite, MINOR_POLICIES).items()
    }


def render_fig13(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 13: loss of capacity (minor changes)", data, percent=True,
    )


# -- Figures 14-19: all nine policies ---------------------------------------------------

def fig14_percent_unfair_all(suite: Suite) -> Dict[str, float]:
    return {k: r.percent_unfair for k, r in _subset(suite, PAPER_POLICIES).items()}


def render_fig14(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 14: percent of jobs missing their fair start time (all policies)",
        data, percent=True,
    )


def fig15_miss_time_all(suite: Suite) -> Dict[str, float]:
    return {k: r.average_miss_time for k, r in _subset(suite, PAPER_POLICIES).items()}


def render_fig15(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 15: average fair-start miss time, seconds (all policies)",
        data, unit="s",
    )


def fig16_miss_by_width_cons(suite: Suite) -> Dict[str, np.ndarray]:
    return {
        k: r.miss_by_width for k, r in _subset(suite, CONSERVATIVE_POLICIES).items()
    }


def render_fig16(data: Dict[str, np.ndarray]) -> str:
    return series_table(
        "Figure 16: average miss time by job width (conservative set)",
        WIDTH_LABELS, data,
    )


def fig17_turnaround_all(suite: Suite) -> Dict[str, float]:
    return {
        k: r.average_turnaround for k, r in _subset(suite, PAPER_POLICIES).items()
    }


def render_fig17(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 17: average turnaround time, seconds (all policies)",
        data, unit="s",
    )


def fig18_turnaround_by_width_cons(suite: Suite) -> Dict[str, np.ndarray]:
    return {
        k: r.turnaround_by_width
        for k, r in _subset(suite, CONSERVATIVE_POLICIES).items()
    }


def render_fig18(data: Dict[str, np.ndarray]) -> str:
    return series_table(
        "Figure 18: average turnaround time by job width (conservative set)",
        WIDTH_LABELS, data,
    )


def fig19_loc_all(suite: Suite) -> Dict[str, float]:
    return {
        k: r.loss_of_capacity for k, r in _subset(suite, PAPER_POLICIES).items()
    }


def render_fig19(data: Dict[str, float]) -> str:
    return bar_chart(
        "Figure 19: loss of capacity (all policies)", data, percent=True,
    )
