"""Run (workload x policy) simulations and bundle every metric the paper
reports.

One :class:`PolicyRun` carries everything Figures 8-19 need for one bar /
series, so a full policy suite is simulated once and each figure is a cheap
projection.  Suites are memoized per (workload identity, policy set,
options) because a dozen benchmarks share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.cluster import Cluster
from ..core.engine import Engine, KillPolicy
from ..core.results import SimulationResult
from ..metrics.categories import average_miss_by_width, average_turnaround_by_width
from ..metrics.fairness import (
    FairnessStats,
    HybridFSTObserver,
    fairness_stats,
)
from ..metrics.loc import LossOfCapacityObserver, loc_of
from ..metrics.standard import (
    SummaryStats,
    average_slowdown,
    average_turnaround,
    average_wait,
    makespan,
    utilization,
)
from ..metrics.weekly import WeeklySeries, weekly_series
from ..sched.registry import get_policy
from ..workload.model import Workload
from ..workload.transforms import parent_view, split_by_runtime_limit


@dataclass
class PolicyRun:
    """One policy's simulation outcome plus the paper's derived metrics.

    ``metric_jobs`` is the per-trace-job view (chunk chains collapsed back
    to their original job), so user metrics are comparable across policies
    with and without runtime limits; ``result.jobs`` keeps the raw
    scheduler-visible jobs.
    """

    policy: str
    result: SimulationResult
    summary: SummaryStats
    fairness: FairnessStats
    loss_of_capacity: float
    miss_by_width: np.ndarray
    turnaround_by_width: np.ndarray
    metric_jobs: Optional[List] = None
    fst: Optional[Dict[int, float]] = None
    #: fairness recomputed against each requested reference order (the
    #: policy x reference-order matrix); populated only when a run asks
    #: for orders beyond the default fairshare basis
    fairness_by_order: Optional[Dict[str, FairnessStats]] = None

    @property
    def percent_unfair(self) -> float:
        return self.fairness.percent_unfair

    @property
    def average_miss_time(self) -> float:
        return self.fairness.average_miss_time

    @property
    def average_turnaround(self) -> float:
        return self.summary.avg_turnaround

    @property
    def weekly(self) -> WeeklySeries:
        """The Figure 3 weekly offered-load/utilization series, computed
        over the raw schedule (chunks count when and where they ran)."""
        return weekly_series(self.result.jobs, self.result.cluster_size)


@dataclass(frozen=True)
class RunOptions:
    """Engine options for one policy run, in canonical (hashable, picklable)
    form.

    Both execution paths share it: the serial :func:`run_policy` signature
    maps onto it 1:1, and the campaign subsystem embeds it in grid cells so
    a cell fully determines its simulation (the cache key hashes
    :meth:`identity`).  ``scheduler_overrides`` is a sorted tuple of pairs
    and ``kill_policy`` a :class:`KillPolicy` so equal options always
    compare (and hash) equal.
    """

    estimate_mode: str = "perfect"
    epsilon: float = 1.0
    kill_policy: KillPolicy = KillPolicy.IF_NEEDED
    scheduler_overrides: Tuple[Tuple[str, object], ...] = ()
    validate: bool = False
    #: hybrid-FST reference orders to evaluate; the first-position
    #: fairshare default is the paper's configuration and is deliberately
    #: *omitted* from :meth:`identity` so pre-existing cache keys (and the
    #: digest oracle) are untouched by the matrix extension
    reference_orders: Tuple[str, ...] = ("fairshare",)

    def __post_init__(self) -> None:
        if isinstance(self.kill_policy, str):
            object.__setattr__(
                self, "kill_policy", KillPolicy[self.kill_policy.upper()]
            )
        object.__setattr__(
            self,
            "scheduler_overrides",
            tuple(sorted(dict(self.scheduler_overrides).items())),
        )
        orders = self.reference_orders
        if isinstance(orders, str):
            orders = (orders,)
        object.__setattr__(self, "reference_orders", tuple(orders))

    #: mapping keys :meth:`from_mapping` understands ("overrides" is the
    #: accepted shorthand for "scheduler_overrides")
    MAPPING_KEYS = frozenset({
        "estimate_mode", "epsilon", "kill_policy", "scheduler_overrides",
        "overrides", "validate", "reference_orders",
    })

    @classmethod
    def from_mapping(
        cls,
        mapping: Optional[Mapping[str, object]] = None,
        **extra: object,
    ) -> "RunOptions":
        """Parse loosely-typed option data (JSON specs, CLI flags, request
        payloads) into canonical options, failing with a ``ValueError``
        that names the offending key.

        This is the single option-parsing path: the campaign spec, the
        fairness matrix, the artifact pipeline, and the service protocol
        all feed their mappings through here, so every surface rejects the
        same inputs with the same messages.  ``extra`` keyword pairs merge
        over ``mapping`` (caller overrides).
        """
        data: Dict[str, object] = {**dict(mapping or {}), **extra}
        unknown = sorted(set(data) - cls.MAPPING_KEYS)
        if unknown:
            raise ValueError(
                f"unknown run-option keys {unknown}; "
                f"known: {sorted(cls.MAPPING_KEYS)}"
            )

        estimate_mode = data.get("estimate_mode", "perfect")
        if estimate_mode not in ("perfect", "wcl"):
            raise ValueError(
                f"unknown estimate_mode {estimate_mode!r}; "
                f"known: 'perfect', 'wcl'"
            )

        raw_eps = data.get("epsilon", 1.0)
        try:
            epsilon = float(raw_eps)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(
                f"epsilon must be a number, got {raw_eps!r}"
            ) from None

        kp = data.get("kill_policy", KillPolicy.IF_NEEDED)
        if isinstance(kp, str):
            try:
                kp = KillPolicy[kp.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown kill_policy {kp!r}; "
                    f"known: {', '.join(k.name for k in KillPolicy)}"
                ) from None
        elif not isinstance(kp, KillPolicy):
            raise ValueError(
                f"kill_policy must be a KillPolicy name, got {kp!r}"
            )

        if "overrides" in data and "scheduler_overrides" in data:
            raise ValueError(
                "give either 'scheduler_overrides' or its shorthand "
                "'overrides', not both"
            )
        raw_ov = data.get("scheduler_overrides", data.get("overrides", ()))
        try:
            overrides = dict(raw_ov)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(
                f"scheduler_overrides must be a mapping, got {raw_ov!r}"
            ) from None
        bad_keys = sorted(k for k in overrides if not isinstance(k, str))
        if bad_keys:
            raise ValueError(
                f"scheduler_overrides keys must be strings, got {bad_keys}"
            )

        validate = data.get("validate", False)
        if not isinstance(validate, bool):
            raise ValueError(f"validate must be a bool, got {validate!r}")

        raw_orders = data.get("reference_orders", ("fairshare",))
        if isinstance(raw_orders, str):
            raw_orders = (raw_orders,)
        try:
            orders = [str(o) for o in raw_orders]  # type: ignore[union-attr]
        except TypeError:
            raise ValueError(
                f"reference_orders must be a list of names, got {raw_orders!r}"
            ) from None
        from ..metrics.fairness import reference_order_names
        known = set(reference_order_names())
        bad_orders = sorted(set(orders) - known)
        if bad_orders:
            raise ValueError(
                f"unknown reference_orders {bad_orders}; "
                f"known: {sorted(known)}"
            )
        # fairshare (the paper's basis, always evaluated) pins first for a
        # canonical identity; the rest keep caller order, deduplicated
        canon = ("fairshare",) + tuple(
            dict.fromkeys(o for o in orders if o != "fairshare")
        )

        return cls(
            estimate_mode=str(estimate_mode),
            epsilon=epsilon,
            kill_policy=kp,
            scheduler_overrides=tuple(overrides.items()),
            validate=validate,
            reference_orders=canon,
        )

    def identity(self) -> Dict[str, object]:
        """JSON-safe canonical form (stable across processes and runs)."""
        out: Dict[str, object] = {
            "estimate_mode": self.estimate_mode,
            "epsilon": self.epsilon,
            "kill_policy": self.kill_policy.name,
            "scheduler_overrides": dict(self.scheduler_overrides),
            "validate": self.validate,
        }
        if self.reference_orders != ("fairshare",):
            out["reference_orders"] = list(self.reference_orders)
        return out

    def as_run_kwargs(self) -> Dict[str, object]:
        """This option set as :func:`run_policy` keyword arguments.

        Values stay hashable (overrides as the canonical tuple of pairs,
        which ``run_policy`` accepts) so the result can also key memo
        caches like :func:`cached_suite`.
        """
        return {
            "estimate_mode": self.estimate_mode,
            "epsilon": self.epsilon,
            "kill_policy": self.kill_policy,
            "scheduler_overrides": self.scheduler_overrides or None,
            "validate": self.validate,
            "reference_orders": self.reference_orders,
        }


def run_policy_with_options(
    workload: Workload,
    policy_key: str,
    options: RunOptions,
) -> PolicyRun:
    """:func:`run_policy` driven by a canonical :class:`RunOptions`."""
    return run_policy(workload, policy_key, **options.as_run_kwargs())


def _collapse_chunk_fst(
    result_jobs, fst: Dict[int, float], split: bool
) -> Dict[int, float]:
    """FSTs per *trace* job: a chunk chain inherits its first chunk's FST."""
    if not split:
        return fst
    out: Dict[int, float] = {}
    for j in result_jobs:
        if not j.is_chunk:
            out[j.id] = fst[j.id]
        elif j.chunk_index == 0:
            out[j.parent_id] = fst[j.id]
    return out


def run_policy(
    workload: Workload,
    policy_key: str,
    estimate_mode: str = "perfect",
    epsilon: float = 1.0,
    kill_policy: KillPolicy = KillPolicy.IF_NEEDED,
    scheduler_overrides: Optional[Mapping[str, object]] = None,
    validate: bool = False,
    observers: Optional[Sequence] = None,
    reference_orders: Optional[Sequence[str]] = None,
) -> PolicyRun:
    """Simulate one named policy on a workload and derive all metrics.

    ``observers`` appends extra engine observers (e.g. a
    :class:`~repro.obs.trace.TraceObserver`) after the metric observers;
    observation must never change the result (the digest tests hold
    tracing to that).

    ``reference_orders`` evaluates the hybrid FST against additional
    "socially just" orders in the *same* simulation (observers are free to
    stack because they never influence scheduling); the primary
    ``fairness`` block always uses the paper's fairshare basis, and
    per-order stats land in :attr:`PolicyRun.fairness_by_order`.
    """
    spec = get_policy(policy_key)
    orders = tuple(reference_orders) if reference_orders else ("fairshare",)
    wl = workload
    if spec.max_runtime is not None:
        wl = split_by_runtime_limit(workload, spec.max_runtime)
    scheduler = spec.make_scheduler(**dict(scheduler_overrides or {}))
    fst_obs = HybridFSTObserver(estimate_mode)
    loc_obs = LossOfCapacityObserver()
    extra_fst_obs = [
        HybridFSTObserver(estimate_mode, basis=o)
        for o in orders if o != "fairshare"
    ]
    engine = Engine(
        Cluster(wl.system_size),
        scheduler,
        wl.jobs,
        observers=[fst_obs, loc_obs, *extra_fst_obs, *(observers or ())],
        kill_policy=kill_policy,
        validate=validate,
    )
    result = engine.run()
    return derive_policy_run(
        policy_key,
        result,
        epsilon=epsilon,
        reference_orders=orders,
        split=spec.max_runtime is not None,
    )


def derive_policy_run(
    policy_key: str,
    result: SimulationResult,
    *,
    epsilon: float = 1.0,
    reference_orders: Sequence[str] = ("fairshare",),
    split: bool = False,
) -> PolicyRun:
    """Derive the full :class:`PolicyRun` metric bundle from a finished
    simulation.

    :func:`run_policy` is "simulate then derive"; the live service finishes
    an incrementally-driven engine and derives from here, so both paths
    report through the identical metric pipeline.
    """
    orders = tuple(reference_orders) if reference_orders else ("fairshare",)
    fst = result.fst("hybrid")

    # Metrics are reported per *trace* job so every policy averages over the
    # identical job population (Figures 9/15 compare sums across policies).
    # For runtime-limit policies the scheduler saw chunks; collapse them:
    # the trace job's start is its first chunk's start, its completion the
    # last chunk's, and its FST the one observed at first-chunk arrival.
    metric_jobs = parent_view(result.jobs) if split else result.jobs
    metric_fst = _collapse_chunk_fst(result.jobs, fst, split)

    stats = fairness_stats(metric_jobs, metric_fst, epsilon=epsilon)
    by_order: Optional[Dict[str, FairnessStats]] = None
    if orders != ("fairshare",):
        by_order = {}
        for o in orders:
            if o == "fairshare":
                by_order[o] = stats
                continue
            ofst = _collapse_chunk_fst(
                result.jobs, result.fst(f"hybrid_{o}"), split
            )
            by_order[o] = fairness_stats(metric_jobs, ofst, epsilon=epsilon)
    # user metrics over trace jobs; system metrics over the raw schedule
    # (a collapsed parent spans its inter-chunk waits, which must not count
    # as executed work)
    summary = SummaryStats(
        n_jobs=len(metric_jobs),
        avg_wait=average_wait(metric_jobs),
        avg_turnaround=average_turnaround(metric_jobs),
        avg_slowdown=average_slowdown(metric_jobs),
        utilization=utilization(result.jobs, result.cluster_size),
        makespan=makespan(result.jobs),
    )
    return PolicyRun(
        policy=policy_key,
        result=result,
        summary=summary,
        fairness=stats,
        loss_of_capacity=loc_of(result),
        miss_by_width=average_miss_by_width(metric_jobs, metric_fst),
        turnaround_by_width=average_turnaround_by_width(metric_jobs),
        metric_jobs=metric_jobs,
        fst=metric_fst,
        fairness_by_order=by_order,
    )


def run_suite(
    workload: Workload,
    policies: Sequence[str],
    progress: bool = False,
    **kwargs,
) -> Dict[str, PolicyRun]:
    """Run several policies on the same workload."""
    out: Dict[str, PolicyRun] = {}
    for key in policies:
        if progress:
            print(f"[repro] simulating {key} on {workload.name} ...", flush=True)
        out[key] = run_policy(workload, key, **kwargs)
    return out


def run_scenario(
    scenario: str,
    policies: Sequence[str] | str,
    seed: int = 0,
    params: Optional[Mapping[str, object]] = None,
    progress: bool = False,
    **kwargs,
) -> Dict[str, PolicyRun]:
    """Build a named scenario's workload and run policies on it.

    The scenario's run-option defaults (e.g. the estimate scenarios set
    ``estimate_mode="wcl"``) apply unless the caller overrides them; the
    result is the standard per-policy report, one :class:`PolicyRun` per
    policy, exactly like :func:`run_suite`.
    """
    from ..scenarios import get_scenario  # deferred: scenarios is a leaf pkg

    sc = get_scenario(scenario)
    wl = sc.build(seed=seed, **dict(params or {}))
    merged = {**dict(sc.options), **kwargs}
    keys = [policies] if isinstance(policies, str) else list(policies)
    return run_suite(wl, keys, progress=progress, **merged)


# -- suite memoization --------------------------------------------------------

_SUITE_CACHE: Dict[Tuple, Dict[str, PolicyRun]] = {}


def cached_suite(
    workload: Workload,
    policies: Sequence[str],
    cache_key: Optional[str] = None,
    **kwargs,
) -> Dict[str, PolicyRun]:
    """Like :func:`run_suite`, but memoized.

    The cache key is the workload's name (generators encode scale and seed
    there) unless an explicit ``cache_key`` is given; identical names with
    different job lists would alias, so generated workloads must carry
    distinguishing names.
    """
    key = (
        cache_key or workload.name,
        len(workload),
        tuple(policies),
        tuple(sorted(kwargs.items())),
    )
    missing = [p for p in policies]
    if key in _SUITE_CACHE:
        cached = _SUITE_CACHE[key]
        missing = [p for p in policies if p not in cached]
        if not missing:
            return {p: cached[p] for p in policies}
    fresh = run_suite(workload, missing, **kwargs)
    merged = {**_SUITE_CACHE.get(key, {}), **fresh}
    _SUITE_CACHE[key] = merged
    return {p: merged[p] for p in policies}


def clear_suite_cache() -> None:
    _SUITE_CACHE.clear()
