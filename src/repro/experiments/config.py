"""Experiment-scale configuration.

Benchmarks default to a reduced trace so the whole suite runs in minutes:

* ``REPRO_BENCH_SCALE`` — fraction of the full 13,236-job trace
  (default 0.2, about 2,600 jobs over ~7 weeks at the same offered load);
* ``REPRO_BENCH_FULL=1`` — the full 231-day trace;
* ``REPRO_BENCH_SEED`` — generator seed (default 7).

Tests use much smaller workloads and set their own parameters explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..workload.generator import GeneratorConfig, generate_cplant_workload
from ..workload.model import Workload

DEFAULT_SCALE = 0.2
DEFAULT_SEED = 7


@dataclass(frozen=True)
class BenchConfig:
    scale: float
    seed: int

    @classmethod
    def from_env(cls) -> "BenchConfig":
        if os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0"):
            scale = 1.0
        else:
            scale = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
        seed = int(os.environ.get("REPRO_BENCH_SEED", DEFAULT_SEED))
        return cls(scale=scale, seed=seed)


def bench_workload(config: BenchConfig | None = None) -> Workload:
    """The workload all figure/table benchmarks share."""
    cfg = config or BenchConfig.from_env()
    return generate_cplant_workload(
        GeneratorConfig(scale=cfg.scale), seed=cfg.seed
    )
