"""Persist experiment results as JSON/CSV.

A policy suite is an expensive artifact (minutes of simulation at full
scale); these helpers serialize everything the figures need so analysis
and plotting can happen in a separate process or notebook without
re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Mapping, Union

from ..workload.categories import WIDTH_LABELS
from .runner import PolicyRun

PathLike = Union[str, Path]


def policy_run_record(run: PolicyRun) -> Dict[str, object]:
    """Flatten one PolicyRun into JSON-serializable primitives.

    Everything the paper-artifact renderers consume rides along —
    including the Figure 3 weekly series — so a cached campaign cell can
    rebuild its figures without re-simulating (floats survive the JSON
    round trip exactly, keeping renderings byte-identical).
    """
    weekly = run.weekly
    out: Dict[str, object] = {
        "policy": run.policy,
        "summary": run.summary.as_dict(),
        "fairness": run.fairness.as_dict(),
        "loss_of_capacity": run.loss_of_capacity,
        "miss_by_width": [float(x) for x in run.miss_by_width],
        "turnaround_by_width": [float(x) for x in run.turnaround_by_width],
        "width_labels": list(WIDTH_LABELS),
        "events_processed": run.result.events_processed,
        "scheduler_jobs": len(run.result.jobs),
        "metric_jobs": len(run.metric_jobs),
        "weekly": {
            "week_start": [float(x) for x in weekly.week_start],
            "offered_load": [float(x) for x in weekly.offered_load],
            "utilization": [float(x) for x in weekly.utilization],
        },
    }
    if run.fairness_by_order is not None:
        # only multi-reference-order runs carry this block, so records of
        # the paper's default configuration keep their historical shape
        out["fairness_by_order"] = {
            name: stats.as_dict()
            for name, stats in sorted(run.fairness_by_order.items())
        }
    return out


def export_suite_json(suite: Mapping[str, PolicyRun], path: PathLike) -> None:
    """One JSON document with every policy's metrics."""
    doc = {key: policy_run_record(run) for key, run in suite.items()}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def export_suite_csv(suite: Mapping[str, PolicyRun], path: PathLike) -> None:
    """Headline metrics, one row per policy (spreadsheet-friendly)."""
    fields = [
        "policy", "n_jobs", "percent_unfair", "average_miss_time",
        "avg_wait", "avg_turnaround", "avg_slowdown", "utilization",
        "loss_of_capacity", "makespan",
    ]
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for key, run in suite.items():
            s, f = run.summary, run.fairness
            writer.writerow({
                "policy": key,
                "n_jobs": s.n_jobs,
                "percent_unfair": f.percent_unfair,
                "average_miss_time": f.average_miss_time,
                "avg_wait": s.avg_wait,
                "avg_turnaround": s.avg_turnaround,
                "avg_slowdown": s.avg_slowdown,
                "utilization": s.utilization,
                "loss_of_capacity": run.loss_of_capacity,
                "makespan": s.makespan,
            })


def export_per_job_csv(run: PolicyRun, path: PathLike) -> None:
    """Per-trace-job outcomes for one policy: submit/start/end, FST, miss."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "job_id", "user_id", "nodes", "runtime", "wcl",
            "submit_time", "start_time", "end_time", "fst", "miss_time",
        ])
        for j in sorted(run.metric_jobs, key=lambda x: x.id):
            fst = run.fst[j.id]
            writer.writerow([
                j.id, j.user_id, j.nodes, f"{j.runtime:.3f}", f"{j.wcl:.3f}",
                f"{j.submit_time:.3f}", f"{j.start_time:.3f}",
                f"{j.end_time:.3f}", f"{fst:.3f}",
                f"{max(0.0, j.start_time - fst):.3f}",
            ])


def load_suite_json(path: PathLike) -> Dict[str, Dict[str, object]]:
    """Read back an :func:`export_suite_json` document."""
    return json.loads(Path(path).read_text())


# -- campaign aggregates ------------------------------------------------------
#
# These accept the plain aggregate document produced by
# ``repro.campaign.aggregate_cells`` (no campaign import here — the
# campaign package imports :func:`policy_run_record` from this module).

CAMPAIGN_CSV_FIELDS = [
    "campaign", "workload", "policy", "overrides", "metric",
    "n", "mean", "std", "ci95", "min", "max",
]


def export_campaign_json(doc: Dict[str, object], path: PathLike) -> None:
    """Write an aggregate document; deterministic bytes for identical
    metrics (sorted keys, no timing or provenance fields)."""
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def export_campaign_csv(rows, path: PathLike) -> None:
    """Write ``repro.campaign.aggregate_rows`` output (long format: one
    row per group x metric)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CAMPAIGN_CSV_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def load_campaign_json(path: PathLike) -> Dict[str, object]:
    """Read back an :func:`export_campaign_json` document."""
    return json.loads(Path(path).read_text())
