"""Discrete-event machinery: event kinds and a stable priority queue.

Events at equal timestamps are delivered in a deterministic order:
completions before arrivals before timers (so a completion at time *t*
frees nodes before the scheduling pass triggered by an arrival at *t*),
and within a kind in insertion order.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.IntEnum):
    """Ordering of the enum values is the tie-break order at equal times."""

    COMPLETION = 0
    ARRIVAL = 1
    STARVATION_TIMER = 2
    DECAY_TICK = 3
    GENERIC_TIMER = 4
    WCL_CHECK = 5


@dataclass(order=True)
class Event:
    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """Heap-backed event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        ev = Event(time, kind, next(self._counter), payload)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Mark an event dead; it is skipped when popped."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Event:
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        raise IndexError("pop from empty EventQueue")

    def peek(self) -> Optional[Event]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        ev = self.peek()
        return ev.time if ev is not None else None
