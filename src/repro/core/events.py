"""Discrete-event machinery: event kinds and a stable priority queue.

Events at equal timestamps are delivered in a deterministic order:
completions before arrivals before timers (so a completion at time *t*
frees nodes before the scheduling pass triggered by an arrival at *t*),
and within a kind in insertion order.

The heap holds ``(time, kind, seq, event)`` tuples rather than ordered
Event objects: tuple comparison is a single C-level operation, where a
``@dataclass(order=True)`` comparison builds two tuples per ``__lt__``
call.  ``seq`` is unique, so the trailing event object never participates
in a comparison.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, List, Optional, Tuple


class EventKind(enum.IntEnum):
    """Ordering of the enum values is the tie-break order at equal times."""

    COMPLETION = 0
    ARRIVAL = 1
    STARVATION_TIMER = 2
    DECAY_TICK = 3
    GENERIC_TIMER = 4
    WCL_CHECK = 5


class Event:
    """One scheduled occurrence; identity object for cancellation."""

    __slots__ = ("time", "kind", "seq", "payload", "cancelled")

    def __init__(self, time: float, kind: EventKind, seq: int,
                 payload: Any = None) -> None:
        self.time = time
        self.kind = kind
        self.seq = seq
        self.payload = payload
        self.cancelled = False

    def __repr__(self) -> str:
        flag = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, {self.kind.name}, seq={self.seq}{flag})"


class EventQueue:
    """Heap-backed event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        seq = next(self._counter)
        ev = Event(time, kind, seq, payload)
        heapq.heappush(self._heap, (time, kind, seq, ev))
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Mark an event dead; it is skipped when popped."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Event:
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        raise IndexError("pop from empty EventQueue")

    def peek(self) -> Optional[Event]:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][3] if heap else None

    def peek_time(self) -> Optional[float]:
        ev = self.peek()
        return ev.time if ev is not None else None
