"""Event-driven simulation engine.

The engine owns the clock, the event queue, and the cluster; the scheduler
owns the waiting jobs and all policy decisions.  At every event the engine
performs bookkeeping (complete jobs, deliver arrivals, fire timers) and then
lets the scheduler run a scheduling pass, mirroring the paper's simulator
("at each scheduling event (job completion and job arrival), the queue was
processed...").

Chunk chains (from the runtime-limit transform) are driven here: when a
chunk completes, its successor chunk is submitted at that instant, exactly
like a user resubmitting from a checkpoint.
"""

from __future__ import annotations

import copy
import enum
import math
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..obs import counters as _counters
from .cluster import Cluster
from .events import Event, EventKind, EventQueue
from .job import Job, JobState
from .results import SimulationResult


class KillPolicy(enum.Enum):
    """What happens when a job reaches its wall-clock limit.

    * ``NEVER`` — jobs always run their full trace runtime.
    * ``AT_WCL`` — hard enforcement: runtime truncated to the WCL.
    * ``IF_NEEDED`` — the CPlant rule (Section 2.2): "the scheduler kills
      jobs after the WCL is reached; however, if no other job requires the
      processors, the job is allowed to continue running until the
      processors are needed."  An overrunning job is killed the moment a
      waiting job cannot fit in the free nodes; otherwise it is re-checked
      periodically until its natural completion.
    """

    NEVER = "never"
    AT_WCL = "at_wcl"
    IF_NEEDED = "if_needed"


@runtime_checkable
class Observer(Protocol):
    """The frozen engine observer contract; all hooks are optional overrides.

    This is a :func:`typing.runtime_checkable` Protocol: anything passed as
    an engine observer — metric observers, :class:`repro.obs.trace.
    TraceObserver`, service subscribers — must satisfy it structurally, and
    the engine enforces ``isinstance(obs, Observer)`` at construction.  The
    easiest way to conform is to subclass ``Observer`` and inherit the
    no-op defaults; a pure-structural conformer must implement every hook.

    The telemetry hooks (``on_schedule_pass``, ``on_kill``,
    ``on_chunk_chain``) are only invoked for observers that actually
    override them — the engine detects overrides at construction, so a
    run without tracing pays nothing for the hook points.
    """

    def on_attach(self, engine: "Engine") -> None: ...
    def on_arrival(self, job: Job, now: float) -> None: ...
    def on_start(self, job: Job, now: float) -> None: ...
    def on_completion(self, job: Job, now: float) -> None: ...
    def on_end(self, now: float) -> None: ...
    def collect(self, result: SimulationResult) -> None: ...

    # -- telemetry hooks (dispatched only to overriders) ----------------------

    def on_schedule_pass(self, now: float, reason: str, queue_depth: int,
                         running: int, free_nodes: int, started: int) -> None:
        """After each scheduling pass: the event that triggered it
        (``reason``), the queue/machine state it saw (snapshotted before
        the scheduler ran), and how many jobs the pass started."""

    def on_kill(self, job: Job, now: float) -> None:
        """A running job killed by the wall-clock-limit rule."""

    def on_chunk_chain(self, job: Job, successor: Job, now: float) -> None:
        """A completed chunk submitting its chain successor."""


#: every hook an :class:`Observer` must expose (the protocol surface)
OBSERVER_HOOKS: Tuple[str, ...] = (
    "on_attach", "on_arrival", "on_start", "on_completion", "on_end",
    "collect", "on_schedule_pass", "on_kill", "on_chunk_chain",
)


class Engine:
    """Run one workload through one scheduler on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "SchedulerProtocol",
        jobs: Sequence[Job],
        observers: Iterable[Observer] = (),
        kill_policy: KillPolicy = KillPolicy.NEVER,
        validate: bool = False,
        max_events: Optional[int] = None,
        wcl_check_interval: float = 900.0,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.observers: List[Observer] = list(observers)
        self.kill_policy = kill_policy
        self.validate = validate
        self.max_events = max_events
        self.wcl_check_interval = wcl_check_interval
        #: pending natural-completion events, cancellable by a WCL kill
        self._completion_events: Dict[int, Event] = {}

        self.now = 0.0
        self.events = EventQueue()
        self._events_processed = 0
        self._jobs: List[Job] = []
        self._job_ids: set = set()
        self._started_this_pass: List[Job] = []
        self._outstanding = 0
        self._result: Optional[SimulationResult] = None

        # chunk chains: (parent_id, chunk_index) -> job; chunks beyond the
        # first are submitted when their predecessor completes.
        self._successors: Dict[Tuple[int, int], Job] = {}
        # chain-tail work after each chunk (fairness observers treat a chunk
        # chain as one contiguous trace job in their hypothetical schedules)
        self._tail_runtime: Dict[int, float] = {}
        self._tail_wcl: Dict[int, float] = {}

        self._register(jobs)

        for obs in self.observers:
            if not isinstance(obs, Observer):
                missing = [
                    h for h in OBSERVER_HOOKS
                    if not callable(getattr(obs, h, None))
                ]
                raise TypeError(
                    f"{type(obs).__name__} does not satisfy the Observer "
                    f"protocol; missing hooks: {missing}"
                )

        # telemetry hook dispatch lists: only observers that override a
        # hook are called, so the common (untraced) run never pays for
        # the per-pass state snapshot or the extra calls
        self._pass_observers = [
            o for o in self.observers
            if type(o).on_schedule_pass is not Observer.on_schedule_pass
        ]
        self._kill_observers = [
            o for o in self.observers
            if type(o).on_kill is not Observer.on_kill
        ]
        self._chain_observers = [
            o for o in self.observers
            if type(o).on_chunk_chain is not Observer.on_chunk_chain
        ]

        scheduler.attach(self)
        for obs in self.observers:
            obs.on_attach(self)

    # -- job registration (shared by the constructor and ingest) ---------------

    def _register(self, jobs: Sequence[Job]) -> List[Job]:
        """Fresh-copy, validate, and queue a batch of jobs for arrival.

        A chunk chain must be registered whole in one batch (the
        runtime-limit transform emits them together); only the head chunk
        gets an arrival event, successors are submitted on completion.
        """
        fresh = [j.fresh_copy() for j in jobs]

        oversized = [j.id for j in fresh if j.nodes > self.cluster.size]
        if oversized:
            raise ValueError(
                f"jobs wider than the cluster ({self.cluster.size} nodes): "
                f"{oversized[:5]}"
            )
        dupes = [j.id for j in fresh if j.id in self._job_ids]
        if dupes:
            raise ValueError(f"duplicate job ids: {dupes[:5]}")

        chains: Dict[int, List[Job]] = {}
        for job in fresh:
            if job.is_chunk and job.chunk_index > 0:
                self._successors[(job.parent_id, job.chunk_index)] = job
            if job.is_chunk:
                chains.setdefault(job.parent_id, []).append(job)
        for chunks in chains.values():
            chunks.sort(key=lambda c: c.chunk_index)
            rt = wcl = 0.0
            for c in reversed(chunks):
                self._tail_runtime[c.id] = rt
                self._tail_wcl[c.id] = wcl
                rt += c.runtime
                wcl += c.wcl

        for job in fresh:
            if not (job.is_chunk and job.chunk_index > 0):
                self.events.push(job.submit_time, EventKind.ARRIVAL, job)
            self._job_ids.add(job.id)
        self._jobs.extend(fresh)
        self._outstanding += len(fresh)
        return fresh

    # -- incremental lifecycle --------------------------------------------------
    #
    # ``run()`` is the classic one-shot entry point.  The service layer
    # drives the same engine incrementally instead:
    #
    #     engine.start()
    #     engine.ingest(batch_1); engine.step_until(t1)
    #     engine.ingest(batch_2); engine.step_until(t2)
    #     result = engine.finish()
    #
    # State persists between arrivals — nothing is rebuilt per batch — and
    # a step-driven run over the same job set processes exactly the events
    # a one-shot ``run()`` would, in the same order, so results (and
    # digests) are byte-identical.

    @property
    def finished(self) -> bool:
        return self._result is not None

    def start(self) -> "Engine":
        """Mark the engine live for incremental driving (idempotent).

        Construction already primes every structure; this exists so the
        incremental lifecycle reads ``start / ingest / step_until /
        finish`` and can grow pre-flight work without an API break.
        """
        if self._result is not None:
            raise RuntimeError("engine already finished")
        return self

    def ingest(self, jobs: Sequence[Job]) -> List[Job]:
        """Submit more jobs to a live engine; returns the engine's copies.

        Jobs must arrive in the simulation's future (``submit_time >=
        now``) — the clock never rewinds.  Ingesting the full trace up
        front and stepping is equivalent to a one-shot :meth:`run`.
        """
        if self._result is not None:
            raise RuntimeError("cannot ingest into a finished engine")
        late = [j.id for j in jobs
                if not (j.is_chunk and j.chunk_index > 0)
                and j.submit_time < self.now]
        if late:
            raise ValueError(
                f"cannot ingest jobs submitted before the clock "
                f"(now={self.now}): {late[:5]}"
            )
        return self._register(jobs)

    def step_until(self, until: float = math.inf, inclusive: bool = True) -> int:
        """Process every due event with ``time <= until``; return the count.

        The clock (``self.now``) only moves when an event is dispatched,
        preserving the engine invariant that time advances on events.  An
        idle engine (every ingested job completed) pauses — pending timer
        chains are deferred, not discarded, and fire in order once new
        work is ingested, so an incrementally-driven run dispatches the
        exact event sequence of a one-shot run over the merged trace.

        ``inclusive=False`` stops strictly *before* ``until``: a caller
        that may still ingest jobs arriving exactly at ``until`` must not
        process same-time timer events first, because arrivals order ahead
        of timers at equal timestamps in a one-shot run.
        """
        if self._result is not None:
            raise RuntimeError("engine already finished")
        before = self._events_processed
        events = self.events
        while self._outstanding and events:
            nxt = events.peek()
            if nxt is None:
                break
            if nxt.time > until or (not inclusive and nxt.time >= until):
                break
            self._process(events.pop())
        return self._events_processed - before

    def finish(self) -> SimulationResult:
        """Drain all remaining work and seal the run (idempotent)."""
        if self._result is None:
            self.step_until(math.inf)
            self._result = self._finalize()
        return self._result

    def fork(self) -> "Engine":
        """Deep-copy the live engine — cluster, scheduler, queues, pending
        events, observers — for warm-started what-if simulation.

        The fork shares nothing with the original: draining it answers
        "what happens to the current backlog under changed settings"
        without re-simulating completed history, while the live engine
        keeps running.  Observers must be deep-copyable (file-backed
        trace sinks are not; in-memory observers are).
        """
        if self._result is not None:
            raise RuntimeError("cannot fork a finished engine")
        return copy.deepcopy(self)

    # -- services used by schedulers -------------------------------------------

    def start_job(self, job: Job) -> None:
        """Allocate nodes and schedule the completion; called by schedulers
        from inside a scheduling pass."""
        if job.state is not JobState.QUEUED:
            raise RuntimeError(f"cannot start job {job.id} in state {job.state}")
        self.cluster.start(job, self.now)
        duration = job.runtime
        if self.kill_policy is KillPolicy.AT_WCL:
            duration = min(duration, job.wcl)
        ev = self.events.push(self.now + duration, EventKind.COMPLETION, job)
        if self.kill_policy is KillPolicy.IF_NEEDED and job.runtime > job.wcl:
            self._completion_events[job.id] = ev
            self.events.push(self.now + job.wcl, EventKind.WCL_CHECK, job)
        self._started_this_pass.append(job)

    def chain_tail_runtime(self, job: Job) -> float:
        """Actual runtime still to come in this job's chunk chain (0 for
        ordinary jobs and final chunks)."""
        return self._tail_runtime.get(job.id, 0.0)

    def chain_tail_wcl(self, job: Job) -> float:
        """Estimated (WCL) work still to come in this job's chunk chain."""
        return self._tail_wcl.get(job.id, 0.0)

    def add_timer(self, time: float, payload=None, kind: EventKind = EventKind.GENERIC_TIMER) -> Event:
        return self.events.push(time, kind, payload)

    def cancel_timer(self, event: Event) -> None:
        self.events.cancel(event)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        if self._result is not None:
            raise RuntimeError("engine already finished")
        while self.events:
            self._process(self.events.pop())
            if self._outstanding == 0:
                # every job completed; leftover timer chains (decay ticks,
                # starvation re-checks) would only spin the clock forward
                break
        self._result = self._finalize()
        return self._result

    def _process(self, ev: Event) -> None:
        if self.max_events is not None and self._events_processed >= self.max_events:
            raise RuntimeError(
                f"exceeded max_events={self.max_events}; "
                "likely a scheduler livelock"
            )
        self._events_processed += 1
        if ev.time < self.now:
            raise RuntimeError(
                f"time went backwards: {ev.time} < {self.now} ({ev.kind})"
            )
        self.now = ev.time
        self._dispatch(ev)
        if self.validate:
            self.cluster.check_invariants()

    def _finalize(self) -> SimulationResult:
        if self.cluster.running_count:
            raise RuntimeError("event queue drained with jobs still running")
        stranded = self.scheduler.waiting_jobs()
        if stranded:
            raise RuntimeError(
                f"scheduler stranded {len(stranded)} queued jobs "
                f"(first: {stranded[0].id}); the policy never started them"
            )

        c = _counters.ACTIVE
        if c is not None:
            # one batched increment at end-of-run, not one per event
            c.hit("engine.events", self._events_processed)

        for obs in self.observers:
            obs.on_end(self.now)

        result = SimulationResult(
            jobs=self._jobs,
            cluster_size=self.cluster.size,
            end_time=self.now,
            events_processed=self._events_processed,
        )
        for obs in self.observers:
            obs.collect(result)
        return result

    @property
    def jobs(self) -> List[Job]:
        """Every job registered so far (the engine's own copies)."""
        return self._jobs

    @property
    def events_processed(self) -> int:
        """Events dispatched so far (a fork inherits the parent's count)."""
        return self._events_processed

    # -- event handling ------------------------------------------------------------

    def _dispatch(self, ev: Event) -> None:
        if ev.kind is EventKind.COMPLETION:
            # simultaneous completions are one scheduling event: freeing
            # them one pass at a time would let a scheduler misread a
            # just-finishing peer (completion pending at this very instant)
            # as an overrunning job
            batch = [ev.payload]
            while True:
                nxt = self.events.peek()
                if (nxt is None or nxt.kind is not EventKind.COMPLETION
                        or nxt.time != ev.time):
                    break
                batch.append(self.events.pop().payload)
                self._events_processed += 1
            for job in batch:
                self._completion_events.pop(job.id, None)
            self._handle_completions(batch)
        elif ev.kind is EventKind.ARRIVAL:
            self._handle_arrival(ev.payload)
        elif ev.kind is EventKind.WCL_CHECK:
            self._handle_wcl_check(ev.payload)
        else:
            self.scheduler.on_timer(ev.payload, self.now, ev.kind)
            self._run_pass("timer")

    def _handle_wcl_check(self, job: Job) -> None:
        """The CPlant IF_NEEDED rule: an overrunning job is killed the
        moment some waiting job cannot fit in the currently free nodes."""
        if job.state is not JobState.RUNNING:
            return
        free = self.cluster.free_nodes
        needed = any(w.nodes > free for w in self.scheduler.waiting_jobs())
        if needed:
            pending = self._completion_events.pop(job.id, None)
            if pending is not None:
                self.events.cancel(pending)
            c = _counters.ACTIVE
            if c is not None:
                c.hit("engine.wcl_kill")
            for obs in self._kill_observers:
                obs.on_kill(job, self.now)
            self._handle_completion(job)
        else:
            self.events.push(
                self.now + self.wcl_check_interval, EventKind.WCL_CHECK, job
            )

    def _handle_arrival(self, job: Job) -> None:
        job.state = JobState.QUEUED
        job.submit_time = self.now if job.is_chunk and job.chunk_index > 0 else job.submit_time
        self.scheduler.enqueue(job, self.now)
        # fairness observers snapshot state *after* the job is queued but
        # *before* any start decision at this instant (Section 4.1: "the
        # state of the scheduler upon job arrival").
        for obs in self.observers:
            obs.on_arrival(job, self.now)
        self._run_pass("arrival")

    def _handle_completions(self, jobs: List[Job]) -> None:
        for job in jobs:
            self.cluster.finish(job, self.now)
            self._outstanding -= 1
            self.scheduler.on_completion(job, self.now)
            for obs in self.observers:
                obs.on_completion(job, self.now)
            if job.is_chunk:
                succ = self._successors.pop(
                    (job.parent_id, job.chunk_index + 1), None
                )
                if succ is not None:
                    self.events.push(self.now, EventKind.ARRIVAL, succ)
                    c = _counters.ACTIVE
                    if c is not None:
                        c.hit("engine.chunk_resubmit")
                    for obs in self._chain_observers:
                        obs.on_chunk_chain(job, succ, self.now)
        self._run_pass("completion")

    def _handle_completion(self, job: Job) -> None:
        self._handle_completions([job])

    def _run_pass(self, reason: str) -> None:
        pass_observers = self._pass_observers
        if pass_observers:
            # pre-pass snapshot: the state the scheduler is about to act on
            queue_depth = len(self.scheduler.waiting_jobs())
            running = self.cluster.running_count
            free = self.cluster.free_nodes
        c = _counters.ACTIVE
        if c is not None:
            c.hit("engine.schedule_pass")
        self._started_this_pass = []
        self.scheduler.schedule(self.now, reason)
        for job in self._started_this_pass:
            for obs in self.observers:
                obs.on_start(job, self.now)
        if pass_observers:
            started = len(self._started_this_pass)
            for obs in pass_observers:
                obs.on_schedule_pass(
                    self.now, reason, queue_depth, running, free, started
                )


class SchedulerProtocol:
    """Interface the engine expects; see :mod:`repro.sched.base`.

    Besides the methods below, schedulers expose ``waiting_jobs()`` (all
    jobs held in queues), used by the WCL kill rule and end-of-run checks.
    """

    def attach(self, engine: Engine) -> None:
        raise NotImplementedError

    def enqueue(self, job: Job, now: float) -> None:
        raise NotImplementedError

    def on_completion(self, job: Job, now: float) -> None:
        raise NotImplementedError

    def on_timer(self, payload, now: float, kind: EventKind) -> None:
        raise NotImplementedError

    def schedule(self, now: float, reason: str) -> None:
        raise NotImplementedError
