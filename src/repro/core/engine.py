"""Event-driven simulation engine.

The engine owns the clock, the event queue, and the cluster; the scheduler
owns the waiting jobs and all policy decisions.  At every event the engine
performs bookkeeping (complete jobs, deliver arrivals, fire timers) and then
lets the scheduler run a scheduling pass, mirroring the paper's simulator
("at each scheduling event (job completion and job arrival), the queue was
processed...").

Chunk chains (from the runtime-limit transform) are driven here: when a
chunk completes, its successor chunk is submitted at that instant, exactly
like a user resubmitting from a checkpoint.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import counters as _counters
from .cluster import Cluster
from .events import Event, EventKind, EventQueue
from .job import Job, JobState
from .results import SimulationResult


class KillPolicy(enum.Enum):
    """What happens when a job reaches its wall-clock limit.

    * ``NEVER`` — jobs always run their full trace runtime.
    * ``AT_WCL`` — hard enforcement: runtime truncated to the WCL.
    * ``IF_NEEDED`` — the CPlant rule (Section 2.2): "the scheduler kills
      jobs after the WCL is reached; however, if no other job requires the
      processors, the job is allowed to continue running until the
      processors are needed."  An overrunning job is killed the moment a
      waiting job cannot fit in the free nodes; otherwise it is re-checked
      periodically until its natural completion.
    """

    NEVER = "never"
    AT_WCL = "at_wcl"
    IF_NEEDED = "if_needed"


class Observer:
    """Passive simulation listener; all hooks are optional overrides.

    The telemetry hooks (``on_schedule_pass``, ``on_kill``,
    ``on_chunk_chain``) are only invoked for observers that actually
    override them — the engine detects overrides at construction, so a
    run without tracing pays nothing for the hook points.
    """

    def on_attach(self, engine: "Engine") -> None: ...
    def on_arrival(self, job: Job, now: float) -> None: ...
    def on_start(self, job: Job, now: float) -> None: ...
    def on_completion(self, job: Job, now: float) -> None: ...
    def on_end(self, now: float) -> None: ...
    def collect(self, result: SimulationResult) -> None: ...

    # -- telemetry hooks (dispatched only to overriders) ----------------------

    def on_schedule_pass(self, now: float, reason: str, queue_depth: int,
                         running: int, free_nodes: int, started: int) -> None:
        """After each scheduling pass: the event that triggered it
        (``reason``), the queue/machine state it saw (snapshotted before
        the scheduler ran), and how many jobs the pass started."""

    def on_kill(self, job: Job, now: float) -> None:
        """A running job killed by the wall-clock-limit rule."""

    def on_chunk_chain(self, job: Job, successor: Job, now: float) -> None:
        """A completed chunk submitting its chain successor."""


class Engine:
    """Run one workload through one scheduler on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "SchedulerProtocol",
        jobs: Sequence[Job],
        observers: Iterable[Observer] = (),
        kill_policy: KillPolicy = KillPolicy.NEVER,
        validate: bool = False,
        max_events: Optional[int] = None,
        wcl_check_interval: float = 900.0,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.observers: List[Observer] = list(observers)
        self.kill_policy = kill_policy
        self.validate = validate
        self.max_events = max_events
        self.wcl_check_interval = wcl_check_interval
        #: pending natural-completion events, cancellable by a WCL kill
        self._completion_events: Dict[int, Event] = {}

        self.now = 0.0
        self.events = EventQueue()
        self._events_processed = 0
        self._jobs: List[Job] = [j.fresh_copy() for j in jobs]
        self._started_this_pass: List[Job] = []
        self._outstanding = len(self._jobs)

        oversized = [j.id for j in self._jobs if j.nodes > cluster.size]
        if oversized:
            raise ValueError(
                f"jobs wider than the cluster ({cluster.size} nodes): {oversized[:5]}"
            )

        # chunk chains: (parent_id, chunk_index) -> job; chunks beyond the
        # first are submitted when their predecessor completes.
        self._successors: Dict[Tuple[int, int], Job] = {}
        chains: Dict[int, List[Job]] = {}
        for job in self._jobs:
            if job.is_chunk and job.chunk_index > 0:
                self._successors[(job.parent_id, job.chunk_index)] = job
            if job.is_chunk:
                chains.setdefault(job.parent_id, []).append(job)
        # chain-tail work after each chunk (fairness observers treat a chunk
        # chain as one contiguous trace job in their hypothetical schedules)
        self._tail_runtime: Dict[int, float] = {}
        self._tail_wcl: Dict[int, float] = {}
        for chunks in chains.values():
            chunks.sort(key=lambda c: c.chunk_index)
            rt = wcl = 0.0
            for c in reversed(chunks):
                self._tail_runtime[c.id] = rt
                self._tail_wcl[c.id] = wcl
                rt += c.runtime
                wcl += c.wcl

        for job in self._jobs:
            if not (job.is_chunk and job.chunk_index > 0):
                self.events.push(job.submit_time, EventKind.ARRIVAL, job)

        # telemetry hook dispatch lists: only observers that override a
        # hook are called, so the common (untraced) run never pays for
        # the per-pass state snapshot or the extra calls
        self._pass_observers = [
            o for o in self.observers
            if type(o).on_schedule_pass is not Observer.on_schedule_pass
        ]
        self._kill_observers = [
            o for o in self.observers
            if type(o).on_kill is not Observer.on_kill
        ]
        self._chain_observers = [
            o for o in self.observers
            if type(o).on_chunk_chain is not Observer.on_chunk_chain
        ]

        scheduler.attach(self)
        for obs in self.observers:
            obs.on_attach(self)

    # -- services used by schedulers -------------------------------------------

    def start_job(self, job: Job) -> None:
        """Allocate nodes and schedule the completion; called by schedulers
        from inside a scheduling pass."""
        if job.state is not JobState.QUEUED:
            raise RuntimeError(f"cannot start job {job.id} in state {job.state}")
        self.cluster.start(job, self.now)
        duration = job.runtime
        if self.kill_policy is KillPolicy.AT_WCL:
            duration = min(duration, job.wcl)
        ev = self.events.push(self.now + duration, EventKind.COMPLETION, job)
        if self.kill_policy is KillPolicy.IF_NEEDED and job.runtime > job.wcl:
            self._completion_events[job.id] = ev
            self.events.push(self.now + job.wcl, EventKind.WCL_CHECK, job)
        self._started_this_pass.append(job)

    def chain_tail_runtime(self, job: Job) -> float:
        """Actual runtime still to come in this job's chunk chain (0 for
        ordinary jobs and final chunks)."""
        return self._tail_runtime.get(job.id, 0.0)

    def chain_tail_wcl(self, job: Job) -> float:
        """Estimated (WCL) work still to come in this job's chunk chain."""
        return self._tail_wcl.get(job.id, 0.0)

    def add_timer(self, time: float, payload=None, kind: EventKind = EventKind.GENERIC_TIMER) -> Event:
        return self.events.push(time, kind, payload)

    def cancel_timer(self, event: Event) -> None:
        self.events.cancel(event)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        while self.events:
            ev = self.events.pop()
            if self.max_events is not None and self._events_processed >= self.max_events:
                raise RuntimeError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a scheduler livelock"
                )
            self._events_processed += 1
            if ev.time < self.now:
                raise RuntimeError(
                    f"time went backwards: {ev.time} < {self.now} ({ev.kind})"
                )
            self.now = ev.time
            self._dispatch(ev)
            if self.validate:
                self.cluster.check_invariants()
            if self._outstanding == 0:
                # every job completed; leftover timer chains (decay ticks,
                # starvation re-checks) would only spin the clock forward
                break

        if self.cluster.running_count:
            raise RuntimeError("event queue drained with jobs still running")
        stranded = self.scheduler.waiting_jobs()
        if stranded:
            raise RuntimeError(
                f"scheduler stranded {len(stranded)} queued jobs "
                f"(first: {stranded[0].id}); the policy never started them"
            )

        c = _counters.ACTIVE
        if c is not None:
            # one batched increment at end-of-run, not one per event
            c.hit("engine.events", self._events_processed)

        for obs in self.observers:
            obs.on_end(self.now)

        result = SimulationResult(
            jobs=self._jobs,
            cluster_size=self.cluster.size,
            end_time=self.now,
            events_processed=self._events_processed,
        )
        for obs in self.observers:
            obs.collect(result)
        return result

    # -- event handling ------------------------------------------------------------

    def _dispatch(self, ev: Event) -> None:
        if ev.kind is EventKind.COMPLETION:
            # simultaneous completions are one scheduling event: freeing
            # them one pass at a time would let a scheduler misread a
            # just-finishing peer (completion pending at this very instant)
            # as an overrunning job
            batch = [ev.payload]
            while True:
                nxt = self.events.peek()
                if (nxt is None or nxt.kind is not EventKind.COMPLETION
                        or nxt.time != ev.time):
                    break
                batch.append(self.events.pop().payload)
                self._events_processed += 1
            for job in batch:
                self._completion_events.pop(job.id, None)
            self._handle_completions(batch)
        elif ev.kind is EventKind.ARRIVAL:
            self._handle_arrival(ev.payload)
        elif ev.kind is EventKind.WCL_CHECK:
            self._handle_wcl_check(ev.payload)
        else:
            self.scheduler.on_timer(ev.payload, self.now, ev.kind)
            self._run_pass("timer")

    def _handle_wcl_check(self, job: Job) -> None:
        """The CPlant IF_NEEDED rule: an overrunning job is killed the
        moment some waiting job cannot fit in the currently free nodes."""
        if job.state is not JobState.RUNNING:
            return
        free = self.cluster.free_nodes
        needed = any(w.nodes > free for w in self.scheduler.waiting_jobs())
        if needed:
            pending = self._completion_events.pop(job.id, None)
            if pending is not None:
                self.events.cancel(pending)
            c = _counters.ACTIVE
            if c is not None:
                c.hit("engine.wcl_kill")
            for obs in self._kill_observers:
                obs.on_kill(job, self.now)
            self._handle_completion(job)
        else:
            self.events.push(
                self.now + self.wcl_check_interval, EventKind.WCL_CHECK, job
            )

    def _handle_arrival(self, job: Job) -> None:
        job.state = JobState.QUEUED
        job.submit_time = self.now if job.is_chunk and job.chunk_index > 0 else job.submit_time
        self.scheduler.enqueue(job, self.now)
        # fairness observers snapshot state *after* the job is queued but
        # *before* any start decision at this instant (Section 4.1: "the
        # state of the scheduler upon job arrival").
        for obs in self.observers:
            obs.on_arrival(job, self.now)
        self._run_pass("arrival")

    def _handle_completions(self, jobs: List[Job]) -> None:
        for job in jobs:
            self.cluster.finish(job, self.now)
            self._outstanding -= 1
            self.scheduler.on_completion(job, self.now)
            for obs in self.observers:
                obs.on_completion(job, self.now)
            if job.is_chunk:
                succ = self._successors.pop(
                    (job.parent_id, job.chunk_index + 1), None
                )
                if succ is not None:
                    self.events.push(self.now, EventKind.ARRIVAL, succ)
                    c = _counters.ACTIVE
                    if c is not None:
                        c.hit("engine.chunk_resubmit")
                    for obs in self._chain_observers:
                        obs.on_chunk_chain(job, succ, self.now)
        self._run_pass("completion")

    def _handle_completion(self, job: Job) -> None:
        self._handle_completions([job])

    def _run_pass(self, reason: str) -> None:
        pass_observers = self._pass_observers
        if pass_observers:
            # pre-pass snapshot: the state the scheduler is about to act on
            queue_depth = len(self.scheduler.waiting_jobs())
            running = self.cluster.running_count
            free = self.cluster.free_nodes
        c = _counters.ACTIVE
        if c is not None:
            c.hit("engine.schedule_pass")
        self._started_this_pass = []
        self.scheduler.schedule(self.now, reason)
        for job in self._started_this_pass:
            for obs in self.observers:
                obs.on_start(job, self.now)
        if pass_observers:
            started = len(self._started_this_pass)
            for obs in pass_observers:
                obs.on_schedule_pass(
                    self.now, reason, queue_depth, running, free, started
                )


class SchedulerProtocol:
    """Interface the engine expects; see :mod:`repro.sched.base`.

    Besides the methods below, schedulers expose ``waiting_jobs()`` (all
    jobs held in queues), used by the WCL kill rule and end-of-run checks.
    """

    def attach(self, engine: Engine) -> None:
        raise NotImplementedError

    def enqueue(self, job: Job, now: float) -> None:
        raise NotImplementedError

    def on_completion(self, job: Job, now: float) -> None:
        raise NotImplementedError

    def on_timer(self, payload, now: float, kind: EventKind) -> None:
        raise NotImplementedError

    def schedule(self, now: float, reason: str) -> None:
        raise NotImplementedError
