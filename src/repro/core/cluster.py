"""Space-shared cluster resource model.

The paper's simulator (like most batch-scheduling simulators) is a pure
*counting* model: a cluster is a pool of identical nodes, a job holds an
integer number of them for its lifetime, and placement is delegated to a
separate compute-process allocator that none of the evaluated metrics see.
"""

from __future__ import annotations

from typing import Dict, Iterator

from .job import Job, JobState


class AllocationError(RuntimeError):
    """Raised on over-allocation or double start/finish — these indicate
    scheduler bugs, never normal operation."""


class Cluster:
    """A pool of ``size`` identical nodes with running-job accounting."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"cluster size must be positive, got {size}")
        self.size = size
        self._free = size
        self._running: Dict[int, Job] = {}

    # -- queries -------------------------------------------------------------

    @property
    def free_nodes(self) -> int:
        return self._free

    @property
    def used_nodes(self) -> int:
        return self.size - self._free

    @property
    def running_count(self) -> int:
        return len(self._running)

    def running_jobs(self) -> Iterator[Job]:
        return iter(self._running.values())

    def is_running(self, job: Job) -> bool:
        return job.id in self._running

    def fits(self, job: Job) -> bool:
        return job.nodes <= self._free

    # -- state changes ---------------------------------------------------------

    def start(self, job: Job, now: float) -> None:
        if job.id in self._running:
            raise AllocationError(f"job {job.id} already running")
        if job.nodes > self._free:
            raise AllocationError(
                f"job {job.id} needs {job.nodes} nodes, only {self._free} free"
            )
        if job.nodes > self.size:
            raise AllocationError(
                f"job {job.id} needs {job.nodes} nodes > cluster size {self.size}"
            )
        self._free -= job.nodes
        self._running[job.id] = job
        job.state = JobState.RUNNING
        job.start_time = now

    def finish(self, job: Job, now: float) -> None:
        if job.id not in self._running:
            raise AllocationError(f"job {job.id} is not running")
        del self._running[job.id]
        self._free += job.nodes
        job.state = JobState.COMPLETED
        job.end_time = now

    def check_invariants(self) -> None:
        """Cheap internal consistency check used by tests and debug runs."""
        used = sum(j.nodes for j in self._running.values())
        if used + self._free != self.size:
            raise AllocationError(
                f"node accounting broken: used={used} free={self._free} size={self.size}"
            )
        if self._free < 0:
            raise AllocationError(f"negative free nodes: {self._free}")
