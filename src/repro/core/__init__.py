"""Core simulation substrate: jobs, events, cluster, profiles, engine."""

from .cluster import AllocationError, Cluster
from .engine import Engine, KillPolicy, Observer
from .events import Event, EventKind, EventQueue
from .job import Job, JobState
from .listsched import FreeTimeline, ListScheduler
from .profile import ProfileError, ReservationProfile
from .results import SimulationResult

__all__ = [
    "AllocationError",
    "Cluster",
    "Engine",
    "Event",
    "EventKind",
    "EventQueue",
    "FreeTimeline",
    "Job",
    "JobState",
    "KillPolicy",
    "ListScheduler",
    "Observer",
    "ProfileError",
    "ReservationProfile",
    "SimulationResult",
]
