"""Availability-over-time profile used by backfilling schedulers.

The profile is the scheduler's view of the future: a piecewise-constant
function from time to the number of nodes *not* committed to running jobs or
reservations.  Backfilling is, operationally, two queries against this
structure: "when is the earliest time a (nodes x duration) rectangle fits?"
(``earliest_fit``) and "commit/uncommit that rectangle" (``reserve`` /
``release``).

The representation is two parallel lists: ``times`` (sorted segment starts)
and ``avail`` (available nodes on ``[times[i], times[i+1])``); the final
segment extends to +infinity.  Operations are O(segments), which is O(queue
length) in practice — profiling on full-trace runs showed this structure is
not the bottleneck (the scheduling passes above it are), so it stays simple.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Tuple


class ProfileError(RuntimeError):
    """Over-subscription or malformed interval — indicates a scheduler bug."""


class ReservationProfile:
    """Piecewise-constant available-node timeline for a ``size``-node cluster."""

    __slots__ = ("size", "times", "avail")

    def __init__(self, size: int, start_time: float = 0.0) -> None:
        if size <= 0:
            raise ValueError(f"profile size must be positive, got {size}")
        self.size = size
        self.times: List[float] = [start_time]
        self.avail: List[int] = [size]

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def available_at(self, t: float) -> int:
        """Available nodes at time ``t`` (t must be >= the profile origin)."""
        i = bisect_right(self.times, t) - 1
        if i < 0:
            raise ValueError(f"time {t} precedes profile origin {self.times[0]}")
        return self.avail[i]

    def min_available(self, start: float, end: float) -> int:
        """Minimum availability over [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        i = max(bisect_right(self.times, start) - 1, 0)
        lo = self.size
        while i < len(self.times) and self.times[i] < end:
            lo = min(lo, self.avail[i])
            i += 1
        return lo

    def earliest_fit(self, nodes: int, duration: float, earliest: float) -> float:
        """Earliest start >= ``earliest`` where ``nodes`` are free for
        ``duration`` seconds.

        Always succeeds for nodes <= size because the final segment is
        unbounded.
        """
        if nodes > self.size:
            raise ProfileError(f"request for {nodes} nodes exceeds size {self.size}")
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        earliest = max(earliest, self.times[0])
        i = max(bisect_right(self.times, earliest) - 1, 0)
        anchor = earliest
        j = i
        n = len(self.times)
        while True:
            if self.avail[j] < nodes:
                # blocked: restart the window after this segment
                j += 1
                if j >= n:  # cannot happen: last segment has full size... unless
                    raise ProfileError(
                        "unbounded tail segment has insufficient nodes; "
                        "profile is over-committed"
                    )
                anchor = self.times[j]
                continue
            # segment j satisfies the request; does the window reach duration?
            end_needed = anchor + duration
            if j + 1 >= n or self.times[j + 1] >= end_needed:
                return anchor
            j += 1

    # -- mutation ----------------------------------------------------------------

    def _ensure_breakpoint(self, t: float) -> int:
        """Make ``t`` a segment boundary; return its index."""
        i = bisect_right(self.times, t) - 1
        if i < 0:
            raise ValueError(f"time {t} precedes profile origin {self.times[0]}")
        if self.times[i] == t:
            return i
        self.times.insert(i + 1, t)
        self.avail.insert(i + 1, self.avail[i])
        return i + 1

    def _apply(self, start: float, end: float, delta: int) -> None:
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        # validate before touching the structure, so a raise leaves the
        # profile byte-identical (no stray breakpoints)
        lo = self.min_available(start, end)
        if lo + delta < 0:
            raise ProfileError(
                f"over-subscription on [{start}, {end}): "
                f"{lo} available, delta {delta}"
            )
        if delta > 0:
            i = max(bisect_right(self.times, start) - 1, 0)
            mx = 0
            while i < len(self.times) and self.times[i] < end:
                mx = max(mx, self.avail[i])
                i += 1
            if mx + delta > self.size:
                raise ProfileError(
                    f"release beyond capacity on [{start}, {end}): "
                    f"{mx} + {delta} > {self.size}"
                )
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        for k in range(i, j):
            self.avail[k] += delta

    def reserve(self, start: float, end: float, nodes: int) -> None:
        """Commit ``nodes`` over [start, end)."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        self._apply(start, end, -nodes)

    def release(self, start: float, end: float, nodes: int) -> None:
        """Undo a prior ``reserve`` of the same rectangle."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        self._apply(start, end, +nodes)

    def coalesce(self) -> None:
        """Merge adjacent segments with equal availability."""
        if len(self.times) <= 1:
            return
        nt: List[float] = [self.times[0]]
        na: List[int] = [self.avail[0]]
        for t, a in zip(self.times[1:], self.avail[1:]):
            if a == na[-1]:
                continue
            nt.append(t)
            na.append(a)
        self.times = nt
        self.avail = na

    def advance(self, now: float) -> None:
        """Forget history before ``now`` (keeps the structure small)."""
        i = bisect_right(self.times, now) - 1
        if i <= 0:
            return
        self.times = self.times[i:]
        self.avail = self.avail[i:]
        self.times[0] = now

    # -- introspection -------------------------------------------------------------

    def segments(self) -> List[Tuple[float, float, int]]:
        """(start, end, avail) triples; the last end is +inf."""
        out = []
        for i, (t, a) in enumerate(zip(self.times, self.avail)):
            end = self.times[i + 1] if i + 1 < len(self.times) else float("inf")
            out.append((t, end, a))
        return out

    def check_invariants(self) -> None:
        if len(self.times) != len(self.avail):
            raise ProfileError("times/avail length mismatch")
        for a, b in zip(self.times, self.times[1:]):
            if b <= a:
                raise ProfileError(f"times not strictly increasing: {a} !< {b}")
        for a in self.avail:
            if not (0 <= a <= self.size):
                raise ProfileError(f"availability {a} outside [0, {self.size}]")
        if self.avail[-1] != self.size:
            raise ProfileError(
                f"unbounded tail must have full availability, got {self.avail[-1]}"
            )

    def __repr__(self) -> str:
        segs = ", ".join(f"[{t:.0f},{'inf' if e == float('inf') else f'{e:.0f}'})={a}"
                         for t, e, a in self.segments()[:6])
        more = "..." if len(self.times) > 6 else ""
        return f"ReservationProfile(size={self.size}, {segs}{more})"
