"""Availability-over-time profile used by backfilling schedulers.

The profile is the scheduler's view of the future: a piecewise-constant
function from time to the number of nodes *not* committed to running jobs or
reservations.  Backfilling is, operationally, two queries against this
structure: "when is the earliest time a (nodes x duration) rectangle fits?"
(``earliest_fit``) and "commit/uncommit that rectangle" (``reserve`` /
``release``).

The representation is two parallel lists: ``times`` (sorted segment starts)
and ``avail`` (available nodes on ``[times[i], times[i+1])``); the final
segment extends to +infinity.  This is the hottest structure in the
simulator (every conservative-backfill compression pass performs O(queue)
release/fit/reserve cycles against it), so mutation keeps the profile
*always coalesced* — adjacent equal segments are merged at the mutation
boundary in O(1) extra work — and schedulers use the trusted
``reserve_fitted``/``release_reserved`` fast paths, which skip the
over-subscription pre-scan that :meth:`reserve`/:meth:`release` perform
(those follow an ``earliest_fit`` or undo a prior reserve, so the scan can
never fire).  The public validated API is unchanged and remains the
reference behavior; ``tests/test_profile_reference.py`` checks both paths
against a brute-force model under randomized op sequences.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Tuple

from ..obs import counters as _counters


class ProfileError(RuntimeError):
    """Over-subscription or malformed interval — indicates a scheduler bug."""


class ReservationProfile:
    """Piecewise-constant available-node timeline for a ``size``-node cluster."""

    __slots__ = ("size", "times", "avail")

    def __init__(self, size: int, start_time: float = 0.0) -> None:
        if size <= 0:
            raise ValueError(f"profile size must be positive, got {size}")
        self.size = size
        self.times: List[float] = [start_time]
        self.avail: List[int] = [size]

    @classmethod
    def from_occupations(
        cls,
        size: int,
        origin: float,
        occupations: "Iterable[Tuple[int, float]]",
    ) -> "ReservationProfile":
        """Profile with ``(nodes, end)`` occupations all starting at
        ``origin`` — the "running jobs" baseline that rebuild-style
        schedulers construct at every event.  One O(n log n) pass instead
        of n incremental reserves; the result is byte-identical (the
        coalesced representation of a piecewise function is unique).
        """
        by_end = {}
        busy = 0
        for nodes, end in occupations:
            busy += nodes
            if end in by_end:
                by_end[end] += nodes
            else:
                by_end[end] = nodes
        if busy > size:
            raise ProfileError(
                f"occupations over-subscribe the profile: {busy} > {size}"
            )
        c = _counters.ACTIVE
        if c is not None:
            c.hit("profile.from_occupations")
        p = cls.__new__(cls)
        p.size = size
        times = [origin]
        avail = [size - busy]
        level = size - busy
        for end in sorted(by_end):
            if end <= origin:
                raise ProfileError(
                    f"occupation end {end} not after origin {origin}"
                )
            level += by_end[end]
            times.append(end)
            avail.append(level)
        p.times = times
        p.avail = avail
        return p

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def available_at(self, t: float) -> int:
        """Available nodes at time ``t`` (t must be >= the profile origin)."""
        i = bisect_right(self.times, t) - 1
        if i < 0:
            raise ValueError(f"time {t} precedes profile origin {self.times[0]}")
        return self.avail[i]

    def min_available(self, start: float, end: float) -> int:
        """Minimum availability over [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        times = self.times
        avail = self.avail
        i = bisect_right(times, start) - 1
        if i < 0:
            i = 0
        n = len(times)
        lo = avail[i]
        i += 1
        while i < n and times[i] < end:
            a = avail[i]
            if a < lo:
                lo = a
            i += 1
        return lo

    def earliest_fit(self, nodes: int, duration: float, earliest: float) -> float:
        """Earliest start >= ``earliest`` where ``nodes`` are free for
        ``duration`` seconds.

        Always succeeds for nodes <= size because the final segment is
        unbounded.
        """
        if nodes > self.size:
            raise ProfileError(f"request for {nodes} nodes exceeds size {self.size}")
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        c = _counters.ACTIVE
        if c is not None:
            c.hit("profile.earliest_fit")
        times = self.times
        avail = self.avail
        if earliest < times[0]:
            earliest = times[0]
        j = bisect_right(times, earliest) - 1
        if j < 0:
            j = 0
        n = len(times)
        anchor = earliest
        end_needed = anchor + duration
        while True:
            if avail[j] < nodes:
                # blocked: restart the window after this segment
                j += 1
                if j >= n:  # cannot happen: last segment has full size... unless
                    raise ProfileError(
                        "unbounded tail segment has insufficient nodes; "
                        "profile is over-committed"
                    )
                anchor = times[j]
                end_needed = anchor + duration
                continue
            # segment j satisfies the request; does the window reach duration?
            j += 1
            if j >= n or times[j] >= end_needed:
                return anchor

    # -- mutation ----------------------------------------------------------------

    def _ensure_breakpoint(self, t: float) -> int:
        """Make ``t`` a segment boundary; return its index."""
        times = self.times
        i = bisect_right(times, t) - 1
        if i < 0:
            raise ValueError(f"time {t} precedes profile origin {times[0]}")
        if times[i] == t:
            return i
        times.insert(i + 1, t)
        self.avail.insert(i + 1, self.avail[i])
        return i + 1

    def _apply_span(self, start: float, end: float, delta: int) -> None:
        """Add ``delta`` over [start, end) and re-merge the two boundaries.

        Interior segments keep their pairwise differences under a uniform
        delta, so only the boundary pairs can become equal; checking those
        two spots keeps the profile permanently coalesced.  Breakpoint
        creation is inlined: this is the single hottest function in the
        simulator.
        """
        times = self.times
        avail = self.avail
        i = bisect_right(times, start) - 1
        if i < 0:
            raise ValueError(f"time {start} precedes profile origin {times[0]}")
        if times[i] != start:
            i += 1
            times.insert(i, start)
            avail.insert(i, avail[i - 1])
        j = bisect_right(times, end, i) - 1
        if times[j] != end:
            j += 1
            times.insert(j, end)
            avail.insert(j, avail[j - 1])
        for k in range(i, j):
            avail[k] += delta
        if avail[j - 1] == avail[j]:
            del times[j]
            del avail[j]
        if i > 0 and avail[i - 1] == avail[i]:
            del times[i]
            del avail[i]

    def _apply(self, start: float, end: float, delta: int) -> None:
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        # validate before touching the structure, so a raise leaves the
        # profile byte-identical (no stray breakpoints)
        lo = self.min_available(start, end)
        if lo + delta < 0:
            raise ProfileError(
                f"over-subscription on [{start}, {end}): "
                f"{lo} available, delta {delta}"
            )
        if delta > 0:
            times = self.times
            avail = self.avail
            i = bisect_right(times, start) - 1
            if i < 0:
                i = 0
            mx = 0
            n = len(times)
            while i < n and times[i] < end:
                if avail[i] > mx:
                    mx = avail[i]
                i += 1
            if mx + delta > self.size:
                raise ProfileError(
                    f"release beyond capacity on [{start}, {end}): "
                    f"{mx} + {delta} > {self.size}"
                )
        self._apply_span(start, end, delta)

    def reserve(self, start: float, end: float, nodes: int) -> None:
        """Commit ``nodes`` over [start, end)."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        c = _counters.ACTIVE
        if c is not None:
            c.hit("profile.reserve")
        self._apply(start, end, -nodes)

    def release(self, start: float, end: float, nodes: int) -> None:
        """Undo a prior ``reserve`` of the same rectangle."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        c = _counters.ACTIVE
        if c is not None:
            c.hit("profile.release")
        self._apply(start, end, +nodes)

    def reserve_fitted(self, start: float, end: float, nodes: int) -> None:
        """Trusted fast path: commit a rectangle known to fit.

        Callers must have obtained ``start`` from :meth:`earliest_fit` (or
        otherwise guaranteed ``min_available(start, end) >= nodes``); the
        over-subscription pre-scan is skipped.  Misuse is caught by
        :meth:`check_invariants` and the differential test suite, not here.
        """
        c = _counters.ACTIVE
        if c is not None:
            c.hit("profile.reserve_fitted")
        self._apply_span(start, end, -nodes)

    def release_reserved(self, start: float, end: float, nodes: int) -> None:
        """Trusted fast path: undo a rectangle known to be reserved."""
        c = _counters.ACTIVE
        if c is not None:
            c.hit("profile.release_reserved")
        self._apply_span(start, end, nodes)

    def coalesce(self) -> None:
        """Merge adjacent segments with equal availability.

        Mutations keep the profile coalesced, so this scans (O(segments),
        no allocation) and only rebuilds if a stray pair exists — it stays
        cheap to call defensively.
        """
        avail = self.avail
        n = len(avail)
        for i in range(1, n):
            if avail[i] == avail[i - 1]:
                break
        else:
            return
        times = self.times
        nt: List[float] = times[:i]
        na: List[int] = avail[:i]
        for k in range(i, n):
            a = avail[k]
            if a == na[-1]:
                continue
            nt.append(times[k])
            na.append(a)
        self.times = nt
        self.avail = na

    def advance(self, now: float) -> None:
        """Forget history before ``now`` (keeps the structure small)."""
        times = self.times
        i = bisect_right(times, now) - 1
        if i <= 0:
            return
        avail = self.avail
        del times[:i]
        del avail[:i]
        times[0] = now
        # trimming can leave the new head equal to its successor (the old
        # head differed only in the forgotten past); merge here instead of
        # waiting for a coalesce pass
        while len(avail) > 1 and avail[0] == avail[1]:
            del times[1]
            del avail[1]

    # -- introspection -------------------------------------------------------------

    def segments(self) -> List[Tuple[float, float, int]]:
        """(start, end, avail) triples; the last end is +inf."""
        out = []
        for i, (t, a) in enumerate(zip(self.times, self.avail)):
            end = self.times[i + 1] if i + 1 < len(self.times) else float("inf")
            out.append((t, end, a))
        return out

    def check_invariants(self) -> None:
        if len(self.times) != len(self.avail):
            raise ProfileError("times/avail length mismatch")
        for a, b in zip(self.times, self.times[1:]):
            if b <= a:
                raise ProfileError(f"times not strictly increasing: {a} !< {b}")
        for a in self.avail:
            if not (0 <= a <= self.size):
                raise ProfileError(f"availability {a} outside [0, {self.size}]")
        if self.avail[-1] != self.size:
            raise ProfileError(
                f"unbounded tail must have full availability, got {self.avail[-1]}"
            )

    def __repr__(self) -> str:
        segs = ", ".join(f"[{t:.0f},{'inf' if e == float('inf') else f'{e:.0f}'})={a}"
                         for t, e, a in self.segments()[:6])
        more = "..." if len(self.times) > 6 else ""
        return f"ReservationProfile(size={self.size}, {segs}{more})"
