"""Simulation outputs.

A :class:`SimulationResult` bundles everything downstream metrics need:
the completed job list (with start/end times filled in), the cluster size,
the simulated horizon, and any per-job side channels observers recorded
(e.g. fair-start times keyed by metric name).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from .job import Job, JobState


@dataclass
class SimulationResult:
    jobs: List[Job]
    cluster_size: int
    end_time: float
    events_processed: int = 0
    # side channels: metric name -> {job_id -> value}
    series: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        incomplete = [j.id for j in self.jobs if j.state is not JobState.COMPLETED]
        if incomplete:
            raise ValueError(
                f"{len(incomplete)} jobs did not complete (first: {incomplete[:5]})"
            )

    @property
    def makespan(self) -> float:
        """Equation 3: max completion - min start."""
        if not self.jobs:
            return 0.0
        return max(j.end_time for j in self.jobs) - min(j.start_time for j in self.jobs)

    @property
    def total_work(self) -> float:
        """Executed processor-seconds (kill modes can truncate runtimes)."""
        return sum(j.nodes * (j.end_time - j.start_time) for j in self.jobs)

    def job_by_id(self) -> Dict[int, Job]:
        return {j.id: j for j in self.jobs}

    def fst(self, metric: str = "hybrid") -> Dict[int, float]:
        """Fair-start times recorded by a fairness observer."""
        key = f"fst_{metric}"
        if key not in self.series:
            raise KeyError(
                f"no '{key}' series; attach the matching observer before running"
            )
        return self.series[key]

    def digest(self) -> str:
        """Canonical content hash of the simulation outcome.

        Covers every per-job time, every observer series value, and the
        event count, each rendered with ``repr`` (exact float round-trip),
        so two runs agree iff they are byte-identical.  This is the
        equality oracle for the performance work: optimized and reference
        code paths must produce the same digest on the same inputs.
        """
        h = hashlib.sha256()
        h.update(f"size={self.cluster_size};end={self.end_time!r};"
                 f"events={self.events_processed}".encode())
        for j in sorted(self.jobs, key=lambda j: j.id):
            h.update(
                f"|{j.id}:{j.submit_time!r}:{j.nodes}:{j.start_time!r}:"
                f"{j.end_time!r}:{j.state.value}".encode()
            )
        for name in sorted(self.series):
            h.update(f"|series:{name}".encode())
            vals = self.series[name]
            for k in sorted(vals):
                h.update(f"|{k}:{vals[k]!r}".encode())
        return h.hexdigest()
