"""No-backfill list scheduler over per-node free times.

This is the schedule builder behind the paper's hybrid fairness metric
(Section 4.1): it keeps one completion time per node; a job needing *N*
nodes starts at the earliest instant *N* nodes are simultaneously free
(the N-th smallest free time), and those N earliest-free nodes are then
busy until start + runtime.

Jobs are placed strictly in the order given, but a later job may still
start before an earlier one if enough *other* nodes free up sooner — the
paper's "fewer restraints than a no backfill scheduler".  Holes can never
be exploited (node availability is monotone per node), making it more
restrictive than conservative backfilling.

:class:`ListScheduler` keeps the full per-node vector (NumPy
``partition``/``argpartition``, O(size) per placement) and is the readable
reference implementation.  :class:`FreeTimeline` is the equivalent compact
form used on the simulator hot path: per-node free times are heavily
duplicated (at most one distinct value per running/placed job), so it
stores a sorted (time, count) multiset and places in O(distinct values)
— independent of machine size.  The two produce byte-identical start
times; ``tests/test_listsched.py`` checks them against each other.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..obs import counters as _counters
from .job import Job


class FreeTimeline:
    """Sorted (free-time, node-count) multiset for a ``size``-node machine.

    Semantically identical to :class:`ListScheduler`: a job needing *N*
    nodes starts at the *N*-th smallest free time (ties between equal free
    times are interchangeable, so only the multiset matters), and those
    nodes become free again at start + duration.
    """

    __slots__ = ("size", "_times", "_counts")

    def __init__(self, size: int, now: float = 0.0) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self._times: List[float] = [float(now)]
        self._counts: List[int] = [size]

    @classmethod
    def from_pairs(
        cls,
        size: int,
        now: float,
        running: Iterable[Tuple[int, float]],
    ) -> "FreeTimeline":
        """Build the machine state from (nodes, free-at) pairs; remaining
        nodes are free at ``now``.  Raises if over-subscribed."""
        by_time = {}
        busy = 0
        now = float(now)
        for nodes, end in running:
            end = float(end)
            if end < now:
                end = now
            busy += nodes
            if end in by_time:
                by_time[end] += nodes
            else:
                by_time[end] = nodes
        if busy > size:
            raise ValueError(
                f"running jobs over-subscribe the machine: {busy} > {size}"
            )
        free = size - busy
        if free:
            if now in by_time:
                by_time[now] += free
            else:
                by_time[now] = free
        c = _counters.ACTIVE
        if c is not None:
            c.hit("listsched.rebuild")
        tl = cls.__new__(cls)
        tl.size = size
        tl._times = sorted(by_time)
        tl._counts = [by_time[t] for t in tl._times]
        return tl

    def place(self, nodes: int, duration: float, earliest: float = 0.0) -> float:
        """Place one job; returns its start time and occupies the nodes."""
        if nodes <= 0 or nodes > self.size:
            raise ValueError(f"cannot place {nodes} nodes on {self.size}-node machine")
        if duration < 0:
            raise ValueError("duration must be >= 0")
        c = _counters.ACTIVE
        if c is not None:
            c.hit("listsched.place")
        times = self._times
        counts = self._counts
        # the nodes-th smallest free time = max over the nodes earliest-free
        acc = 0
        i = 0
        while acc < nodes:
            acc += counts[i]
            i += 1
        start = times[i - 1]
        if earliest > start:
            start = earliest
        # consume the nodes earliest-free entries...
        if acc == nodes:
            del times[:i]
            del counts[:i]
        else:
            del times[: i - 1]
            del counts[: i - 1]
            counts[0] = acc - nodes
        # ...and return them at start + duration
        t = start + duration
        j = bisect_left(times, t)
        if j < len(times) and times[j] == t:
            counts[j] += nodes
        else:
            times.insert(j, t)
            counts.insert(j, nodes)
        return start

    def makespan(self) -> float:
        return self._times[-1]

    def free_time_values(self) -> List[float]:
        """The full per-node free-time multiset, sorted (for tests)."""
        out: List[float] = []
        for t, c in zip(self._times, self._counts):
            out.extend([t] * c)
        return out

    def copy(self) -> "FreeTimeline":
        clone = FreeTimeline.__new__(FreeTimeline)
        clone.size = self.size
        clone._times = list(self._times)
        clone._counts = list(self._counts)
        return clone


class ListScheduler:
    """Per-node free-time list scheduler for a ``size``-node machine."""

    __slots__ = ("size", "free_times")

    def __init__(self, size: int, now: float = 0.0) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.free_times = np.full(size, float(now), dtype=np.float64)

    @classmethod
    def from_running(
        cls,
        size: int,
        now: float,
        running: Iterable[Tuple[int, float]],
    ) -> "ListScheduler":
        """Build the machine state from running jobs.

        ``running`` yields (nodes, expected_end) pairs; remaining nodes are
        free at ``now``.  Raises if the running set over-subscribes the
        machine.
        """
        sched = cls(size, now)
        pos = 0
        for nodes, end in running:
            if pos + nodes > size:
                raise ValueError(
                    f"running jobs over-subscribe the machine: {pos + nodes} > {size}"
                )
            sched.free_times[pos : pos + nodes] = max(end, now)
            pos += nodes
        return sched

    def place(self, nodes: int, duration: float, earliest: float = 0.0) -> float:
        """Place one job; returns its start time and occupies the nodes."""
        if nodes <= 0 or nodes > self.size:
            raise ValueError(f"cannot place {nodes} nodes on {self.size}-node machine")
        if duration < 0:
            raise ValueError("duration must be >= 0")
        ft = self.free_times
        if nodes == self.size:
            start = max(float(ft.max()), earliest)
            ft[:] = start + duration
            return start
        # earliest instant `nodes` nodes are simultaneously free = the
        # nodes-th smallest free time
        idx = np.argpartition(ft, nodes - 1)[:nodes]
        start = max(float(ft[idx].max()), earliest)
        ft[idx] = start + duration
        return start

    def start_time_of(
        self,
        jobs: Sequence[Job],
        target_id: int,
        now: float,
        use_wcl: bool = False,
    ) -> float:
        """Place ``jobs`` in order and return the start time of the job whose
        id is ``target_id``.

        Placement stops at the target: in list scheduling, jobs later in the
        order cannot change an earlier job's start.  Raises KeyError if the
        target is not present.
        """
        for job in jobs:
            dur = job.wcl if use_wcl else job.runtime
            start = self.place(job.nodes, dur, earliest=now)
            if job.id == target_id:
                return start
        raise KeyError(f"job {target_id} not in placement order")

    def schedule_all(
        self,
        jobs: Sequence[Job],
        now: float,
        use_wcl: bool = False,
    ) -> dict[int, float]:
        """Place every job in order; map of job id -> start time."""
        out: dict[int, float] = {}
        for job in jobs:
            dur = job.wcl if use_wcl else job.runtime
            out[job.id] = self.place(job.nodes, dur, earliest=now)
        return out

    def makespan(self) -> float:
        return float(self.free_times.max())

    def copy(self) -> "ListScheduler":
        clone = ListScheduler.__new__(ListScheduler)
        clone.size = self.size
        clone.free_times = self.free_times.copy()
        return clone
