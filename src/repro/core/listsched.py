"""No-backfill list scheduler over per-node free times.

This is the schedule builder behind the paper's hybrid fairness metric
(Section 4.1): it keeps one completion time per node; a job needing *N*
nodes starts at the earliest instant *N* nodes are simultaneously free
(the N-th smallest free time), and those N earliest-free nodes are then
busy until start + runtime.

Jobs are placed strictly in the order given, but a later job may still
start before an earlier one if enough *other* nodes free up sooner — the
paper's "fewer restraints than a no backfill scheduler".  Holes can never
be exploited (node availability is monotone per node), making it more
restrictive than conservative backfilling.

The hot path is NumPy ``partition``/``argpartition`` on the free-time
vector: O(size) per placement instead of O(size log size).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .job import Job


class ListScheduler:
    """Per-node free-time list scheduler for a ``size``-node machine."""

    __slots__ = ("size", "free_times")

    def __init__(self, size: int, now: float = 0.0) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.free_times = np.full(size, float(now), dtype=np.float64)

    @classmethod
    def from_running(
        cls,
        size: int,
        now: float,
        running: Iterable[Tuple[int, float]],
    ) -> "ListScheduler":
        """Build the machine state from running jobs.

        ``running`` yields (nodes, expected_end) pairs; remaining nodes are
        free at ``now``.  Raises if the running set over-subscribes the
        machine.
        """
        sched = cls(size, now)
        pos = 0
        for nodes, end in running:
            if pos + nodes > size:
                raise ValueError(
                    f"running jobs over-subscribe the machine: {pos + nodes} > {size}"
                )
            sched.free_times[pos : pos + nodes] = max(end, now)
            pos += nodes
        return sched

    def place(self, nodes: int, duration: float, earliest: float = 0.0) -> float:
        """Place one job; returns its start time and occupies the nodes."""
        if nodes <= 0 or nodes > self.size:
            raise ValueError(f"cannot place {nodes} nodes on {self.size}-node machine")
        if duration < 0:
            raise ValueError("duration must be >= 0")
        ft = self.free_times
        if nodes == self.size:
            start = max(float(ft.max()), earliest)
            ft[:] = start + duration
            return start
        # earliest instant `nodes` nodes are simultaneously free = the
        # nodes-th smallest free time
        idx = np.argpartition(ft, nodes - 1)[:nodes]
        start = max(float(ft[idx].max()), earliest)
        ft[idx] = start + duration
        return start

    def start_time_of(
        self,
        jobs: Sequence[Job],
        target_id: int,
        now: float,
        use_wcl: bool = False,
    ) -> float:
        """Place ``jobs`` in order and return the start time of the job whose
        id is ``target_id``.

        Placement stops at the target: in list scheduling, jobs later in the
        order cannot change an earlier job's start.  Raises KeyError if the
        target is not present.
        """
        for job in jobs:
            dur = job.wcl if use_wcl else job.runtime
            start = self.place(job.nodes, dur, earliest=now)
            if job.id == target_id:
                return start
        raise KeyError(f"job {target_id} not in placement order")

    def schedule_all(
        self,
        jobs: Sequence[Job],
        now: float,
        use_wcl: bool = False,
    ) -> dict[int, float]:
        """Place every job in order; map of job id -> start time."""
        out: dict[int, float] = {}
        for job in jobs:
            dur = job.wcl if use_wcl else job.runtime
            out[job.id] = self.place(job.nodes, dur, earliest=now)
        return out

    def makespan(self) -> float:
        return float(self.free_times.max())

    def copy(self) -> "ListScheduler":
        clone = ListScheduler.__new__(ListScheduler)
        clone.size = self.size
        clone.free_times = self.free_times.copy()
        return clone
