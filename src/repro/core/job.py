"""Job model for the parallel-job scheduling simulator.

A job is the unit the scheduler reasons about: a rectangle in the 2D
(processors x time) chart whose width is the requested node count and whose
length is the *user estimated* runtime (the wall-clock limit, WCL).  The
actual runtime is only discovered by the simulator when the job completes.

Jobs created by the 72-hour runtime-limit transform form *chunk chains*: the
original trace job is the parent, and each chunk is an ordinary job carrying
``parent_id``/``chunk_index`` so metrics can be aggregated either per
scheduler-visible job or per original job.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field, replace
from typing import Optional

if sys.version_info >= (3, 10):
    # __slots__ halves per-job memory and speeds attribute access on the
    # simulator hot paths; the keyword is 3.10+, and 3.9 (the oldest
    # supported interpreter) silently falls back to dict-backed instances.
    _job_dataclass = dataclass(slots=True)
else:  # pragma: no cover - exercised only on Python 3.9
    _job_dataclass = dataclass


class JobState(enum.Enum):
    """Lifecycle of a job inside one simulation."""

    PENDING = "pending"    # not yet submitted (arrival event still queued)
    QUEUED = "queued"      # submitted, waiting for nodes
    RUNNING = "running"
    COMPLETED = "completed"


@_job_dataclass
class Job:
    """A single parallel job.

    Times are seconds from the trace epoch (floats).  ``runtime`` is the
    actual execution time; ``wcl`` is the user-supplied wall-clock limit the
    scheduler must plan with.  Schedulers never read ``runtime``.
    """

    id: int
    submit_time: float
    nodes: int
    runtime: float
    wcl: float
    user_id: int = 0
    group_id: int = 0
    # chunk-chain bookkeeping (runtime-limit transform)
    parent_id: Optional[int] = None
    chunk_index: int = 0
    chunk_count: int = 1
    #: queue-seniority reference time: chunk continuations inherit the
    #: original job's submit time, so a split job does not restart its
    #: starvation clock with every chunk (None = use submit_time)
    seniority_time: Optional[float] = None
    # mutable simulation state
    state: JobState = field(default=JobState.PENDING, compare=False)
    start_time: Optional[float] = field(default=None, compare=False)
    end_time: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"job {self.id}: nodes must be positive, got {self.nodes}")
        if self.runtime < 0:
            raise ValueError(f"job {self.id}: runtime must be >= 0, got {self.runtime}")
        if self.wcl <= 0:
            raise ValueError(f"job {self.id}: wcl must be positive, got {self.wcl}")
        if self.submit_time < 0:
            raise ValueError(f"job {self.id}: submit_time must be >= 0")

    # -- derived quantities -------------------------------------------------

    @property
    def area(self) -> float:
        """Processor-seconds of actual work (nodes x runtime)."""
        return self.nodes * self.runtime

    @property
    def requested_area(self) -> float:
        """Processor-seconds the scheduler must budget (nodes x WCL)."""
        return self.nodes * self.wcl

    @property
    def overestimation_factor(self) -> float:
        """WCL / runtime (Figure 6/7 quantity); inf for zero-runtime jobs."""
        if self.runtime == 0:
            return float("inf")
        return self.wcl / self.runtime

    @property
    def wait_time(self) -> float:
        """Queue wait; requires the job to have started."""
        if self.start_time is None:
            raise ValueError(f"job {self.id} has not started")
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submission-to-completion time (Equation 1 numerator term)."""
        if self.end_time is None:
            raise ValueError(f"job {self.id} has not completed")
        return self.end_time - self.submit_time

    @property
    def is_chunk(self) -> bool:
        return self.parent_id is not None

    @property
    def seniority(self) -> float:
        """Time this job (or its original, for chunks) first entered the
        system; drives starvation-queue eligibility and FCFS order."""
        return self.seniority_time if self.seniority_time is not None else self.submit_time

    # -- helpers ------------------------------------------------------------

    def fresh_copy(self) -> "Job":
        """A copy with simulation state reset (for running the same workload
        through several schedulers)."""
        return replace(
            self,
            state=JobState.PENDING,
            start_time=None,
            end_time=None,
        )

    def expected_end(self, now: float) -> float:
        """Scheduler-visible completion estimate for a running job.

        Once a job outlives its estimate the best available prediction is
        "any moment now"; production backfilling schedulers continually push
        such a job's expected end to the current time.
        """
        if self.start_time is None:
            raise ValueError(f"job {self.id} is not running")
        return max(self.start_time + self.wcl, now)

    def __repr__(self) -> str:  # compact, log-friendly
        return (
            f"Job(id={self.id}, t={self.submit_time:.0f}, n={self.nodes}, "
            f"rt={self.runtime:.0f}, wcl={self.wcl:.0f}, u={self.user_id})"
        )
