"""The stable public facade of the reproduction toolkit.

Every way of running a simulation goes through one request/handle model:
build a :class:`SimulationRequest` (policy + exactly one workload source +
canonical options), call :func:`run`, and get a :class:`SimulationHandle`
carrying the full metric bundle.  The CLI, the campaign executor, the
paper-artifact pipeline, and the scheduler service all consume this
module — the historical trio of divergent entry paths (``run_policy``,
``run_policy_with_options``, ``run_scenario``) survives only as
deprecation shims here.

Quick tour::

    import repro.api as api

    h = api.run(policy="cplant24.nomax.all", scale=0.05, seed=7)
    print(h.report())

    suite = api.compare(["fcfs.nobackfill", "easy.fairshare"], scale=0.02)

    result = api.sweep("examples/campaign.json", jobs=4)

    with api.open_session(policy="cplant24.nomax.all",
                          system_size=1024) as live:
        live.submit(jobs)
        live.advance(3600.0)
        print(live.snapshot())

Heavier subsystems (scenarios, campaign, artifacts, service) import
lazily, so ``import repro.api`` stays light.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from .core.engine import KillPolicy, Observer
from .experiments import runner as _runner
from .experiments.runner import PolicyRun, RunOptions
from .workload.generator import GeneratorConfig, generate_cplant_workload
from .workload.model import Workload
from .workload.swf import read_swf

__all__ = [
    # the request/handle model
    "SimulationRequest",
    "SimulationHandle",
    "run",
    "compare",
    # canonical option/contract types (re-exported for one-stop imports)
    "RunOptions",
    "KillPolicy",
    "Observer",
    "PolicyRun",
    "Workload",
    # orchestration surfaces
    "sweep",
    "build_artifacts",
    "open_session",
    "serve",
    # catalogs
    "list_scenarios",
    "get_scenario",
    "list_policies",
    # deprecated shims for the historical entry paths
    "run_policy",
    "run_policy_with_options",
    "run_scenario",
    "run_suite",
]


@dataclass(frozen=True)
class SimulationRequest:
    """Everything that determines one policy simulation.

    Exactly one workload source applies, checked in this order: an
    explicit :class:`Workload` object, a registered ``scenario`` name
    (with ``params`` as scenario parameters and the scenario's run-option
    defaults in effect), an ``swf`` trace path, or — when none is given —
    the calibrated synthetic CPlant trace at ``scale``/``seed``.

    ``options`` may be a canonical :class:`RunOptions` (used verbatim), a
    plain mapping (parsed by :meth:`RunOptions.from_mapping` and merged
    *over* the scenario's defaults), or ``None`` (defaults only).
    """

    policy: str = "cplant24.nomax.all"
    workload: Optional[Workload] = None
    scenario: Optional[str] = None
    swf: Optional[str] = None
    scale: float = 0.1
    seed: int = 7
    params: Tuple[Tuple[str, object], ...] = ()
    options: Union[RunOptions, Mapping[str, object], None] = None
    observers: Tuple[Observer, ...] = ()

    def __post_init__(self) -> None:
        sources = [
            name for name in ("workload", "scenario", "swf")
            if getattr(self, name) is not None
        ]
        if len(sources) > 1:
            raise ValueError(
                f"give at most one workload source, got {sources}"
            )
        object.__setattr__(
            self, "params", tuple(sorted(dict(self.params).items()))
        )
        object.__setattr__(self, "observers", tuple(self.observers))
        if self.params and self.scenario is None:
            raise ValueError(
                "params are scenario parameters; they need a scenario "
                "workload source"
            )

    # -- resolution ------------------------------------------------------------

    def resolve_workload(self) -> Workload:
        """Build (or pass through) the workload this request names."""
        if self.workload is not None:
            return self.workload
        if self.scenario is not None:
            from .scenarios import get_scenario as _get

            return _get(self.scenario).build(
                seed=self.seed, **dict(self.params)
            )
        if self.swf is not None:
            return read_swf(self.swf)
        return generate_cplant_workload(
            GeneratorConfig(scale=self.scale), seed=self.seed
        )

    def resolve_options(self) -> RunOptions:
        """Canonical engine options, with scenario defaults applied."""
        defaults: Dict[str, object] = {}
        if self.scenario is not None:
            from .scenarios import get_scenario as _get

            defaults = dict(_get(self.scenario).options)
        opts = self.options
        if opts is None:
            return RunOptions.from_mapping(defaults)
        if isinstance(opts, RunOptions):
            return opts
        if isinstance(opts, Mapping):
            return RunOptions.from_mapping({**defaults, **dict(opts)})
        raise ValueError(
            f"options must be RunOptions, a mapping, or None; "
            f"got {type(opts).__name__}"
        )


class SimulationHandle:
    """The outcome of one request: the request itself plus the full
    :class:`PolicyRun` metric bundle, with attribute delegation so every
    consumer of the historical ``PolicyRun`` shape keeps working
    (``handle.summary``, ``handle.fairness``, ``handle.result`` ...)."""

    __slots__ = ("request", "run")

    def __init__(self, request: SimulationRequest, run: PolicyRun) -> None:
        self.request = request
        self.run = run

    def __getattr__(self, name: str):
        return getattr(self.run, name)

    def __repr__(self) -> str:
        return (
            f"SimulationHandle(policy={self.run.policy!r}, "
            f"jobs={self.run.summary.n_jobs}, digest={self.digest()[:12]}...)"
        )

    def digest(self) -> str:
        """Content digest of the simulation outcome (the equality oracle)."""
        return self.run.result.digest()

    def report(self) -> str:
        """The standard per-policy text report (shared by the CLI)."""
        s, f = self.run.summary, self.run.fairness
        return "\n".join([
            f"policy: {self.run.policy}",
            f"  jobs completed        : {s.n_jobs}",
            f"  avg wait              : {s.avg_wait:,.0f} s",
            f"  avg turnaround (Eq.1) : {s.avg_turnaround:,.0f} s",
            f"  avg bounded slowdown  : {s.avg_slowdown:,.1f}",
            f"  utilization (Eq.2)    : {100 * s.utilization:.1f} %",
            f"  loss of capacity(Eq.4): {100 * self.run.loss_of_capacity:.2f} %",
            f"  percent unfair jobs   : {100 * f.percent_unfair:.2f} %",
            f"  avg miss time (Eq.5)  : {f.average_miss_time:,.0f} s",
        ])


def run(
    request: Optional[SimulationRequest] = None,
    **kwargs: object,
) -> SimulationHandle:
    """Execute one simulation request; keywords build or refine one.

    ``api.run(policy="easy.fairshare", scale=0.05)`` is shorthand for
    ``api.run(SimulationRequest(policy=..., scale=...))``; passing both a
    request and keywords refines the request (``dataclasses.replace``).
    """
    if request is None:
        req = SimulationRequest(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        req = replace(request, **kwargs)  # type: ignore[arg-type]
    else:
        req = request
    wl = req.resolve_workload()
    opts = req.resolve_options()
    prun = _runner.run_policy(
        wl,
        req.policy,
        observers=list(req.observers) or None,
        **opts.as_run_kwargs(),
    )
    return SimulationHandle(req, prun)


def compare(
    policies: Union[str, Sequence[str]],
    progress: bool = False,
    **kwargs: object,
) -> Dict[str, SimulationHandle]:
    """Run several policies on one workload (resolved once); keywords are
    :class:`SimulationRequest` fields minus ``policy``."""
    keys = [policies] if isinstance(policies, str) else list(policies)
    if not keys:
        raise ValueError("compare needs at least one policy")
    base = SimulationRequest(policy=keys[0], **kwargs)  # type: ignore[arg-type]
    wl = base.resolve_workload()
    opts = base.resolve_options()
    out: Dict[str, SimulationHandle] = {}
    for key in keys:
        if progress:
            print(f"[repro] simulating {key} on {wl.name} ...", flush=True)
        req = replace(base, policy=key, workload=wl, scenario=None,
                      swf=None, params=(), options=opts)
        prun = _runner.run_policy(
            wl, key,
            observers=list(req.observers) or None,
            **opts.as_run_kwargs(),
        )
        out[key] = SimulationHandle(req, prun)
    return out


# -- orchestration surfaces ----------------------------------------------------


def sweep(spec, **kwargs):
    """Run a campaign sweep (parallel, cached, resumable).

    ``spec`` may be a :class:`repro.campaign.CampaignSpec`, a plain dict in
    spec-JSON shape, or a path to a spec JSON file.  Remaining keywords go
    to :func:`repro.campaign.run_campaign` (``jobs``, ``cache``,
    ``retry``, ``resume``, ``keep_going``, ``progress`` ...).
    """
    from .campaign import CampaignSpec, run_campaign

    if isinstance(spec, CampaignSpec):
        resolved = spec
    elif isinstance(spec, Mapping):
        resolved = CampaignSpec.from_dict(spec)
    else:
        resolved = CampaignSpec.from_json(spec)
    return run_campaign(resolved, **kwargs)


def build_artifacts(**kwargs):
    """Build paper artifacts; see :func:`repro.artifacts.build_artifacts`."""
    from .artifacts import build_artifacts as _build

    return _build(**kwargs)


def open_session(
    request: Optional[SimulationRequest] = None,
    *,
    system_size: Optional[int] = None,
    **kwargs: object,
):
    """Open a live incremental simulation (the in-process service core).

    Returns a :class:`repro.service.LiveSimulation`: submit jobs as they
    arrive, advance the clock, snapshot per-user fairness, fork warm
    what-if variants, finish for the full metric bundle.  With
    ``system_size`` (and no workload source) the session starts empty.
    """
    from .service import LiveSimulation

    if request is None:
        req = SimulationRequest(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        req = replace(request, **kwargs)  # type: ignore[arg-type]
    else:
        req = request
    return LiveSimulation.from_request(req, system_size=system_size)


def serve(host: str = "127.0.0.1", port: int = 0, **kwargs):
    """Run the multi-tenant scheduler server (blocking); see
    :func:`repro.service.serve` and docs/SERVICE.md."""
    from .service import serve as _serve

    return _serve(host=host, port=port, **kwargs)


# -- catalogs ------------------------------------------------------------------


def list_scenarios():
    """Every registered scenario recipe, in catalog order."""
    from .scenarios import all_scenarios

    return tuple(all_scenarios())


def get_scenario(name: str):
    """One registered scenario by name (KeyError lists known names)."""
    from .scenarios import get_scenario as _get

    return _get(name)


def list_policies() -> Dict[str, object]:
    """Every registered policy key -> its spec (description, factory...)."""
    from .sched.registry import REGISTRY

    return dict(REGISTRY)


# -- deprecated shims ----------------------------------------------------------


def _deprecated(old: str, instead: str) -> None:
    warnings.warn(
        f"repro.api.{old} is deprecated; {instead}",
        DeprecationWarning,
        stacklevel=3,
    )


def run_policy(workload: Workload, policy_key: str, **kwargs) -> PolicyRun:
    """Deprecated: build a :class:`SimulationRequest` and call :func:`run`."""
    _deprecated("run_policy",
                "use run(policy=..., workload=...) instead")
    return _runner.run_policy(workload, policy_key, **kwargs)


def run_policy_with_options(
    workload: Workload, policy_key: str, options: RunOptions
) -> PolicyRun:
    """Deprecated: pass ``options`` to a :class:`SimulationRequest`."""
    _deprecated("run_policy_with_options",
                "use run(policy=..., workload=..., options=...) instead")
    return _runner.run_policy_with_options(workload, policy_key, options)


def run_scenario(
    scenario: str, policies, **kwargs
) -> Dict[str, PolicyRun]:
    """Deprecated: use :func:`compare` with ``scenario=...``."""
    _deprecated("run_scenario",
                "use compare(policies, scenario=...) instead")
    return _runner.run_scenario(scenario, policies, **kwargs)


def run_suite(
    workload: Workload, policies: Iterable[str], **kwargs
) -> Dict[str, PolicyRun]:
    """Deprecated: use :func:`compare` with ``workload=...``."""
    _deprecated("run_suite",
                "use compare(policies, workload=...) instead")
    return _runner.run_suite(workload, list(policies), **kwargs)
