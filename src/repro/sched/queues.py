"""Queue ordering policies.

Two orders matter in the paper: FCFS (arrival order; the starvation queue
and the classic baselines) and fairshare (decayed per-user usage; the main
CPlant queue).  The size-based orders (shortest/widest/SRPT) drive the
extension policies of the fairness matrix.  A policy is just a callable
producing a sorted job list; all are deterministic with (submit_time, id)
tie-breaks.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..core.job import Job
from .fairshare import FairshareTracker

#: ordering callable signature: (jobs, now) -> sorted list
OrderingPolicy = Callable[[Iterable[Job], float], List[Job]]


def fcfs_order(jobs: Iterable[Job], now: float) -> List[Job]:
    """First-come-first-serve: by submit time, then id."""
    return sorted(jobs, key=lambda j: (j.submit_time, j.id))


class FairshareOrder:
    """Fairshare order bound to a live usage tracker.

    A callable object rather than a closure so that a deep-copied
    scheduler (``Engine.fork()``) re-binds to its *own* tracker copy —
    ``copy.deepcopy`` treats plain functions as atomic, which would leave
    a closure pointing at the original tracker.
    """

    __slots__ = ("tracker",)

    def __init__(self, tracker: FairshareTracker) -> None:
        self.tracker = tracker

    def __call__(self, jobs: Iterable[Job], now: float) -> List[Job]:
        return self.tracker.order(jobs, now)


def make_fairshare_order(tracker: FairshareTracker) -> OrderingPolicy:
    """Fairshare order bound to a live usage tracker."""
    return FairshareOrder(tracker)


def widest_first_order(jobs: Iterable[Job], now: float) -> List[Job]:
    """Widest-job-first (extension policy, not in the paper's evaluation)."""
    return sorted(jobs, key=lambda j: (-j.nodes, j.submit_time, j.id))


def shortest_first_order(jobs: Iterable[Job], now: float) -> List[Job]:
    """Shortest-estimate-first (extension policy)."""
    return sorted(jobs, key=lambda j: (j.wcl, j.submit_time, j.id))


class SrptOrder:
    """Shortest-remaining-estimate-first bound to a chain-tail oracle.

    A queued job's remaining estimate is its own wall-clock limit plus the
    estimates of the chunks still behind it in a runtime-limit chain, so a
    split job that already burned most of its chain ranks ahead of a fresh
    one of the same total length.  Both components are fixed once the job
    is enqueued, so the order only changes with queue membership.

    A callable object for the same fork-safety reason as
    :class:`FairshareOrder`: the oracle owner must follow the scheduler
    through ``copy.deepcopy``.
    """

    __slots__ = ("scheduler",)

    def __init__(self, scheduler) -> None:
        self.scheduler = scheduler

    def __call__(self, jobs: Iterable[Job], now: float) -> List[Job]:
        chain_tail = self.scheduler.engine.chain_tail_wcl
        return sorted(
            jobs, key=lambda j: (j.wcl + chain_tail(j), j.submit_time, j.id)
        )


def make_srpt_order(chain_tail: Callable[[Job], float]) -> OrderingPolicy:
    """Shortest-remaining-estimate-first over a plain chain-tail callable
    (kept for direct use; schedulers use :class:`SrptOrder`)."""

    def order(jobs: Iterable[Job], now: float) -> List[Job]:
        return sorted(
            jobs, key=lambda j: (j.wcl + chain_tail(j), j.submit_time, j.id)
        )

    return order
