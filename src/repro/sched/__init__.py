"""Scheduling policies: the CPlant baseline, its fairness-directed
variants, and the conservative-backfilling family."""

from .base import BaseScheduler
from .conservative import ConservativeScheduler
from .depthk import DepthKScheduler
from .dynamic import DynamicReservationScheduler
from .easy import EasyBackfillScheduler, head_reservation
from .fairshare import DAY, FairshareTracker
from .nobackfill import NoBackfillScheduler
from .noguarantee import NoGuaranteeScheduler
from .queues import (
    fcfs_order,
    make_fairshare_order,
    shortest_first_order,
    widest_first_order,
)
from .registry import (
    CONSERVATIVE_POLICIES,
    MINOR_POLICIES,
    PAPER_POLICIES,
    REGISTRY,
    PolicySpec,
    get_policy,
    policy_names,
)

__all__ = [
    "BaseScheduler",
    "CONSERVATIVE_POLICIES",
    "ConservativeScheduler",
    "DAY",
    "DepthKScheduler",
    "DynamicReservationScheduler",
    "EasyBackfillScheduler",
    "FairshareTracker",
    "MINOR_POLICIES",
    "NoBackfillScheduler",
    "NoGuaranteeScheduler",
    "PAPER_POLICIES",
    "PolicySpec",
    "REGISTRY",
    "fcfs_order",
    "get_policy",
    "head_reservation",
    "make_fairshare_order",
    "policy_names",
    "shortest_first_order",
    "widest_first_order",
]
