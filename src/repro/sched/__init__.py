"""Scheduling policies: the CPlant baseline, its fairness-directed
variants, and the conservative-backfilling family."""

from .base import PRIORITY_POLICIES, BaseScheduler
from .conservative import ConservativeScheduler
from .depthk import DepthKScheduler
from .dynamic import DynamicReservationScheduler
from .easy import EasyBackfillScheduler, head_reservation
from .fairshare import DAY, FairshareTracker
from .nobackfill import NoBackfillScheduler
from .noguarantee import NoGuaranteeScheduler
from .queues import (
    fcfs_order,
    make_fairshare_order,
    make_srpt_order,
    shortest_first_order,
    widest_first_order,
)
from .registry import (
    CONSERVATIVE_POLICIES,
    MATRIX_POLICIES,
    MINOR_POLICIES,
    PAPER_POLICIES,
    REGISTRY,
    PolicySpec,
    get_policy,
    policy_names,
    validate_overrides,
)
from .roundrobin import RoundRobinScheduler
from .sizebased import FairSojournScheduler, VirtualFairShare

__all__ = [
    "BaseScheduler",
    "CONSERVATIVE_POLICIES",
    "ConservativeScheduler",
    "DAY",
    "DepthKScheduler",
    "DynamicReservationScheduler",
    "EasyBackfillScheduler",
    "FairSojournScheduler",
    "FairshareTracker",
    "MATRIX_POLICIES",
    "MINOR_POLICIES",
    "NoBackfillScheduler",
    "NoGuaranteeScheduler",
    "PAPER_POLICIES",
    "PRIORITY_POLICIES",
    "PolicySpec",
    "REGISTRY",
    "RoundRobinScheduler",
    "VirtualFairShare",
    "fcfs_order",
    "get_policy",
    "head_reservation",
    "make_fairshare_order",
    "make_srpt_order",
    "policy_names",
    "shortest_first_order",
    "validate_overrides",
    "widest_first_order",
]
