"""Conservative backfilling with fairshare queue priority (Section 5.3).

Every job receives an internal reservation the moment it arrives (earliest
fit in the availability profile using its wall-clock limit).  At each
scheduling event the queue is processed in fairshare priority order and
each job tries to *improve* its reservation; a reservation is never made
worse, so the arrival-time reservation is an upper bound on the wait — no
starvation queue needed.

Inaccurate user estimates make this interesting in two directions:

* jobs finishing *early* leave holes; the improvement pass ("compression")
  lets queued jobs slide into them, with the fairshare order deciding who
  gets first pick — this is where the queue priority still matters;
* jobs running *past* their estimate (CPlant allowed this) invalidate the
  profile; we then rebuild it, bumping the overrunning job's predicted end
  by ``overrun_extension`` at each event until it actually finishes, the
  standard trick in backfilling simulators.

Hot-path engineering (results are byte-identical to the straightforward
implementation; the digest regression tests enforce this):

* overrun/overdue detection reads the top of two lazily-invalidated
  min-heaps (predicted ends, reservation starts) instead of scanning the
  full dicts at every event;
* the compression pass is skipped outright when the profile cannot have
  gained availability since the last pass (no early-finish release and no
  prior in-pass movement) — re-placing every job would reproduce the same
  reservations, because a pass that moves nobody proves each job is at its
  earliest fit given all the others;
* profile mutations use the trusted ``reserve_fitted``/``release_reserved``
  fast paths (every reserve follows an ``earliest_fit``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Tuple

from ..core.job import Job
from ..core.profile import ReservationProfile
from ..obs import counters as _counters
from .base import BaseScheduler

#: float-comparison slack for "reservation time has arrived"
EPS = 1e-6


class ConservativeScheduler(BaseScheduler):
    """Conservative backfilling; ``priority`` picks the improvement order."""

    def __init__(
        self,
        priority: str = "fairshare",
        overrun_extension: float = 900.0,
        **kw,
    ) -> None:
        super().__init__(priority=priority, **kw)
        if overrun_extension <= 0:
            raise ValueError("overrun_extension must be positive")
        self.overrun_extension = overrun_extension
        self.name = f"cons.{priority}"
        self.profile: ReservationProfile | None = None
        #: queued-job reservations: job id -> (start, end)
        self.reservations: Dict[int, Tuple[float, float]] = {}
        #: running-job predicted completion times (profile occupation ends)
        self.predicted_end: Dict[int, float] = {}
        #: min-heaps over (value, job id); entries are invalidated lazily by
        #: comparing against the dicts above, so a dict update just pushes
        self._end_heap: List[Tuple[float, int]] = []
        self._res_heap: List[Tuple[float, int]] = []
        #: True iff the profile may have gained availability since the last
        #: compression pass (early-finish release, or that pass moved a job)
        self._holes_dirty = False

    def attach(self, engine) -> None:
        super().attach(engine)
        self.profile = ReservationProfile(self.cluster.size)

    # -- bookkeeping -----------------------------------------------------------

    def enqueue(self, job: Job, now: float) -> None:
        super().enqueue(job, now)
        start = self.profile.earliest_fit(job.nodes, job.wcl, now)
        end = start + job.wcl
        self.profile.reserve_fitted(start, end, job.nodes)
        self.reservations[job.id] = (start, end)
        heappush(self._res_heap, (start, job.id))
        c = _counters.ACTIVE
        if c is not None:
            c.hit("cons.heap_push")

    def start(self, job: Job, now: float) -> None:
        # the reservation interval simply becomes the running occupation
        res_start, res_end = self.reservations.pop(job.id)
        if res_start > now + EPS:
            raise RuntimeError(
                f"job {job.id} started before its reservation ({res_start} > {now})"
            )
        self.predicted_end[job.id] = res_end
        heappush(self._end_heap, (res_end, job.id))
        c = _counters.ACTIVE
        if c is not None:
            c.hit("cons.heap_push")
        super().start(job, now)

    def on_completion(self, job: Job, now: float) -> None:
        super().on_completion(job, now)
        pe = self.predicted_end.pop(job.id)
        if pe > now:
            # finished early: give the hole back
            self.profile.release_reserved(now, pe, job.nodes)
            self._holes_dirty = True

    # -- scheduling pass -----------------------------------------------------------

    def schedule(self, now: float, reason: str) -> None:
        self.profile.advance(now)
        if self._has_overrun(now) or self._has_overdue(now):
            self._rebuild(now)
        elif reason == "completion":
            if self._holes_dirty:
                self._improve(now)
            else:
                c = _counters.ACTIVE
                if c is not None:
                    c.hit("cons.compress_skipped")
        self._start_due(now)

    def _has_overrun(self, now: float) -> bool:
        heap = self._end_heap
        ends = self.predicted_end
        while heap:
            pe, jid = heap[0]
            if ends.get(jid) != pe:
                heappop(heap)  # completed or re-predicted since pushed
                continue
            return pe <= now
        return False

    def _has_overdue(self, now: float) -> bool:
        """A reservation whose start slid into the past without the job
        starting: only possible after an overrun stall (the reservation was
        anchored at a bumped prediction no event ever fired at).  The
        no-worsening contract of the improvement pass does not apply; the
        schedule must be rebuilt."""
        heap = self._res_heap
        res = self.reservations
        threshold = now - EPS
        while heap:
            s, jid = heap[0]
            r = res.get(jid)
            if r is None or r[0] != s:
                heappop(heap)  # started or re-placed since pushed
                continue
            return s < threshold
        return False

    def _occupations(self, now: float):
        """(nodes, predicted end) per running job, refreshing overrun
        predictions (and their heap entries) in place."""
        predicted = self.predicted_end
        for rj in self.cluster.running_jobs():
            pe = predicted[rj.id]
            if pe <= now:
                pe = now + self.overrun_extension
                predicted[rj.id] = pe
                heappush(self._end_heap, (pe, rj.id))
            yield rj.nodes, pe

    def _compact_heaps(self) -> None:
        """Drop accumulated stale entries so rebuild-heavy runs stay lean."""
        c = _counters.ACTIVE
        if len(self._end_heap) > 2 * len(self.predicted_end) + 64:
            self._end_heap = [
                (pe, jid) for pe, jid in self._end_heap
                if self.predicted_end.get(jid) == pe
            ]
            self._end_heap.sort()
            if c is not None:
                c.hit("cons.heap_compact")
        if len(self._res_heap) > 2 * len(self.reservations) + 64:
            self._res_heap = [
                (s, jid) for s, jid in self._res_heap
                if (r := self.reservations.get(jid)) is not None and r[0] == s
            ]
            self._res_heap.sort()
            if c is not None:
                c.hit("cons.heap_compact")

    def _rebuild(self, now: float) -> None:
        """Recompute the whole profile: running occupations with refreshed
        predictions, then queued reservations re-placed in priority order.
        Every job lands at its earliest fit given all its predecessors, so
        the resulting schedule is stable — no compression pass can improve
        it until some release frees new room."""
        profile = ReservationProfile.from_occupations(
            self.cluster.size, now, self._occupations(now)
        )
        self.profile = profile
        reservations: Dict[int, Tuple[float, float]] = {}
        res_heap = self._res_heap
        for job in self.ordered_queue(now):
            start = profile.earliest_fit(job.nodes, job.wcl, now)
            end = start + job.wcl
            profile.reserve_fitted(start, end, job.nodes)
            reservations[job.id] = (start, end)
            heappush(res_heap, (start, job.id))
        self.reservations = reservations
        self._holes_dirty = False
        c = _counters.ACTIVE
        if c is not None:
            c.hit("cons.rebuild")
            c.hit("cons.heap_push", len(reservations))
        self._compact_heaps()

    def _improve(self, now: float) -> None:
        """Compression: each job re-places into the earliest fit, in priority
        order.  Removing a reservation before re-placing guarantees the new
        start is never later than the old one."""
        c = _counters.ACTIVE
        if c is not None:
            c.hit("cons.compress")
        profile = self.profile
        reservations = self.reservations
        moved = False
        for job in self.ordered_queue(now):
            old_start, old_end = reservations[job.id]
            nodes = job.nodes
            profile.release_reserved(max(old_start, now), old_end, nodes)
            start = profile.earliest_fit(nodes, job.wcl, now)
            if start > old_start + EPS:
                raise RuntimeError(
                    f"compression worsened job {job.id}: {old_start} -> {start}"
                )
            end = start + job.wcl
            profile.reserve_fitted(start, end, nodes)
            if start != old_start:
                reservations[job.id] = (start, end)
                heappush(self._res_heap, (start, job.id))
                if c is not None:
                    c.hit("cons.heap_push")
                moved = True
        # if nobody moved, every job is provably at its earliest fit given
        # the others; future passes are no-ops until the next release
        self._holes_dirty = moved
        self._compact_heaps()

    def _start_due(self, now: float) -> None:
        reservations = self.reservations
        threshold = now + EPS
        due = [
            job for job in self.queue
            if reservations[job.id][0] <= threshold
        ]
        if not due:
            return
        due.sort(key=lambda j: (reservations[j.id][0], j.submit_time, j.id))
        for job in due:
            if not self.cluster.fits(job):
                if reservations[job.id][0] > now:
                    # due only through the EPS slack: the reservation sits
                    # a hair in the future and the freeing completion has
                    # not fired yet; the pass at that event starts it
                    continue
                raise RuntimeError(
                    f"profile/cluster disagree: job {job.id} reserved at "
                    f"{reservations[job.id][0]} but only "
                    f"{self.cluster.free_nodes} nodes free at {now}"
                )
            self.start(job, now)
