"""Conservative backfilling with fairshare queue priority (Section 5.3).

Every job receives an internal reservation the moment it arrives (earliest
fit in the availability profile using its wall-clock limit).  At each
scheduling event the queue is processed in fairshare priority order and
each job tries to *improve* its reservation; a reservation is never made
worse, so the arrival-time reservation is an upper bound on the wait — no
starvation queue needed.

Inaccurate user estimates make this interesting in two directions:

* jobs finishing *early* leave holes; the improvement pass ("compression")
  lets queued jobs slide into them, with the fairshare order deciding who
  gets first pick — this is where the queue priority still matters;
* jobs running *past* their estimate (CPlant allowed this) invalidate the
  profile; we then rebuild it, bumping the overrunning job's predicted end
  by ``overrun_extension`` at each event until it actually finishes, the
  standard trick in backfilling simulators.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.job import Job
from ..core.profile import ReservationProfile
from .base import BaseScheduler

#: float-comparison slack for "reservation time has arrived"
EPS = 1e-6


class ConservativeScheduler(BaseScheduler):
    """Conservative backfilling; ``priority`` picks the improvement order."""

    def __init__(
        self,
        priority: str = "fairshare",
        overrun_extension: float = 900.0,
        **kw,
    ) -> None:
        super().__init__(priority=priority, **kw)
        if overrun_extension <= 0:
            raise ValueError("overrun_extension must be positive")
        self.overrun_extension = overrun_extension
        self.name = f"cons.{priority}"
        self.profile: ReservationProfile | None = None
        #: queued-job reservations: job id -> (start, end)
        self.reservations: Dict[int, Tuple[float, float]] = {}
        #: running-job predicted completion times (profile occupation ends)
        self.predicted_end: Dict[int, float] = {}

    def attach(self, engine) -> None:
        super().attach(engine)
        self.profile = ReservationProfile(self.cluster.size)

    # -- bookkeeping -----------------------------------------------------------

    def enqueue(self, job: Job, now: float) -> None:
        super().enqueue(job, now)
        start = self.profile.earliest_fit(job.nodes, job.wcl, now)
        self.profile.reserve(start, start + job.wcl, job.nodes)
        self.reservations[job.id] = (start, start + job.wcl)

    def start(self, job: Job, now: float) -> None:
        # the reservation interval simply becomes the running occupation
        res_start, res_end = self.reservations.pop(job.id)
        if res_start > now + EPS:
            raise RuntimeError(
                f"job {job.id} started before its reservation ({res_start} > {now})"
            )
        self.predicted_end[job.id] = res_end
        super().start(job, now)

    def on_completion(self, job: Job, now: float) -> None:
        super().on_completion(job, now)
        pe = self.predicted_end.pop(job.id)
        if pe > now:
            # finished early: give the hole back
            self.profile.release(now, pe, job.nodes)

    # -- scheduling pass -----------------------------------------------------------

    def schedule(self, now: float, reason: str) -> None:
        self.profile.advance(now)
        if self._has_overrun(now) or self._has_overdue(now):
            self._rebuild(now)
        elif reason == "completion":
            self._improve(now)
        self._start_due(now)
        self.profile.coalesce()

    def _has_overrun(self, now: float) -> bool:
        return any(pe <= now for pe in self.predicted_end.values())

    def _has_overdue(self, now: float) -> bool:
        """A reservation whose start slid into the past without the job
        starting: only possible after an overrun stall (the reservation was
        anchored at a bumped prediction no event ever fired at).  The
        no-worsening contract of the improvement pass does not apply; the
        schedule must be rebuilt."""
        return any(s < now - EPS for s, _ in self.reservations.values())

    def _rebuild(self, now: float) -> None:
        """Recompute the whole profile: running occupations with refreshed
        predictions, then queued reservations re-placed in priority order."""
        self.profile = ReservationProfile(self.cluster.size, now)
        for rj in self.cluster.running_jobs():
            pe = self.predicted_end[rj.id]
            if pe <= now:
                pe = now + self.overrun_extension
                self.predicted_end[rj.id] = pe
            self.profile.reserve(now, pe, rj.nodes)
        self.reservations = {}
        for job in self.ordering(self.queue, now):
            start = self.profile.earliest_fit(job.nodes, job.wcl, now)
            self.profile.reserve(start, start + job.wcl, job.nodes)
            self.reservations[job.id] = (start, start + job.wcl)

    def _improve(self, now: float) -> None:
        """Compression: each job re-places into the earliest fit, in priority
        order.  Removing a reservation before re-placing guarantees the new
        start is never later than the old one."""
        for job in self.ordering(self.queue, now):
            old_start, old_end = self.reservations[job.id]
            self.profile.release(max(old_start, now), old_end, job.nodes)
            start = self.profile.earliest_fit(job.nodes, job.wcl, now)
            if start > old_start + EPS:
                raise RuntimeError(
                    f"compression worsened job {job.id}: {old_start} -> {start}"
                )
            self.profile.reserve(start, start + job.wcl, job.nodes)
            self.reservations[job.id] = (start, start + job.wcl)

    def _start_due(self, now: float) -> None:
        due = [
            job for job in self.queue
            if self.reservations[job.id][0] <= now + EPS
        ]
        due.sort(key=lambda j: (self.reservations[j.id][0], j.submit_time, j.id))
        for job in due:
            if not self.cluster.fits(job):
                raise RuntimeError(
                    f"profile/cluster disagree: job {job.id} reserved at "
                    f"{self.reservations[job.id][0]} but only "
                    f"{self.cluster.free_nodes} nodes free at {now}"
                )
            self.start(job, now)
