"""Named scheduling policies — the paper's nine plus reference points.

Policy keys follow the paper's Section 5.5 naming:
``cplant<starve-hours>.<max-runtime>.<entrance>`` for the baseline family
and ``cons[dyn].<max-runtime>`` for the conservative family.  A policy is a
scheduler factory plus an optional workload transform parameter (the 72 h
maximum-runtime split, applied by the experiment runner before simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from .base import BaseScheduler
from .conservative import ConservativeScheduler
from .depthk import DepthKScheduler
from .dynamic import DynamicReservationScheduler
from .easy import EasyBackfillScheduler
from .nobackfill import NoBackfillScheduler
from .noguarantee import NoGuaranteeScheduler
from .roundrobin import RoundRobinScheduler
from .sizebased import FairSojournScheduler

HOUR = 3600.0


@dataclass(frozen=True)
class PolicySpec:
    """A named policy: scheduler factory + workload transform parameter."""

    key: str
    factory: Callable[..., BaseScheduler]
    #: split jobs longer than this many seconds (None = no limit)
    max_runtime: Optional[float]
    description: str

    def make_scheduler(self, **overrides) -> BaseScheduler:
        return self.factory(**overrides)


def _cplant(starve_h: float, entrance: str) -> Callable[..., BaseScheduler]:
    def factory(**kw) -> BaseScheduler:
        params = {"starvation_threshold": starve_h * HOUR, "entrance": entrance}
        params.update(kw)  # explicit overrides win (ablation sweeps)
        return NoGuaranteeScheduler(**params)

    return factory


def _cons(**fixed) -> Callable[..., BaseScheduler]:
    def factory(**kw) -> BaseScheduler:
        return ConservativeScheduler(**{**fixed, **kw})

    return factory


def _consdyn(**fixed) -> Callable[..., BaseScheduler]:
    def factory(**kw) -> BaseScheduler:
        return DynamicReservationScheduler(**{**fixed, **kw})

    return factory


_SPECS: Tuple[PolicySpec, ...] = (
    # -- the paper's nine policies (Section 5.5, in order) --
    PolicySpec(
        "cplant24.nomax.all", _cplant(24, "all"), None,
        "original CPlant scheduler: no-guarantee backfill, fairshare order, "
        "starvation queue after 24 h, all users eligible",
    ),
    PolicySpec(
        "cplant72.nomax.all", _cplant(72, "all"), None,
        "original scheduler, starvation-queue entry delayed to 72 h",
    ),
    PolicySpec(
        "cplant24.nomax.fair", _cplant(24, "fair"), None,
        "original scheduler, heavy/unfair users barred from the starvation queue",
    ),
    PolicySpec(
        "cplant24.72max.all", _cplant(24, "all"), 72 * HOUR,
        "original scheduler plus 72 h maximum runtime (long jobs split)",
    ),
    PolicySpec(
        "cplant72.72max.fair", _cplant(72, "fair"), 72 * HOUR,
        "all three minor modifications combined",
    ),
    PolicySpec(
        "cons.nomax", _cons(), None,
        "conservative backfilling with fairshare queuing priority",
    ),
    PolicySpec(
        "cons.72max", _cons(), 72 * HOUR,
        "conservative backfilling plus 72 h runtime limits",
    ),
    PolicySpec(
        "consdyn.nomax", _consdyn(), None,
        "conservative backfilling with dynamic reservations",
    ),
    PolicySpec(
        "consdyn.72max", _consdyn(), 72 * HOUR,
        "conservative dynamic reservations plus 72 h runtime limits",
    ),
    # -- reference points beyond the paper's evaluated set --
    PolicySpec(
        "fcfs.nobackfill", lambda **kw: NoBackfillScheduler(priority="fcfs", **kw),
        None, "strict FCFS without backfilling (Figure 1 baseline)",
    ),
    PolicySpec(
        "fairshare.nobackfill",
        lambda **kw: NoBackfillScheduler(priority="fairshare", **kw),
        None, "strict fairshare-order scheduling without backfilling",
    ),
    PolicySpec(
        "easy.fcfs", lambda **kw: EasyBackfillScheduler(priority="fcfs", **kw),
        None, "EASY (aggressive) backfilling, FCFS priority",
    ),
    PolicySpec(
        "easy.fairshare",
        lambda **kw: EasyBackfillScheduler(priority="fairshare", **kw),
        None, "EASY (aggressive) backfilling, fairshare priority",
    ),
    PolicySpec(
        "depth2.fairshare",
        lambda **kw: DepthKScheduler(depth=2, **kw),
        None, "reservation-depth-2 backfilling, fairshare priority "
        "(the production middle ground the paper's introduction describes)",
    ),
    PolicySpec(
        "depth4.fairshare",
        lambda **kw: DepthKScheduler(depth=4, **kw),
        None, "reservation-depth-4 backfilling, fairshare priority",
    ),
    # -- the size-based / baseline frontier (fairness-matrix extension) --
    PolicySpec(
        "spt.nobackfill",
        lambda **kw: NoBackfillScheduler(priority="spt", **kw),
        None, "shortest-estimate-first list scheduling without backfilling",
    ),
    PolicySpec(
        "easy.spt", lambda **kw: EasyBackfillScheduler(priority="spt", **kw),
        None, "EASY backfilling with shortest-estimate-first priority",
    ),
    PolicySpec(
        "easy.srpt", lambda **kw: EasyBackfillScheduler(priority="srpt", **kw),
        72 * HOUR,
        "EASY backfilling ordered by shortest *remaining* estimate; the "
        "72 h runtime limit splits long jobs so progress shortens a chain",
    ),
    PolicySpec(
        "easy.widest",
        lambda **kw: EasyBackfillScheduler(priority="widest", **kw),
        None, "EASY backfilling with widest-job-first priority",
    ),
    PolicySpec(
        "fsp.easy", lambda **kw: FairSojournScheduler(backfill="easy", **kw),
        None,
        "fair-sojourn (FSP-like) rank from a virtual equal-share machine, "
        "with EASY backfilling around a blocked head",
    ),
    PolicySpec(
        "fsp.nobackfill",
        lambda **kw: FairSojournScheduler(backfill="none", **kw),
        None, "fair-sojourn (FSP-like) rank, strict list scheduling",
    ),
    PolicySpec(
        "rr.user", lambda **kw: RoundRobinScheduler(**kw),
        None, "round-robin over users, FCFS within each user's lane",
    ),
)

REGISTRY: Dict[str, PolicySpec] = {spec.key: spec for spec in _SPECS}

#: the nine policies of Section 5.5, in the paper's order
PAPER_POLICIES: Tuple[str, ...] = tuple(s.key for s in _SPECS[:9])

#: Figures 8-13 ("minor changes") policy set
MINOR_POLICIES: Tuple[str, ...] = PAPER_POLICIES[:5]

#: Figures 16/18 conservative-comparison set (baseline + conservative four)
CONSERVATIVE_POLICIES: Tuple[str, ...] = (
    "cplant24.nomax.all", "cons.nomax", "consdyn.nomax", "cons.72max", "consdyn.72max",
)

#: the fairness-matrix policy set: the paper baseline and conservative
#: reference, the classic FCFS/EASY baselines, and the size-based frontier
MATRIX_POLICIES: Tuple[str, ...] = (
    "cplant24.nomax.all", "cons.nomax", "fcfs.nobackfill", "easy.fcfs",
    "spt.nobackfill", "easy.srpt", "fsp.easy", "rr.user",
)


def validate_overrides(key: str, overrides: Mapping[str, object]) -> None:
    """Fail fast on scheduler-parameter overrides a policy cannot accept.

    Campaign specs name override grids declaratively; instantiating the
    scheduler here (they are cheap to build) surfaces a misspelled or
    inapplicable parameter before any worker process is spawned, with the
    policy key *and the offending override names* in the message instead
    of a bare ``TypeError`` from a factory closure.
    """
    spec = get_policy(key)
    try:
        spec.make_scheduler(**dict(overrides))
        return
    except TypeError as exc:
        cause = exc
    # name the culprit(s): re-probe each override alone, so "which key was
    # wrong" survives even when several are passed together
    bad = sorted(
        k for k, v in dict(overrides).items()
        if _rejects_single_override(spec, k, v)
    )
    if bad:
        raise ValueError(
            f"policy {key!r} rejects scheduler override"
            f"{'s' if len(bad) > 1 else ''} "
            f"{', '.join(repr(k) for k in bad)}: {cause}"
        ) from None
    # no single key is at fault (an interaction); report the whole set
    raise ValueError(
        f"policy {key!r} rejects scheduler overrides "
        f"{dict(overrides)!r}: {cause}"
    ) from None


def _rejects_single_override(
    spec: PolicySpec, key: str, value: object
) -> bool:
    try:
        spec.make_scheduler(**{key: value})
    except TypeError:
        return True
    return False


def get_policy(key: str) -> PolicySpec:
    try:
        return REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown policy {key!r}; known: {', '.join(sorted(REGISTRY))}"
        ) from None


def policy_names() -> Tuple[str, ...]:
    return tuple(REGISTRY)
