"""The baseline CPlant scheduler: no-guarantee backfilling with a
starvation queue (Section 2.1) plus the paper's "minor change" knobs
(Sections 5.1–5.2 via configuration).

Mechanics reproduced from the paper:

* The main queue is processed in fairshare priority order at every
  scheduling event; any job with sufficient free nodes starts — i.e. *no
  guarantee* backfilling (no internal reservations at all).
* A job that has waited ``starvation_threshold`` seconds (24 h originally,
  72 h in the ``cplant72.*`` variants) moves to a secondary *starvation
  queue* kept in FCFS order.  The starvation head receives an aggressive
  (EASY-style) internal reservation, so its progress is guaranteed; main-
  queue jobs may only start if they do not delay that reservation.
* With ``entrance="fair"`` (the ``.fair`` variants), jobs of "heavy" users
  — decayed usage above ``heavy_factor`` x the mean active usage — are
  temporarily barred from the starvation queue and re-checked every
  ``recheck_interval`` seconds as their usage decays.
"""

from __future__ import annotations

from typing import List

from ..core.events import EventKind
from ..core.job import Job, JobState
from ..obs import counters as _counters
from .base import BaseScheduler, _remove_identical
from .easy import head_reservation


class NoGuaranteeScheduler(BaseScheduler):
    """CPlant baseline and its starvation-queue variants."""

    def __init__(
        self,
        starvation_threshold: float = 24 * 3600.0,
        entrance: str = "all",
        heavy_factor: float = 1.0,
        recheck_interval: float = 3600.0,
        **kw,
    ) -> None:
        super().__init__(priority="fairshare", **kw)
        if entrance not in ("all", "fair"):
            raise ValueError(f"entrance must be 'all' or 'fair', got {entrance!r}")
        if starvation_threshold <= 0:
            raise ValueError("starvation_threshold must be positive")
        self.starvation_threshold = starvation_threshold
        self.entrance = entrance
        self.heavy_factor = heavy_factor
        self.recheck_interval = recheck_interval
        self.starvation_queue: List[Job] = []
        self._starved_ids = set()
        h = int(starvation_threshold // 3600)
        self.name = f"cplant{h}.{entrance}"

    # -- queue management -------------------------------------------------------

    def enqueue(self, job: Job, now: float) -> None:
        super().enqueue(job, now)
        # chunk continuations inherit their original job's seniority, so a
        # split job that already waited out the threshold is immediately
        # eligible again rather than restarting its starvation clock
        eligible_at = max(now, job.seniority + self.starvation_threshold)
        self.engine.add_timer(eligible_at, job, EventKind.STARVATION_TIMER)

    def on_timer(self, payload, now: float, kind: EventKind) -> None:
        if kind is not EventKind.STARVATION_TIMER:
            super().on_timer(payload, now, kind)
            return
        job: Job = payload
        if job.state is not JobState.QUEUED or job.id in self._starved_ids:
            return  # started (or already promoted) in the meantime
        if self._may_enter_starvation(job, now):
            _remove_identical(self.queue, job)
            self._drop_from_order(job)
            self._starve_insert(job)
        else:
            # barred heavy user: poll again as usage decays
            self.engine.add_timer(
                now + self.recheck_interval, job, EventKind.STARVATION_TIMER
            )

    def _may_enter_starvation(self, job: Job, now: float) -> bool:
        if self.entrance == "all":
            return True
        return not self.tracker.is_heavy(job.user_id, now, self.heavy_factor)

    def _starve_insert(self, job: Job) -> None:
        """Insert keeping the starvation queue sorted by (seniority, id), so
        scheduling rounds read it directly instead of re-sorting.  Timers
        fire in near-seniority order, so this is an append in practice."""
        sq = self.starvation_queue
        key = (job.seniority, job.id)
        i = len(sq)
        while i > 0 and (sq[i - 1].seniority, sq[i - 1].id) > key:
            i -= 1
        sq.insert(i, job)
        self._starved_ids.add(job.id)

    def waiting_jobs(self) -> List[Job]:
        return self.queue + self.starvation_queue

    # -- scheduling pass ----------------------------------------------------------

    def start(self, job: Job, now: float) -> None:
        # jobs can live in either queue
        if job.id in self._starved_ids:
            self._starved_ids.discard(job.id)
            _remove_identical(self.starvation_queue, job)
            c = _counters.ACTIVE
            if c is not None:
                c.hit("sched.start")
            self.engine.start_job(job)
            self.tracker.job_started(job, now)
        else:
            super().start(job, now)

    def schedule(self, now: float, reason: str) -> None:
        while self._one_round(now):
            pass

    def _one_round(self, now: float) -> bool:
        """One greedy round; True if a job was started."""
        starv = self.starvation_queue  # kept sorted by _starve_insert
        if starv:
            head = starv[0]
            if self.cluster.fits(head):
                self.start(head, now)
                return True
            shadow, extra = head_reservation(
                head.nodes, self.cluster.free_nodes, now, self.cluster.running_jobs()
            )
            for job in starv[1:] + self.ordered_queue(now):
                if not self.cluster.fits(job):
                    continue
                if now + job.wcl <= shadow or job.nodes <= extra:
                    c = _counters.ACTIVE
                    if c is not None:
                        c.hit("sched.backfill_start")
                    self.start(job, now)
                    return True
            return False
        # pure no-guarantee backfilling: greedy in fairshare order
        for job in self.ordered_queue(now):
            if self.cluster.fits(job):
                self.start(job, now)
                return True
        return False
