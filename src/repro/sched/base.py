"""Scheduler base class: shared queue/bookkeeping machinery.

Concrete policies override :meth:`schedule` (and optionally the enqueue /
completion hooks).  The base class owns:

* the waiting-job list,
* the fairshare usage tracker and its daily decay tick,
* start bookkeeping (usage charging, queue removal),
* the priority-order cache: sorting the queue is needed at every
  scheduling event (often several times per pass), but the fairshare order
  only changes when some user's decayed usage changes or the queue gains a
  member, so :meth:`ordered_queue` re-sorts only then and otherwise
  maintains the cached order under removals.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.engine import Engine, SchedulerProtocol
from ..core.events import EventKind
from ..core.job import Job
from ..obs import counters as _counters
from .fairshare import DAY, FairshareTracker
from .queues import (
    OrderingPolicy,
    SrptOrder,
    fcfs_order,
    make_fairshare_order,
    shortest_first_order,
    widest_first_order,
)

#: priority keys :class:`BaseScheduler` understands, in catalog order
PRIORITY_POLICIES = ("fairshare", "fcfs", "spt", "srpt", "widest")


def _remove_identical(jobs: List[Job], job: Job) -> bool:
    """Remove ``job`` (the very object) from a list; True if found.

    ``list.remove`` falls back to the dataclass ``__eq__`` (a 15-field
    tuple build) for every non-identical element it scans past; queues
    hold each job object exactly once, so an identity scan suffices.
    """
    for i, candidate in enumerate(jobs):
        if candidate is job:
            del jobs[i]
            return True
    return False


class BaseScheduler(SchedulerProtocol):
    """Common scaffolding for all policies in this package."""

    #: human-readable policy name; subclasses override.
    name = "base"

    def __init__(
        self,
        priority: str = "fairshare",
        decay_factor: float = 0.5,
        decay_interval: float = DAY,
    ) -> None:
        self.tracker = FairshareTracker(decay_factor, decay_interval)
        if priority == "fairshare":
            self.ordering: OrderingPolicy = make_fairshare_order(self.tracker)
        elif priority == "fcfs":
            self.ordering = fcfs_order
        elif priority == "spt":
            self.ordering = shortest_first_order
        elif priority == "srpt":
            # remaining estimate = own wcl + chain tail; the engine owns the
            # chain bookkeeping, and it is attached before any ordering call
            self.ordering = SrptOrder(self)
        elif priority == "widest":
            self.ordering = widest_first_order
        else:
            raise ValueError(
                f"unknown priority policy: {priority!r}; "
                f"known: {', '.join(PRIORITY_POLICIES)}"
            )
        self.priority = priority
        self.queue: List[Job] = []
        self.engine: Optional[Engine] = None
        self._order_cache: Optional[List[Job]] = None
        self._order_version = -1

    # -- engine protocol ---------------------------------------------------------

    def attach(self, engine: Engine) -> None:
        self.engine = engine
        self.cluster = engine.cluster
        if self.tracker.decay_factor < 1.0:
            engine.add_timer(self.tracker.decay_interval, None, EventKind.DECAY_TICK)

    def enqueue(self, job: Job, now: float) -> None:
        self.queue.append(job)
        self._order_cache = None

    def on_completion(self, job: Job, now: float) -> None:
        self.tracker.job_finished(job, now)

    def on_timer(self, payload, now: float, kind: EventKind) -> None:
        if kind is EventKind.DECAY_TICK:
            self.tracker.decay(now)
            # keep ticking as long as anything remains to simulate
            if self.engine.events:
                self.engine.add_timer(
                    now + self.tracker.decay_interval, None, EventKind.DECAY_TICK
                )

    def schedule(self, now: float, reason: str) -> None:
        raise NotImplementedError

    # -- helpers for subclasses -----------------------------------------------------

    def start(self, job: Job, now: float) -> None:
        """Start a queued job: allocate, charge usage, drop from the queue."""
        if not _remove_identical(self.queue, job):
            raise ValueError(f"job {job.id} is not queued")
        c = _counters.ACTIVE
        if c is not None:
            c.hit("sched.start")
        self._drop_from_order(job)
        self.engine.start_job(job)
        self.tracker.job_started(job, now)

    def _drop_from_order(self, job: Job) -> None:
        """Keep the cached priority order valid across a queue removal
        (removal preserves the relative order of everyone else)."""
        if self._order_cache is not None:
            if not _remove_identical(self._order_cache, job):
                self._order_cache = None

    def _order_epoch(self, now: float) -> int:
        """The cache-invalidation version of the priority order.

        Fairshare priorities move with decayed usage; every other built-in
        order depends only on per-job constants, so membership changes (via
        ``enqueue``/``start``) are the only invalidation.  Subclasses with
        stateful orders (e.g. the virtual fair-share rank of FSP) override
        this to settle and expose their own version counter.
        """
        if self.priority == "fairshare":
            self.tracker.settle(now)
            return self.tracker.usage_version
        return 0

    def ordered_queue(self, now: float) -> List[Job]:
        """The queue in priority order; cached between usage changes.

        Callers may iterate the returned list but must not mutate it; a
        concurrent :meth:`start` edits it in place (by design, so loops of
        the form "re-fetch order, start one job" stay O(queue) per round).
        """
        version = self._order_epoch(now)
        c = _counters.ACTIVE
        if self._order_cache is not None and self._order_version == version:
            if c is not None:
                c.hit("sched.order_cache_hit")
            return self._order_cache
        if c is not None:
            c.hit("sched.order_sort")
        self._order_cache = self.ordering(self.queue, now)
        self._order_version = version
        return self._order_cache

    def waiting_jobs(self) -> List[Job]:
        """All jobs the scheduler is holding (subclasses with secondary
        queues extend this); used by fairness observers and LOC."""
        return list(self.queue)
