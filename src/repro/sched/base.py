"""Scheduler base class: shared queue/bookkeeping machinery.

Concrete policies override :meth:`schedule` (and optionally the enqueue /
completion hooks).  The base class owns:

* the waiting-job list,
* the fairshare usage tracker and its daily decay tick,
* start bookkeeping (usage charging, queue removal).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.engine import Engine, SchedulerProtocol
from ..core.events import EventKind
from ..core.job import Job
from .fairshare import DAY, FairshareTracker
from .queues import OrderingPolicy, fcfs_order, make_fairshare_order


class BaseScheduler(SchedulerProtocol):
    """Common scaffolding for all policies in this package."""

    #: human-readable policy name; subclasses override.
    name = "base"

    def __init__(
        self,
        priority: str = "fairshare",
        decay_factor: float = 0.5,
        decay_interval: float = DAY,
    ) -> None:
        self.tracker = FairshareTracker(decay_factor, decay_interval)
        if priority == "fairshare":
            self.ordering: OrderingPolicy = make_fairshare_order(self.tracker)
        elif priority == "fcfs":
            self.ordering = fcfs_order
        else:
            raise ValueError(f"unknown priority policy: {priority!r}")
        self.priority = priority
        self.queue: List[Job] = []
        self.engine: Optional[Engine] = None

    # -- engine protocol ---------------------------------------------------------

    def attach(self, engine: Engine) -> None:
        self.engine = engine
        self.cluster = engine.cluster
        if self.tracker.decay_factor < 1.0:
            engine.add_timer(self.tracker.decay_interval, None, EventKind.DECAY_TICK)

    def enqueue(self, job: Job, now: float) -> None:
        self.queue.append(job)

    def on_completion(self, job: Job, now: float) -> None:
        self.tracker.job_finished(job, now)

    def on_timer(self, payload, now: float, kind: EventKind) -> None:
        if kind is EventKind.DECAY_TICK:
            self.tracker.decay(now)
            # keep ticking as long as anything remains to simulate
            if self.engine.events:
                self.engine.add_timer(
                    now + self.tracker.decay_interval, None, EventKind.DECAY_TICK
                )

    def schedule(self, now: float, reason: str) -> None:
        raise NotImplementedError

    # -- helpers for subclasses -----------------------------------------------------

    def start(self, job: Job, now: float) -> None:
        """Start a queued job: allocate, charge usage, drop from the queue."""
        self.queue.remove(job)
        self.engine.start_job(job)
        self.tracker.job_started(job, now)

    def ordered_queue(self, now: float) -> List[Job]:
        return self.ordering(self.queue, now)

    def waiting_jobs(self) -> List[Job]:
        """All jobs the scheduler is holding (subclasses with secondary
        queues extend this); used by fairness observers and LOC."""
        return list(self.queue)
