"""Aggressive (EASY) backfilling.

Only the head of the priority queue holds a reservation; any other job may
leap forward as long as it does not delay that head (Section 1).  The head's
reservation is the classic *shadow time / extra nodes* computation over the
running jobs' expected completions.

Not one of the paper's nine evaluated policies, but (a) the starvation
queue of the CPlant baseline gives its head exactly this aggressive
reservation, so the machinery is shared, and (b) it is a useful reference
point in the extension sweeps.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..core.job import Job
from ..obs import counters as _counters
from .base import BaseScheduler


def head_reservation(
    need: int,
    free_now: int,
    now: float,
    running: Iterable[Job],
) -> Tuple[float, int]:
    """Shadow time and extra nodes for a blocked head job needing ``need``.

    Returns ``(shadow, extra)``: the earliest time ``need`` nodes are
    expected free, and how many nodes beyond ``need`` will be free then.
    A backfill candidate is safe iff it terminates by ``shadow`` or uses at
    most ``extra`` nodes.
    """
    if free_now >= need:
        return now, free_now - need
    # inlined job.expected_end(now): this runs once per blocked-head round,
    # over every running job
    ends = []
    for j in running:
        e = j.start_time + j.wcl
        ends.append((e if e > now else now, j.nodes))
    ends.sort()
    free = free_now
    shadow = None
    i = 0
    while i < len(ends):
        end, nodes = ends[i]
        free += nodes
        i += 1
        if free >= need:
            shadow = end
            # include jobs ending at exactly the shadow instant
            while i < len(ends) and ends[i][0] == end:
                free += ends[i][1]
                i += 1
            break
    if shadow is None:
        raise RuntimeError(
            f"head needs {need} nodes but running+free only frees {free}"
        )
    return shadow, free - need


class EasyBackfillScheduler(BaseScheduler):
    """EASY backfilling with a pluggable queue priority."""

    def __init__(self, priority: str = "fcfs", **kw) -> None:
        super().__init__(priority=priority, **kw)
        self.name = f"easy.{priority}"

    def schedule(self, now: float, reason: str) -> None:
        while self.queue:
            order = self.ordered_queue(now)
            head = order[0]
            if self.cluster.fits(head):
                self.start(head, now)
                continue
            shadow, extra = head_reservation(
                head.nodes, self.cluster.free_nodes, now, self.cluster.running_jobs()
            )
            started = False
            for job in order[1:]:
                if not self.cluster.fits(job):
                    continue
                if now + job.wcl <= shadow or job.nodes <= extra:
                    c = _counters.ACTIVE
                    if c is not None:
                        c.hit("sched.backfill_start")
                    self.start(job, now)
                    started = True
                    break  # shadow/extra changed; recompute from scratch
            if not started:
                return
