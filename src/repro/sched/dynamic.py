"""Conservative backfilling with *dynamic* reservations (Section 5.4).

Same per-job reservations as conservative backfilling, but nothing is ever
kept: at each scheduling event all reservations are discarded and the
schedule is rebuilt from scratch in fairshare priority order.  Arrival-time
reservations are therefore no upper bound on wait — the "FCFS feel" of
conservative backfilling disappears, and a job's place in the schedule
tracks its user's current fairshare standing.  "Fair" jobs cannot starve,
so no starvation queue is needed.
"""

from __future__ import annotations

from typing import Dict

from ..core.job import Job
from ..core.profile import ReservationProfile
from .base import BaseScheduler
from .conservative import EPS


class DynamicReservationScheduler(BaseScheduler):
    """Rebuild-everything-every-event conservative scheduler."""

    def __init__(
        self,
        priority: str = "fairshare",
        overrun_extension: float = 900.0,
        **kw,
    ) -> None:
        super().__init__(priority=priority, **kw)
        if overrun_extension <= 0:
            raise ValueError("overrun_extension must be positive")
        self.overrun_extension = overrun_extension
        self.name = f"consdyn.{priority}"
        #: running-job predicted completion times
        self.predicted_end: Dict[int, float] = {}
        #: last rebuilt schedule (job id -> reserved start), for inspection
        self.last_reservations: Dict[int, float] = {}

    def on_completion(self, job: Job, now: float) -> None:
        super().on_completion(job, now)
        self.predicted_end.pop(job.id, None)

    def start(self, job: Job, now: float) -> None:
        self.predicted_end[job.id] = now + job.wcl
        super().start(job, now)

    def _occupations(self, now: float):
        """(nodes, predicted end) per running job, refreshing overrun
        predictions in place."""
        predicted = self.predicted_end
        for rj in self.cluster.running_jobs():
            pe = predicted[rj.id]
            if pe <= now:
                pe = now + self.overrun_extension
                predicted[rj.id] = pe
            yield rj.nodes, pe

    def schedule(self, now: float, reason: str) -> None:
        profile = ReservationProfile.from_occupations(
            self.cluster.size, now, self._occupations(now)
        )
        to_start = []
        self.last_reservations = {}
        for job in self.ordered_queue(now):
            start = profile.earliest_fit(job.nodes, job.wcl, now)
            profile.reserve_fitted(start, start + job.wcl, job.nodes)
            self.last_reservations[job.id] = start
            if start <= now + EPS:
                to_start.append(job)
        for job in to_start:
            if self.last_reservations[job.id] > now and not self.cluster.fits(job):
                # startable only through the EPS slack: the freeing
                # completion sits a hair in the future; the pass at that
                # event re-places and starts it
                continue
            self.start(job, now)
