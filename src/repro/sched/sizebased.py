"""Fairness-adjusted size-based scheduling (FSP-like).

The Fair Sojourn Protocol (Friedman & Henderson; analysed for size-based
fairness by Dell'Amico, Carra & Michiardi, *On Fair Size-Based
Scheduling*) runs the job that would finish first in a hypothetical
*processor-sharing* system where every live job gets an equal share of
the machine.  That keeps the efficiency of shortest-first scheduling
while bounding how far any job can fall behind the egalitarian ideal —
exactly the trade-off the fairness-matrix extension probes.

The adaptation to rigid parallel jobs follows the resource-equality
model already used by
:func:`repro.metrics.fairness.resource_equality_deficits`: while ``N``
jobs are live in the virtual system, each processes at
``min(width, machine_size / N)`` nodes.  A job's *virtual completion
time* under that fluid schedule is its rank; the real machine then
starts jobs in rank order, optionally EASY-backfilling around a blocked
head.  Jobs stay in the virtual system until they virtually complete,
whether or not the real machine has finished them — that memory of
received service is what makes FSP fair rather than merely short-job-
greedy.

Ranks of not-yet-virtually-complete jobs are projected at the current
instant (remaining virtual work over current share); shares only drift
when the live population changes, and the projection is refreshed on
every such change, so the order is deterministic and cache-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.job import Job
from ..obs import counters as _counters
from .base import BaseScheduler
from .easy import head_reservation


class VirtualFairShare:
    """The fluid equal-share system behind FSP ranks.

    Tracks, per live job, the remaining *virtual work* (node-seconds of
    its wall-clock estimate) and drains it piecewise-linearly: between
    population changes every job processes at ``min(width, size / N)``
    nodes.  ``settle(now)`` advances the virtual clock to ``now``;
    ``version`` bumps whenever ranks may have moved, so schedulers can
    cache their sorted queue against it.
    """

    __slots__ = ("size", "version", "_vt", "_remaining", "_widths", "_vcomp")

    def __init__(self, size: int) -> None:
        self.size = size
        self.version = 0
        self._vt: float = 0.0
        #: job id -> remaining virtual node-seconds (insertion = arrival order)
        self._remaining: Dict[int, float] = {}
        self._widths: Dict[int, int] = {}
        #: job id -> virtual completion time, once drained
        self._vcomp: Dict[int, float] = {}

    def add(self, job: Job, now: float) -> None:
        """Admit an arrival: settle to ``now``, then insert its work."""
        self.settle(now)
        self._remaining[job.id] = job.nodes * max(job.wcl, 1e-9)
        self._widths[job.id] = job.nodes
        self.version += 1

    def settle(self, now: float) -> None:
        """Drain the fluid system up to ``now``."""
        if now <= self._vt:
            return
        advanced = False
        while self._remaining and self._vt < now:
            n = len(self._remaining)
            fair = self.size / n
            # the next breakpoint: a virtual completion or ``now`` itself
            dt = now - self._vt
            for jid, rem in self._remaining.items():
                t = rem / min(self._widths[jid], fair)
                if t < dt:
                    dt = t
            done: List[int] = []
            for jid in self._remaining:
                self._remaining[jid] -= min(self._widths[jid], fair) * dt
                if self._remaining[jid] <= 1e-9:
                    done.append(jid)
            self._vt += dt
            for jid in done:
                del self._remaining[jid]
                del self._widths[jid]
                self._vcomp[jid] = self._vt
            advanced = True
            c = _counters.ACTIVE
            if c is not None:
                c.hit("fsp.settle")
                if done:
                    c.hit("fsp.virtual_complete", len(done))
        self._vt = now  # idle tail: nothing left to drain
        if advanced:
            self.version += 1

    def rank(self, job: Job) -> Tuple[float, float, int]:
        """Sort key: (projected virtual completion, submit, id)."""
        rem = self._remaining.get(job.id)
        if rem is None:
            vc = self._vcomp.get(job.id, self._vt)
        else:
            share = min(self._widths[job.id],
                        self.size / len(self._remaining))
            vc = self._vt + rem / share
        return (vc, job.submit_time, job.id)


class FairSojournScheduler(BaseScheduler):
    """FSP-like policy: start order = virtual-fair-share completion order.

    ``backfill="easy"`` lets jobs leap a blocked head under the classic
    shadow/extra-nodes rule (the head's rank-one position is preserved);
    ``backfill="none"`` is the strict list-schedule variant.
    """

    def __init__(self, backfill: str = "easy", **kw) -> None:
        if backfill not in ("easy", "none"):
            raise ValueError(
                f"unknown backfill mode {backfill!r}; known: 'easy', 'none'"
            )
        super().__init__(priority="fcfs", **kw)
        self.backfill = backfill
        self.name = f"fsp.{backfill}"
        self.vfs: VirtualFairShare | None = None
        self.ordering = self._fsp_order

    def _fsp_order(self, jobs, now: float) -> List[Job]:
        return sorted(jobs, key=self.vfs.rank)

    def _order_epoch(self, now: float) -> int:
        self.vfs.settle(now)
        return self.vfs.version

    def attach(self, engine) -> None:
        super().attach(engine)
        self.vfs = VirtualFairShare(engine.cluster.size)

    def enqueue(self, job: Job, now: float) -> None:
        super().enqueue(job, now)
        self.vfs.add(job, now)

    def schedule(self, now: float, reason: str) -> None:
        while self.queue:
            order = self.ordered_queue(now)
            head = order[0]
            if self.cluster.fits(head):
                self.start(head, now)
                continue
            if self.backfill != "easy":
                return
            shadow, extra = head_reservation(
                head.nodes, self.cluster.free_nodes, now,
                self.cluster.running_jobs(),
            )
            started = False
            for job in order[1:]:
                if not self.cluster.fits(job):
                    continue
                if now + job.wcl <= shadow or job.nodes <= extra:
                    c = _counters.ACTIVE
                    if c is not None:
                        c.hit("sched.backfill_start")
                    self.start(job, now)
                    started = True
                    break  # shadow/extra changed; recompute from scratch
            if not started:
                return
