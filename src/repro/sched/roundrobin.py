"""User-level round-robin scheduling.

A deliberately simple egalitarian baseline for the fairness matrix: each
user's waiting jobs form an FCFS lane, and the scheduler rotates over
users, starting the next lane head that fits.  No reservations, no
backfilling beyond the rotation itself — a lane head that does not fit
is skipped for this round and the rotation moves on, so one wide job
cannot idle the machine, but a user's own jobs never overtake each
other.

The rotation pointer (the last user served) is the only state; every
pass either starts a job or returns, so scheduling terminates, and all
iteration is over sorted user ids, so the outcome is deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.job import Job
from ..obs import counters as _counters
from .base import BaseScheduler


class RoundRobinScheduler(BaseScheduler):
    """Round-robin over users, FCFS within each user's lane."""

    def __init__(self, **kw) -> None:
        super().__init__(priority="fcfs", **kw)
        self.name = "rr.user"
        self._last_user: Optional[int] = None

    def schedule(self, now: float, reason: str) -> None:
        while self.queue:
            # lane heads: each user's earliest waiting job
            heads: Dict[int, Job] = {}
            for job in self.queue:
                cur = heads.get(job.user_id)
                if cur is None or (job.submit_time, job.id) < (cur.submit_time,
                                                               cur.id):
                    heads[job.user_id] = job
            users = sorted(heads)
            # rotate: users strictly after the last served go first, wrap after
            if self._last_user is not None:
                tail = [u for u in users if u > self._last_user]
                users = tail + [u for u in users if u <= self._last_user]
            c = _counters.ACTIVE
            if c is not None:
                c.hit("rr.rotate")
            for user in users:
                head = heads[user]
                if self.cluster.fits(head):
                    self._last_user = user
                    self.start(head, now)
                    break
            else:
                return
