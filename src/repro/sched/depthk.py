"""Reservation-depth-k backfilling.

The paper (Section 1): "Many production schedulers use variations between
conservative and aggressive backfilling, giving the first n jobs in the
queue a reservation."  This scheduler is that whole family:

* depth 0  — no-guarantee backfilling (no reservations at all),
* depth 1  — aggressive/EASY backfilling,
* depth k  — the first k jobs in priority order hold reservations,
* depth ∞  — conservative backfilling.

The implementation builds, at every scheduling event, a fresh reservation
profile containing the running jobs plus earliest-fit reservations for the
first ``depth`` queued jobs in priority order; any other job may start
immediately if it fits the profile (i.e. delays none of those
reservations).  Reservations are not sticky across events (like the
paper's dynamic variant), which keeps the family uniform in one mechanism;
the sticky-reservation end of the spectrum is
:class:`repro.sched.ConservativeScheduler`.
"""

from __future__ import annotations

import math
from typing import Dict

from ..core.job import Job
from ..core.profile import ReservationProfile
from .base import BaseScheduler
from .conservative import EPS


class DepthKScheduler(BaseScheduler):
    """Backfilling with reservations for the first ``depth`` queued jobs."""

    def __init__(
        self,
        depth: int | float = 1,
        priority: str = "fairshare",
        overrun_extension: float = 900.0,
        **kw,
    ) -> None:
        super().__init__(priority=priority, **kw)
        if isinstance(depth, float) and not math.isinf(depth):
            raise ValueError("depth must be an int or math.inf")
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if overrun_extension <= 0:
            raise ValueError("overrun_extension must be positive")
        self.depth = depth
        self.overrun_extension = overrun_extension
        self.name = f"depth{'inf' if math.isinf(depth) else depth}.{priority}"
        #: running-job predicted completion times
        self.predicted_end: Dict[int, float] = {}
        #: last computed reservations (inspection/testing)
        self.last_reservations: Dict[int, float] = {}

    def on_completion(self, job: Job, now: float) -> None:
        super().on_completion(job, now)
        self.predicted_end.pop(job.id, None)

    def start(self, job: Job, now: float) -> None:
        self.predicted_end[job.id] = now + job.wcl
        super().start(job, now)

    def _occupations(self, now: float):
        """(nodes, predicted end) per running job, refreshing overrun
        predictions in place."""
        predicted = self.predicted_end
        for rj in self.cluster.running_jobs():
            pe = predicted[rj.id]
            if pe <= now:
                pe = now + self.overrun_extension
                predicted[rj.id] = pe
            yield rj.nodes, pe

    def schedule(self, now: float, reason: str) -> None:
        profile = ReservationProfile.from_occupations(
            self.cluster.size, now, self._occupations(now)
        )
        order = self.ordered_queue(now)
        to_start = []
        self.last_reservations = {}
        for rank, job in enumerate(order):
            if rank < self.depth:
                # reserved tier: earliest fit, blocks later jobs
                start = profile.earliest_fit(job.nodes, job.wcl, now)
                profile.reserve_fitted(start, start + job.wcl, job.nodes)
                self.last_reservations[job.id] = start
                if start <= now + EPS:
                    to_start.append(job)
            else:
                # backfill tier: start now or never (this event)
                if profile.min_available(now, now + job.wcl) >= job.nodes:
                    profile.reserve_fitted(now, now + job.wcl, job.nodes)
                    self.last_reservations[job.id] = now
                    to_start.append(job)
        for job in to_start:
            if self.last_reservations[job.id] > now and not self.cluster.fits(job):
                # startable only through the EPS slack: the freeing
                # completion sits a hair in the future; the pass at that
                # event re-places and starts it
                continue
            self.start(job, now)
