"""Sandia-style "fairshare" queuing priority.

The CPlant scheduler prioritized jobs by a per-user *decaying
processor-seconds* account: usage accrues while a user's jobs run and the
account is multiplied by a decay factor every 24 hours, so users who have
not recently used the machine sort ahead of heavy recent users.

The paper gives the mechanism but not the decay constant; we default to
x0.5 per 24 h (see DESIGN.md substitution #3).  Usage is charged
continuously (settled lazily at every state change and decay tick) rather
than in a lump at completion, so a week-long 512-node job weighs on its
owner's priority while it runs, not only afterwards.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Tuple

from ..core.job import Job
from ..obs import counters as _counters

#: seconds per day — the decay cadence the paper states.
DAY = 86_400.0


class FairshareTracker:
    """Per-user decayed processor-seconds accounting."""

    def __init__(self, decay_factor: float = 0.5, decay_interval: float = DAY) -> None:
        if not (0.0 <= decay_factor <= 1.0):
            raise ValueError(f"decay_factor must be in [0,1], got {decay_factor}")
        if decay_interval <= 0:
            raise ValueError("decay_interval must be positive")
        self.decay_factor = decay_factor
        self.decay_interval = decay_interval
        self._usage: Dict[int, float] = defaultdict(float)
        self._running_procs: Dict[int, int] = defaultdict(int)
        self._last_settle = 0.0
        #: bumped whenever any user's decayed usage changes; priority-order
        #: caches key on this to avoid re-sorting an unchanged queue
        self.usage_version = 0

    # -- accounting --------------------------------------------------------------

    def settle(self, now: float) -> None:
        """Accrue usage for all running processors up to ``now``."""
        if now < self._last_settle:
            raise ValueError(
                f"settle time went backwards: {now} < {self._last_settle}"
            )
        dt = now - self._last_settle
        if dt > 0:
            if self._running_procs:
                usage = self._usage
                for user, procs in self._running_procs.items():
                    if procs:
                        usage[user] += procs * dt
                self.usage_version += 1
                c = _counters.ACTIVE
                if c is not None:
                    c.hit("fairshare.settle")
            self._last_settle = now

    def decay(self, now: float) -> None:
        """Apply one multiplicative decay tick (call every 24 h)."""
        self.settle(now)
        c = _counters.ACTIVE
        if c is not None:
            c.hit("fairshare.decay")
        if self.decay_factor == 1.0:
            return
        if self._usage:
            self.usage_version += 1
        for user in list(self._usage):
            self._usage[user] *= self.decay_factor
            if self._usage[user] < 1e-9:
                del self._usage[user]

    def job_started(self, job: Job, now: float) -> None:
        self.settle(now)
        self._running_procs[job.user_id] += job.nodes

    def job_finished(self, job: Job, now: float) -> None:
        self.settle(now)
        self._running_procs[job.user_id] -= job.nodes
        if self._running_procs[job.user_id] < 0:
            raise RuntimeError(f"negative running procs for user {job.user_id}")
        if self._running_procs[job.user_id] == 0:
            del self._running_procs[job.user_id]

    # -- queries -------------------------------------------------------------------

    def usage_of(self, user: int, now: float) -> float:
        self.settle(now)
        return self._usage.get(user, 0.0)

    def all_usage(self, now: float) -> Dict[int, float]:
        self.settle(now)
        return dict(self._usage)

    def mean_active_usage(self, now: float) -> float:
        """Mean decayed usage over users with nonzero usage (0 if none)."""
        self.settle(now)
        vals = [u for u in self._usage.values() if u > 0]
        return sum(vals) / len(vals) if vals else 0.0

    def is_heavy(self, user: int, now: float, heavy_factor: float = 1.0) -> bool:
        """Is this user's decayed usage above ``heavy_factor`` x the mean
        active usage?  Used by the ``.fair`` starvation-entrance policy."""
        mean = self.mean_active_usage(now)
        if mean == 0.0:
            return False
        return self.usage_of(user, now) > heavy_factor * mean

    # -- ordering --------------------------------------------------------------------

    def priority_key(self, job: Job, now: float) -> Tuple[float, float, int]:
        """Sort key: ascending decayed usage, then FCFS tie-break.

        Lower usage = higher priority (users who have not recently used the
        machine go first).
        """
        return (self.usage_of(job.user_id, now), job.submit_time, job.id)

    def order(self, jobs: Iterable[Job], now: float) -> list[Job]:
        """Jobs sorted into fairshare priority order."""
        self.settle(now)
        usage = self._usage
        return sorted(
            jobs, key=lambda j: (usage.get(j.user_id, 0.0), j.submit_time, j.id)
        )
