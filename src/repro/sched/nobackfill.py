"""Strict priority-order scheduling without backfilling.

The paper's Figure 1 baseline: only the job at the head of the (priority-
ordered) queue may start; everyone else waits even if nodes are free.
"Fair" in the social-justice sense but with poor utilization — included as
a reference substrate and as the schedule family underlying fair-start-time
reasoning.
"""

from __future__ import annotations

from .base import BaseScheduler


class NoBackfillScheduler(BaseScheduler):
    """FCFS or fairshare strict no-backfill scheduler."""

    def __init__(self, priority: str = "fcfs", **kw) -> None:
        super().__init__(priority=priority, **kw)
        self.name = f"nobackfill.{priority}"

    def schedule(self, now: float, reason: str) -> None:
        # start from the head while it fits; the first blocked job blocks all
        while self.queue:
            head = self.ordered_queue(now)[0]
            if not self.cluster.fits(head):
                return
            self.start(head, now)
