"""Placement-aware cluster: the counting model plus actual node indices.

Wraps the same start/finish lifecycle as :class:`repro.core.cluster.Cluster`
but assigns concrete node indices via an allocation strategy and records
every placement, so post-hoc locality/fragmentation analysis (the CPA's
objective) is possible.  It is a drop-in ``cluster`` for the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.cluster import AllocationError, Cluster
from ..core.job import Job
from .allocators import AllocationStrategy, FirstFitAllocator


@dataclass(frozen=True)
class Placement:
    """One job's realized allocation."""

    job_id: int
    nodes: tuple  # sorted node indices
    start_time: float
    end_time: Optional[float] = None

    @property
    def span(self) -> int:
        """Distance between first and last node, +1 (compactness proxy)."""
        return self.nodes[-1] - self.nodes[0] + 1

    @property
    def width(self) -> int:
        return len(self.nodes)


class PlacedCluster(Cluster):
    """A cluster whose allocations name specific nodes."""

    def __init__(self, size: int, strategy: Optional[AllocationStrategy] = None) -> None:
        super().__init__(size)
        self.strategy = strategy or FirstFitAllocator()
        self._free_set = set(range(size))
        self._node_of_job: Dict[int, List[int]] = {}
        #: completed placements, in completion order (analysis output)
        self.placements: List[Placement] = []
        self._open: Dict[int, Placement] = {}

    def start(self, job: Job, now: float) -> None:
        if job.nodes > len(self._free_set):
            raise AllocationError(
                f"job {job.id} needs {job.nodes} nodes, "
                f"{len(self._free_set)} free"
            )
        chosen = self.strategy.select(self._free_set, job.nodes)
        if len(set(chosen)) != job.nodes:
            raise AllocationError(
                f"strategy {self.strategy.name} returned {len(set(chosen))} "
                f"distinct nodes for a {job.nodes}-node request"
            )
        bad = [n for n in chosen if n not in self._free_set]
        if bad:
            raise AllocationError(
                f"strategy {self.strategy.name} picked busy nodes {bad[:5]}"
            )
        super().start(job, now)
        self._free_set.difference_update(chosen)
        self._node_of_job[job.id] = sorted(chosen)
        self._open[job.id] = Placement(
            job_id=job.id, nodes=tuple(sorted(chosen)), start_time=now,
        )

    def finish(self, job: Job, now: float) -> None:
        super().finish(job, now)
        nodes = self._node_of_job.pop(job.id)
        self._free_set.update(nodes)
        open_pl = self._open.pop(job.id)
        self.placements.append(
            Placement(open_pl.job_id, open_pl.nodes, open_pl.start_time, now)
        )

    def nodes_of(self, job: Job) -> List[int]:
        """Concrete node indices of a running job."""
        try:
            return list(self._node_of_job[job.id])
        except KeyError:
            raise AllocationError(f"job {job.id} is not running") from None

    def free_node_indices(self) -> List[int]:
        return sorted(self._free_set)

    def check_invariants(self) -> None:
        super().check_invariants()
        busy = set()
        for nodes in self._node_of_job.values():
            for n in nodes:
                if n in busy:
                    raise AllocationError(f"node {n} double-allocated")
                busy.add(n)
        if busy & self._free_set:
            raise AllocationError("free set overlaps busy nodes")
        if len(busy) + len(self._free_set) != self.size:
            raise AllocationError("placement accounting does not cover machine")
