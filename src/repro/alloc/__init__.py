"""Compute Process Allocator (CPA) substrate.

The paper's abstract: "A separate compute process allocator (CPA) ensures
that the jobs on the machines are not too fragmented in order to maximize
throughput."  CPlant allocated *specific* nodes with 1D linear strategies
(Leung et al., "Processor allocation on CPlant: achieving general
processor locality using one-dimensional allocation strategies").

This subpackage implements that substrate: placement strategies over a
linear node ordering, a placement-aware cluster, and the locality /
fragmentation metrics that motivated the CPA.  None of the paper's
*evaluated* metrics depend on placement (the scheduling study is a pure
counting model), so this is an optional layer — but it completes the
Sandia environment the paper describes and lets the allocation-quality
ablation (``benchmarks/bench_ablation_allocation.py``) quantify how the
scheduling policies differ in the fragmentation they induce.
"""

from .allocators import (
    AllocationStrategy,
    BestFitAllocator,
    FirstFitAllocator,
    RandomAllocator,
    SpanMinimizingAllocator,
)
from .metrics import (
    PlacementStats,
    average_span_ratio,
    fragmentation_of,
    placement_stats,
    span_of,
)
from .placed_cluster import PlacedCluster, Placement

__all__ = [
    "AllocationStrategy",
    "BestFitAllocator",
    "FirstFitAllocator",
    "PlacedCluster",
    "Placement",
    "PlacementStats",
    "RandomAllocator",
    "SpanMinimizingAllocator",
    "average_span_ratio",
    "fragmentation_of",
    "placement_stats",
    "span_of",
]
