"""Placement-quality metrics: the objectives the CPA optimizes.

* **span** of a placement: last - first node index + 1; span == width is a
  perfectly contiguous allocation.
* **span ratio**: span / width (1.0 = contiguous; larger = fragmented,
  more cross-job network contention on a 1D-mapped machine).
* **fragmentation** of a free set: 1 - largest_free_interval / free_count
  (0 = one contiguous hole; -> 1 = dust).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .allocators import _free_intervals
from .placed_cluster import Placement


def span_of(placement: Placement) -> int:
    return placement.span


def fragmentation_of(free_indices: Sequence[int]) -> float:
    """1 - (largest free run / total free); 0.0 for empty or whole sets."""
    arr = np.asarray(sorted(free_indices), dtype=np.int64)
    if len(arr) == 0:
        return 0.0
    longest = max(length for _, length in _free_intervals(arr))
    return 1.0 - longest / len(arr)


@dataclass(frozen=True)
class PlacementStats:
    n_placements: int
    mean_span_ratio: float      # 1.0 = always contiguous
    p95_span_ratio: float
    contiguous_fraction: float  # placements with span == width
    #: span ratio weighted by the placement's proc-seconds (big jobs matter)
    work_weighted_span_ratio: float


def average_span_ratio(placements: Sequence[Placement]) -> float:
    if not placements:
        return 1.0
    return float(np.mean([p.span / p.width for p in placements]))


def placement_stats(placements: Sequence[Placement]) -> PlacementStats:
    if not placements:
        return PlacementStats(0, 1.0, 1.0, 1.0, 1.0)
    ratios = np.array([p.span / p.width for p in placements])
    weights = np.array([
        p.width * ((p.end_time - p.start_time) if p.end_time else 0.0)
        for p in placements
    ])
    wsum = weights.sum()
    weighted = float((ratios * weights).sum() / wsum) if wsum > 0 else 1.0
    return PlacementStats(
        n_placements=len(placements),
        mean_span_ratio=float(ratios.mean()),
        p95_span_ratio=float(np.percentile(ratios, 95)),
        contiguous_fraction=float((ratios == 1.0).mean()),
        work_weighted_span_ratio=weighted,
    )
