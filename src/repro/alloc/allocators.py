"""1D linear allocation strategies (the CPA's placement policies).

CPlant's allocator ordered nodes along a line (a space-filling curve over
the mesh) and picked node sets for each job trying to keep them compact:
compact allocations reduce network contention between jobs.  The classic
strategies from the CPlant papers:

* **first-fit**: the lowest-indexed free interval that holds the job; if
  no single interval is large enough, take free nodes greedily from the
  left (allocation is never refused for fragmentation reasons).
* **best-fit**: the smallest free interval that still holds the job
  (keeps large intervals intact for future wide jobs).
* **span-minimizing**: choose the window of free nodes with the smallest
  *span* (distance between first and last allocated node) — a direct
  proxy for the communication-locality objective of Leung et al.
* **random**: scatter across free nodes; the anti-locality baseline.

Every strategy receives the free-node index set and the request size and
returns the chosen indices; feasibility (enough free nodes) is the
caller's concern.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _free_intervals(free_sorted: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal runs of consecutive indices, as (start_pos, length) into
    ``free_sorted``."""
    if len(free_sorted) == 0:
        return []
    breaks = np.where(np.diff(free_sorted) > 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(free_sorted) - 1]))
    return [(int(s), int(e - s + 1)) for s, e in zip(starts, ends)]


class AllocationStrategy:
    """Base class: pick ``count`` node indices from the free set."""

    name = "abstract"

    def select(self, free: Sequence[int], count: int) -> List[int]:
        raise NotImplementedError

    def _check(self, free: Sequence[int], count: int) -> np.ndarray:
        if count <= 0:
            raise ValueError("count must be positive")
        arr = np.asarray(sorted(free), dtype=np.int64)
        if len(arr) < count:
            raise ValueError(f"need {count} nodes, only {len(arr)} free")
        return arr


class FirstFitAllocator(AllocationStrategy):
    """Lowest contiguous interval that fits; greedy-from-left fallback."""

    name = "first-fit"

    def select(self, free: Sequence[int], count: int) -> List[int]:
        arr = self._check(free, count)
        for start, length in _free_intervals(arr):
            if length >= count:
                return [int(x) for x in arr[start:start + count]]
        return [int(x) for x in arr[:count]]


class BestFitAllocator(AllocationStrategy):
    """Smallest contiguous interval that fits; greedy-from-left fallback."""

    name = "best-fit"

    def select(self, free: Sequence[int], count: int) -> List[int]:
        arr = self._check(free, count)
        best: Optional[Tuple[int, int]] = None
        for start, length in _free_intervals(arr):
            if length >= count and (best is None or length < best[1]):
                best = (start, length)
        if best is not None:
            return [int(x) for x in arr[best[0]:best[0] + count]]
        return [int(x) for x in arr[:count]]


class SpanMinimizingAllocator(AllocationStrategy):
    """Window of ``count`` free nodes with minimal index span.

    Sliding a window over the sorted free list finds the globally
    span-minimal selection in O(free) — the 1D analogue of the MC
    locality heuristics in the CPlant allocation papers.
    """

    name = "span-min"

    def select(self, free: Sequence[int], count: int) -> List[int]:
        arr = self._check(free, count)
        spans = arr[count - 1:] - arr[: len(arr) - count + 1]
        k = int(np.argmin(spans))
        return [int(x) for x in arr[k:k + count]]


class RandomAllocator(AllocationStrategy):
    """Uniformly random free nodes (anti-locality reference)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def select(self, free: Sequence[int], count: int) -> List[int]:
        arr = self._check(free, count)
        picked = self._rng.choice(arr, size=count, replace=False)
        return [int(x) for x in np.sort(picked)]
