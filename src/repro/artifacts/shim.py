"""Shims that keep ``benchmarks/bench_fig*.py`` thin but alive.

Every per-figure benchmark script reduces to two lines against this
module::

    test_fig08_percent_unfair_minor = bench_shim("fig08")

    if __name__ == "__main__":
        raise SystemExit(main_shim("fig08"))

``bench_shim`` builds the pytest-benchmark test function from the
artifact's registration (data projection, renderer, and shape check all
live in :mod:`repro.artifacts.registry`), reusing the session-scoped
``workload``/``suite`` fixtures from ``benchmarks/conftest.py`` —
lazily, so a table-only run never simulates the nine-policy suite.

``main_shim`` keeps ``python benchmarks/bench_fig08_....py`` working as
a standalone entry point: it builds exactly that artifact through the
campaign cache (``repro paper build --only ...`` in miniature), prints
the rendering, and honors the historical ``REPRO_BENCH_SCALE`` /
``REPRO_BENCH_FULL`` / ``REPRO_BENCH_SEED`` environment knobs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, List, Optional

from ..campaign.cache import CampaignCache
from ..experiments.config import BenchConfig
from ..experiments.runner import RunOptions, cached_suite
from .build import PaperConfig, build_artifacts
from .registry import get_artifact
from .spec import ArtifactInputs


def _artifact_suite(art, request):
    """The run suite an artifact's data function consumes.

    Artifacts on the paper's default configuration share the session-scoped
    nine-policy ``suite`` fixture; artifacts with their own options (e.g.
    the fairness matrix's extra reference orders) simulate their own cells
    — memoized via :func:`cached_suite`, so repeated benchmark runs in one
    session pay once.
    """
    if not art.policies:
        return {}
    if art.options == RunOptions():
        return request.getfixturevalue("suite")
    return cached_suite(
        request.getfixturevalue("workload"),
        art.policies,
        **art.options.as_run_kwargs(),
    )


def bench_shim(artifact_id: str) -> Callable:
    """A pytest-benchmark test for one registered artifact."""
    art = get_artifact(artifact_id)

    def test(benchmark, request, emit, shape):
        needs = art.needs_workload
        workload = request.getfixturevalue("workload") if needs else None
        suite = _artifact_suite(art, request)
        inputs = ArtifactInputs(suite=suite, workload=workload)
        data = benchmark(art.data, inputs)
        emit(art.stem, art.render(data))
        if art.check is not None:
            art.check(data, shape)

    test.__name__ = f"test_{art.stem}"
    test.__doc__ = f"{art.id}: {art.title}"
    return test


def _default_out_dir() -> Path:
    """The invoked script's ``reports`` sibling (matching where the
    pytest path archives renderings, regardless of the caller's CWD),
    else a local build directory."""
    script = Path(sys.argv[0])
    if script.is_file() and script.name.startswith("bench_"):
        return script.resolve().parent / "reports"
    return Path("paper-artifacts")


def main_shim(artifact_id: str, argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for one benchmark script."""
    art = get_artifact(artifact_id)
    env = BenchConfig.from_env()
    parser = argparse.ArgumentParser(
        description=f"build paper artifact {art.id}: {art.title}"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=env.scale,
        help="synthetic trace scale (default from REPRO_BENCH_SCALE/FULL)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=env.seed,
        help="generator seed (default from REPRO_BENCH_SEED)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="simulation worker processes"
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="output directory (default benchmarks/reports)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="campaign cache root (default ~/.cache/repro-campaign)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk cell cache",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the artifact's qualitative shape checks",
    )
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir) if args.out_dir else _default_out_dir()
    cache = None if args.no_cache else CampaignCache(args.cache_dir)
    result = build_artifacts(
        only=[art.id],
        config=PaperConfig(scale=args.scale, seed=args.seed),
        out_dir=out_dir,
        jobs=args.jobs,
        cache=cache,
        check=not args.no_check,
    )
    print(result.texts[art.id])
    rendered = result.outputs[0]
    print(
        f"\n[{art.id}] wrote {rendered.path} "
        f"({result.n_simulated} simulated, {result.n_cached} cached, "
        f"{result.elapsed:.2f}s)"
    )
    return 0
