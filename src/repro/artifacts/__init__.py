"""Declarative paper-artifact pipeline.

Each figure/table of the paper is a registered
:class:`~repro.artifacts.spec.Artifact`; the builder resolves a
selection into the deduplicated set of simulation cells it needs,
executes them through the campaign subsystem's content-addressed cache,
renders outputs in parallel, and writes a deterministic
``manifest.json`` of input/output digests.  See ``docs/PIPELINE.md``.
"""

from .build import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    ArtifactOutput,
    BuildPlan,
    BuildResult,
    PaperConfig,
    build_artifacts,
    diff_manifests,
    load_manifest,
    manifest_doc,
    plan_build,
    verify_outputs,
)
from .registry import (
    BASELINE,
    all_artifacts,
    artifact_ids,
    get_artifact,
    register,
    select_artifacts,
)
from .shim import bench_shim, main_shim
from .spec import (
    SHAPE_MIN_JOBS,
    Artifact,
    ArtifactInputs,
    RecordRun,
)

__all__ = [
    "Artifact",
    "ArtifactInputs",
    "ArtifactOutput",
    "BASELINE",
    "BuildPlan",
    "BuildResult",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "PaperConfig",
    "RecordRun",
    "SHAPE_MIN_JOBS",
    "all_artifacts",
    "artifact_ids",
    "bench_shim",
    "build_artifacts",
    "diff_manifests",
    "get_artifact",
    "load_manifest",
    "main_shim",
    "manifest_doc",
    "plan_build",
    "register",
    "select_artifacts",
    "verify_outputs",
]
