"""The paper-artifact registry: Figures 3-19 and Tables 1-2.

Every artifact of the source paper is registered here as one
:class:`~repro.artifacts.spec.Artifact` — its required simulation cells
(policy keys), its data projection (reusing the pure functions in
:mod:`repro.experiments.figures` / :mod:`repro.experiments.tables`), its
renderer, and the qualitative shape check the benchmark suite asserts.

The benchmark scripts under ``benchmarks/`` are thin shims over these
registrations (see :mod:`repro.artifacts.shim`), and ``repro paper
build`` executes any selection of them through the campaign cache (see
:mod:`repro.artifacts.build`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..experiments import figures as F
from ..experiments import tables as T
from ..experiments.matrix import (
    MATRIX_REFERENCE_ORDERS,
    matrix_from_suite,
    render_matrix_rows,
)
from ..experiments.runner import RunOptions
from ..sched.registry import (
    CONSERVATIVE_POLICIES,
    MATRIX_POLICIES,
    MINOR_POLICIES,
    PAPER_POLICIES,
)
from .spec import Artifact, ArtifactInputs

#: the original CPlant scheduler — the baseline bar of every comparison
BASELINE = PAPER_POLICIES[0]

_REGISTRY: Dict[str, Artifact] = {}


def register(artifact: Artifact) -> Artifact:
    if artifact.id in _REGISTRY:
        raise ValueError(f"duplicate artifact id {artifact.id!r}")
    clash = [a.id for a in _REGISTRY.values() if a.output == artifact.output]
    if clash:
        raise ValueError(
            f"artifact {artifact.id!r} output {artifact.output!r} "
            f"already used by {clash}"
        )
    _REGISTRY[artifact.id] = artifact
    return artifact


def get_artifact(artifact_id: str) -> Artifact:
    try:
        return _REGISTRY[artifact_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown artifact {artifact_id!r}; known: {known}") from None


def artifact_ids() -> List[str]:
    """Registered ids, in registration (paper) order."""
    return list(_REGISTRY)


def all_artifacts() -> List[Artifact]:
    return list(_REGISTRY.values())


def select_artifacts(only: Optional[Sequence[str]] = None) -> List[Artifact]:
    """The build selection: every artifact, or the ``--only`` subset (in
    registry order, duplicates collapsed)."""
    if only is None:
        return all_artifacts()
    wanted = set(only)
    unknown = sorted(wanted - set(_REGISTRY))
    if unknown:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown artifact ids {unknown}; known: {known}")
    return [a for a in _REGISTRY.values() if a.id in wanted]


# -- Figure 3: weekly offered load vs utilization ------------------------------


def _fig03_data(inp: ArtifactInputs):
    return inp.suite[BASELINE].weekly


def _fig03_check(series, shape: bool) -> None:
    assert (series.utilization <= 1.0 + 1e-9).all()
    if shape:
        # the paper's signature load shape: overload weeks exist and
        # high-load weeks push utilization up hard
        assert series.offered_load.max() > 1.0
        assert series.utilization.max() > 0.8


register(
    Artifact(
        id="fig03",
        kind="figure",
        title="weekly offered load vs actual utilization",
        output="fig03_weekly_load.txt",
        data=_fig03_data,
        render=F.render_fig03,
        policies=(BASELINE,),
        check=_fig03_check,
    )
)


# -- Figures 4-7: workload scatter characterization ----------------------------


def _fig04_check(data, shape: bool) -> None:
    # "standard" node allocations: powers of two dominate (Section 2.2)
    nodes = data["nodes"].astype(int)
    pow2 = np.mean((nodes & (nodes - 1)) == 0)
    assert pow2 > 0.4


register(
    Artifact(
        id="fig04",
        kind="figure",
        title="runtime vs nodes scatter of submitted jobs",
        output="fig04_runtime_nodes.txt",
        data=lambda inp: F.fig04_runtime_vs_nodes(inp.workload),
        render=F.render_fig04,
        needs_workload=True,
        check=_fig04_check,
    )
)


def _fig05_check(data, shape: bool) -> None:
    # most jobs overestimate; a small tail of killed/aborted jobs ran
    # past their estimate (Section 2.2)
    over = (data["wcl"] >= data["runtime"]).mean()
    under = (data["wcl"] < 0.95 * data["runtime"]).mean()
    assert over > 0.85
    assert 0.0 < under < 0.1


register(
    Artifact(
        id="fig05",
        kind="figure",
        title="user wall-clock estimates vs actual runtimes",
        output="fig05_estimates.txt",
        data=lambda inp: F.fig05_estimates(inp.workload),
        render=F.render_fig05,
        needs_workload=True,
        check=_fig05_check,
    )
)


def _fig06_check(data, shape: bool) -> None:
    rt, f = data["runtime"], data["factor"]
    ok = (rt > 0) & np.isfinite(f)
    short = np.median(f[ok & (rt < 900)])
    long_ = np.median(f[ok & (rt > 86_400)])
    assert short > 2 * long_  # the wedge


register(
    Artifact(
        id="fig06",
        kind="figure",
        title="overestimation factor falls with runtime",
        output="fig06_overest_runtime.txt",
        data=lambda inp: F.fig06_overestimation_vs_runtime(inp.workload),
        render=F.render_fig06,
        needs_workload=True,
        check=_fig06_check,
    )
)


def _fig07_check(data, shape: bool) -> None:
    nd, f = data["nodes"], data["factor"]
    ok = np.isfinite(f) & (f > 0)
    # medians across narrow/wide halves stay within a small factor of
    # each other ("appears unrelated to the node selection")
    narrow = np.median(f[ok & (nd <= 16)])
    wide = np.median(f[ok & (nd > 16)])
    assert max(narrow, wide) / min(narrow, wide) < 5.0


register(
    Artifact(
        id="fig07",
        kind="figure",
        title="overestimation factor is roughly unrelated to width",
        output="fig07_overest_nodes.txt",
        data=lambda inp: F.fig07_overestimation_vs_nodes(inp.workload),
        render=F.render_fig07,
        needs_workload=True,
        check=_fig07_check,
    )
)


# -- Figures 8-13: the "minor changes" policy set ------------------------------


def _fig08_check(data, shape: bool) -> None:
    assert all(0.0 <= v <= 1.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant72.nomax.all"] < base
        assert data["cplant24.nomax.fair"] < base
        # the combination is among the best of the minor-change family
        assert data["cplant72.72max.fair"] < base


register(
    Artifact(
        id="fig08",
        kind="figure",
        title="percent of jobs missing their fair start time (minor changes)",
        output="fig08_percent_unfair_minor.txt",
        data=lambda inp: F.fig08_percent_unfair_minor(inp.suite),
        render=F.render_fig08,
        policies=MINOR_POLICIES,
        check=_fig08_check,
    )
)


def _fig09_check(data, shape: bool) -> None:
    assert all(v >= 0.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant24.72max.all"] < base * 1.1
        assert data["cplant72.72max.fair"] < base


register(
    Artifact(
        id="fig09",
        kind="figure",
        title="average fair-start miss time (minor changes)",
        output="fig09_miss_time_minor.txt",
        data=lambda inp: F.fig09_miss_time_minor(inp.suite),
        render=F.render_fig09,
        policies=MINOR_POLICIES,
        check=_fig09_check,
    )
)


def _fig10_check(data, shape: bool) -> None:
    if shape:
        base = data["cplant24.nomax.all"]
        # wide half of the categories misses more than the narrow half
        narrow = np.nanmean(base[:5])
        wide = np.nanmean(base[5:])
        assert wide > narrow


register(
    Artifact(
        id="fig10",
        kind="figure",
        title="average miss time by job width (minor changes)",
        output="fig10_miss_by_width_minor.txt",
        data=lambda inp: F.fig10_miss_by_width_minor(inp.suite),
        render=F.render_fig10,
        policies=MINOR_POLICIES,
        check=_fig10_check,
    )
)


def _fig11_check(data, shape: bool) -> None:
    assert all(v > 0.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant24.72max.all"] <= base * 1.05
        assert data["cplant72.72max.fair"] < base


register(
    Artifact(
        id="fig11",
        kind="figure",
        title="average turnaround time (minor changes)",
        output="fig11_tat_minor.txt",
        data=lambda inp: F.fig11_turnaround_minor(inp.suite),
        render=F.render_fig11,
        policies=MINOR_POLICIES,
        check=_fig11_check,
    )
)


def _fig12_check(data, shape: bool) -> None:
    if shape:
        base = data["cplant24.nomax.all"]
        assert np.nanmean(base[7:]) > np.nanmean(base[:4])


register(
    Artifact(
        id="fig12",
        kind="figure",
        title="average turnaround time by width (minor changes)",
        output="fig12_tat_by_width_minor.txt",
        data=lambda inp: F.fig12_turnaround_by_width_minor(inp.suite),
        render=F.render_fig12,
        policies=MINOR_POLICIES,
        check=_fig12_check,
    )
)


def _fig13_check(data, shape: bool) -> None:
    for v in data.values():
        assert 0.0 <= v < 0.5
    if shape:
        base = data["cplant24.nomax.all"]
        assert data["cplant24.72max.all"] < base * 1.05


register(
    Artifact(
        id="fig13",
        kind="figure",
        title="loss of capacity (minor changes)",
        output="fig13_loc_minor.txt",
        data=lambda inp: F.fig13_loc_minor(inp.suite),
        render=F.render_fig13,
        policies=MINOR_POLICIES,
        check=_fig13_check,
    )
)


# -- Figures 14-19: all nine policies ------------------------------------------


def _fig14_check(data, shape: bool) -> None:
    if shape:
        # dynamic reservations track the fairshare ideal closely: fewer
        # unfair jobs than the baseline and the plain conservative scheme
        # (at full scale they are the global minimum, as in the paper)
        dyn = min(data["consdyn.nomax"], data["consdyn.72max"])
        assert dyn < data["cplant24.nomax.all"]
        assert dyn < data["cons.nomax"]
        assert dyn < data["cons.72max"]


register(
    Artifact(
        id="fig14",
        kind="figure",
        title="percent of unfair jobs (all nine policies)",
        output="fig14_percent_unfair_all.txt",
        data=lambda inp: F.fig14_percent_unfair_all(inp.suite),
        render=F.render_fig14,
        policies=PAPER_POLICIES,
        check=_fig14_check,
    )
)


def _fig15_check(data, shape: bool) -> None:
    assert all(v >= 0.0 for v in data.values())
    if shape:
        # runtime limits lower the conservative-family miss times
        assert data["cons.72max"] < data["cons.nomax"] * 1.2
        assert data["consdyn.72max"] < data["consdyn.nomax"] * 1.1
        # the dynamic no-limit policy misses hard when it misses
        assert data["consdyn.nomax"] > data["cplant72.72max.fair"]


register(
    Artifact(
        id="fig15",
        kind="figure",
        title="average miss time (all nine policies)",
        output="fig15_miss_time_all.txt",
        data=lambda inp: F.fig15_miss_time_all(inp.suite),
        render=F.render_fig15,
        policies=PAPER_POLICIES,
        check=_fig15_check,
    )
)


def _fig16_check(data, shape: bool) -> None:
    if shape:
        base_wide = np.nansum(data["cplant24.nomax.all"][6:])
        cons_wide = np.nansum(data["cons.72max"][6:])
        assert cons_wide < base_wide * 1.5


register(
    Artifact(
        id="fig16",
        kind="figure",
        title="average miss time by width (conservative set)",
        output="fig16_miss_by_width_cons.txt",
        data=lambda inp: F.fig16_miss_by_width_cons(inp.suite),
        render=F.render_fig16,
        policies=CONSERVATIVE_POLICIES,
        check=_fig16_check,
    )
)


def _fig17_check(data, shape: bool) -> None:
    assert all(v > 0.0 for v in data.values())
    if shape:
        base = data["cplant24.nomax.all"]
        # the all-modifications baseline variant and the limited
        # conservative schemes sit at or below the original scheduler
        assert data["cplant72.72max.fair"] < base
        assert data["consdyn.72max"] < base * 1.25


register(
    Artifact(
        id="fig17",
        kind="figure",
        title="average turnaround time (all nine policies)",
        output="fig17_tat_all.txt",
        data=lambda inp: F.fig17_turnaround_all(inp.suite),
        render=F.render_fig17,
        policies=PAPER_POLICIES,
        check=_fig17_check,
    )
)


def _fig18_check(data, shape: bool) -> None:
    for series in data.values():
        assert series.shape == (11,)
        assert np.nanmax(series) >= 0
    if shape:
        base_wide = np.nansum(data["cplant24.nomax.all"][6:])
        cons_wide = np.nansum(data["cons.72max"][6:])
        assert cons_wide < base_wide * 1.5


register(
    Artifact(
        id="fig18",
        kind="figure",
        title="turnaround time by width (conservative set)",
        output="fig18_tat_by_width_cons.txt",
        data=lambda inp: F.fig18_turnaround_by_width_cons(inp.suite),
        render=F.render_fig18,
        policies=CONSERVATIVE_POLICIES,
        check=_fig18_check,
    )
)


def _fig19_check(data, shape: bool) -> None:
    assert all(0.0 <= v < 1.0 for v in data.values())
    if shape:
        assert data["cons.72max"] < data["cons.nomax"]
        assert data["consdyn.72max"] < data["consdyn.nomax"]
        assert data["cons.72max"] < data["consdyn.nomax"]


register(
    Artifact(
        id="fig19",
        kind="figure",
        title="loss of capacity (all nine policies)",
        output="fig19_loc_all.txt",
        data=lambda inp: F.fig19_loc_all(inp.suite),
        render=F.render_fig19,
        policies=PAPER_POLICIES,
        check=_fig19_check,
    )
)


# -- Tables 1-2: the width x length workload characterization ------------------


def _table1_check(cmp, shape: bool) -> None:
    # the generator reproduces Table 1 cellwise (proportionally at
    # scale < 1)
    assert cmp.l1_rel_error < 0.25


register(
    Artifact(
        id="table1",
        kind="table",
        title="number of jobs in each length/width category",
        output="table1_job_counts.txt",
        data=lambda inp: T.table1_job_counts(inp.workload),
        render=T.render_table1,
        needs_workload=True,
        check=_table1_check,
    )
)


def _table2_check(cmp, shape: bool) -> None:
    assert cmp.l1_rel_error < 0.35


register(
    Artifact(
        id="table2",
        kind="table",
        title="processor-hours in each length/width category",
        output="table2_proc_hours.txt",
        data=lambda inp: T.table2_proc_hours(inp.workload),
        render=T.render_table2,
        needs_workload=True,
        check=_table2_check,
    )
)


# -- the fairness matrix: policy x reference order (extension) -----------------


def _matrix_data(inp: ArtifactInputs):
    return matrix_from_suite(inp.suite, MATRIX_REFERENCE_ORDERS)


def _matrix_render(rows) -> str:
    out = [
        "Fairness matrix: policy x hybrid-FST reference order "
        "(shared CPlant trace)",
        "(cell: % of jobs missing their FST | average miss time, hours)",
        "",
    ]
    out.extend(
        render_matrix_rows(rows, MATRIX_REFERENCE_ORDERS,
                           policies=MATRIX_POLICIES)
    )
    return "\n".join(out)


def _matrix_check(rows, shape: bool) -> None:
    for by_order in rows.values():
        for block in by_order.values():
            assert 0.0 <= block["percent_unfair"] <= 1.0
            assert block["average_miss_time"] >= 0.0
            assert block["n_jobs"] > 0
    # with perfect estimates, strict FCFS-no-backfill *is* the FCFS-order
    # hypothetical schedule, so it must be exactly fair under that order
    assert rows["fcfs.nobackfill"]["fcfs"]["n_unfair"] == 0


register(
    Artifact(
        id="matrix",
        kind="table",
        title="policy x reference-order fairness matrix",
        output="matrix_policy_fairness.txt",
        data=_matrix_data,
        render=_matrix_render,
        policies=MATRIX_POLICIES,
        check=_matrix_check,
        options=RunOptions(reference_orders=MATRIX_REFERENCE_ORDERS),
    )
)
