"""Declarative paper-artifact specifications.

An :class:`Artifact` names one reproducible output of the paper — a
figure or a table — as pure data: which simulation cells it needs
(policy keys over the shared CPlant trace), how to project those cells
into plain data, how to render that data as text, and which file the
rendering lands in.  The registry (:mod:`.registry`) holds one spec per
paper figure/table; the builder (:mod:`.build`) turns a selection of
specs into a deduplicated cell plan executed through the campaign
cache.

Two input shapes satisfy a spec:

* live :class:`~repro.experiments.runner.PolicyRun` objects (the pytest
  benchmark path, where the suite is simulated in-process), and
* :class:`RecordRun` views over cached campaign metric records (the
  ``repro paper build`` path, where cells come out of the
  content-addressed cache).

Both expose the same attribute surface, so every ``data`` function is
written once and the rendering is byte-identical across paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from ..experiments.runner import RunOptions
from ..metrics.weekly import WeeklySeries
from ..workload.model import Workload

#: below this many jobs the paper's policy-shape assertions are
#: statistical noise (a couple of spike weeks drive everything);
#: artifacts still render, the shape checks just turn off.
SHAPE_MIN_JOBS = 1500

#: artifact kinds the registry accepts
KINDS = ("figure", "table")


class RecordRun:
    """A :class:`~repro.experiments.runner.PolicyRun`-shaped view over a
    cached campaign metric record.

    The campaign cache stores flattened JSON records
    (:func:`~repro.experiments.export.policy_run_record`), not job lists;
    this adapter exposes the slice of the ``PolicyRun`` attribute surface
    the figure projections consume, reconstructed from those records.
    """

    __slots__ = ("policy", "record")

    def __init__(self, policy: str, record: Mapping[str, object]) -> None:
        self.policy = policy
        self.record = record

    @property
    def percent_unfair(self) -> float:
        return float(self.record["fairness"]["percent_unfair"])

    @property
    def fairness_by_order(self) -> Dict[str, Dict[str, float]]:
        """Per-reference-order fairness blocks (empty for default runs)."""
        return dict(self.record.get("fairness_by_order") or {})

    @property
    def average_miss_time(self) -> float:
        return float(self.record["fairness"]["average_miss_time"])

    @property
    def average_turnaround(self) -> float:
        return float(self.record["summary"]["avg_turnaround"])

    @property
    def loss_of_capacity(self) -> float:
        return float(self.record["loss_of_capacity"])

    @property
    def miss_by_width(self) -> np.ndarray:
        return np.asarray(self.record["miss_by_width"], dtype=float)

    @property
    def turnaround_by_width(self) -> np.ndarray:
        return np.asarray(self.record["turnaround_by_width"], dtype=float)

    @property
    def weekly(self) -> WeeklySeries:
        w = self.record["weekly"]
        return WeeklySeries(
            week_start=np.asarray(w["week_start"], dtype=float),
            offered_load=np.asarray(w["offered_load"], dtype=float),
            utilization=np.asarray(w["utilization"], dtype=float),
        )


@dataclass(frozen=True)
class ArtifactInputs:
    """Everything an artifact's ``data`` function may consume.

    ``suite`` maps policy key -> run-like object (``PolicyRun`` or
    :class:`RecordRun`), restricted to the artifact's declared policies
    on the build path; ``workload`` is the shared trace, present only
    when the artifact declared ``needs_workload``.
    """

    suite: Mapping[str, object]
    workload: Optional[Workload] = None


@dataclass(frozen=True)
class Artifact:
    """One paper figure/table as a declarative build target.

    ``policies`` are the simulation cells the artifact requires (empty
    for workload-characterization artifacts); ``options`` the engine
    options those cells run under (the default is the paper's pinned
    configuration — artifacts needing e.g. extra hybrid-FST reference
    orders declare it here and the planner keys their cells separately);
    ``data`` projects inputs into plain data; ``render`` turns that data
    into the output text; ``check`` optionally asserts the paper's
    qualitative shape (given whether the trace is large enough for shape
    assertions to be meaningful).
    """

    id: str
    kind: str
    title: str
    output: str
    data: Callable[[ArtifactInputs], object]
    render: Callable[[object], str]
    policies: Tuple[str, ...] = ()
    needs_workload: bool = False
    check: Optional[Callable[[object, bool], None]] = None
    options: RunOptions = field(default_factory=RunOptions)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown artifact kind {self.kind!r}; known: {KINDS}")
        if not self.output.endswith(".txt"):
            raise ValueError(f"artifact {self.id}: output must be a .txt file")
        if not self.policies and not self.needs_workload:
            raise ValueError(f"artifact {self.id} declares no inputs at all")

    @property
    def stem(self) -> str:
        """Output filename without extension (the report/emit name)."""
        return self.output.rsplit(".", 1)[0]

    def build_text(
        self, inputs: ArtifactInputs, check: bool = False, shape: bool = False
    ) -> str:
        """Project, optionally check, and render this artifact.

        ``shape`` says whether the underlying trace is large enough for
        the paper's qualitative shape assertions (see
        :data:`SHAPE_MIN_JOBS`); range/sanity checks run regardless.
        """
        data = self.data(inputs)
        if check and self.check is not None:
            self.check(data, shape)
        return self.render(data)


def suite_subset(
    suite: Mapping[str, object], keys: Tuple[str, ...]
) -> Dict[str, object]:
    """The declared-policy slice of a suite, failing on missing cells."""
    missing = [k for k in keys if k not in suite]
    if missing:
        raise KeyError(f"suite is missing policies: {missing}")
    return {k: suite[k] for k in keys}
