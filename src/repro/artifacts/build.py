"""The paper-artifact build: plan, execute, render, manifest.

``plan_build`` turns an artifact selection into the deduplicated list of
campaign cells it needs (artifacts overwhelmingly share cells — all of
Figures 8-19 project the same nine-policy suite — so the union is tiny).
``build_artifacts`` executes that plan through the campaign executor and
its content-addressed cache (rebuilds are incremental: an unchanged cell
is a cache hit, an unchanged selection simulates nothing), renders every
artifact in parallel, and writes a ``manifest.json`` mapping each
artifact to the content digests of its inputs (cell keys, workload
digest) and its output bytes.

The manifest is deterministic: identical code + config produce
byte-identical manifests across processes and machines, which is what
the CI ``paper-smoke`` job asserts.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..campaign.cache import CampaignCache, cell_key, code_version
from ..campaign.executor import (
    CampaignRunStats,
    ProgressFn,
    campaign_stats,
    default_journal_dir,
    run_cells,
)
from ..campaign.journal import RunJournal
from ..campaign.retry import RetryPolicy, RunReport
from ..campaign.spec import CampaignCell, WorkloadSpec
from ..workload.model import Workload
from .registry import select_artifacts
from .spec import (
    SHAPE_MIN_JOBS,
    Artifact,
    ArtifactInputs,
    RecordRun,
    suite_subset,
)

PathLike = Union[str, Path]

#: bump when the manifest document layout changes
#: (2: added the deterministic plan-shape ``stats`` block)
MANIFEST_SCHEMA = 2

#: the manifest filename inside the output directory
MANIFEST_NAME = "manifest.json"

#: sidecar with the volatile run stats (wall time, cache hits) — kept out
#: of the manifest, which must stay byte-identical across rebuilds
STATS_NAME = "build-stats.json"

#: default trace scale for ``repro paper build`` (the benchmark default)
DEFAULT_SCALE = 0.2

#: default generator seed (the benchmark default)
DEFAULT_SEED = 7


@dataclass(frozen=True)
class PaperConfig:
    """The shared-trace knobs of a paper build.

    ``scale`` shrinks the synthetic CPlant trace (1.0 is the full
    13,236-job, 33-week trace; 0.05 is the CI smoke size); ``seed``
    drives the generator.  Everything else (estimate mode, epsilon, kill
    policy) is pinned to the paper's configuration so every artifact of
    one build describes one experiment.
    """

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED

    def workload_spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            kind="cplant", params=(("scale", self.scale),), seed=self.seed
        )

    def build_workload(self) -> Workload:
        return self.workload_spec().build(self.seed)


@dataclass
class BuildPlan:
    """An artifact selection resolved into a deduplicated cell list."""

    config: PaperConfig
    artifacts: List[Artifact]
    #: union of required cells across the selection, deterministic order
    cells: List[CampaignCell]
    #: cache key per cell, aligned with ``cells``
    keys: List[str]
    #: artifact id -> policy key -> cache key (the per-artifact input
    #: digests; artifacts may run the same policy under different options,
    #: so the mapping cannot be flattened across the selection)
    cell_keys: Dict[str, Dict[str, str]]
    needs_workload: bool

    @property
    def n_shared(self) -> int:
        """How many cell requirements the dedup collapsed away."""
        wanted = sum(len(a.policies) for a in self.artifacts)
        return wanted - len(self.cells)


def plan_build(
    only: Optional[Sequence[str]] = None,
    config: Optional[PaperConfig] = None,
) -> BuildPlan:
    """Resolve a selection into the union of cells it needs.

    Cells are deduplicated by their content-addressed cache key, so two
    artifacts requiring the same (workload, seed, policy, options) cell
    contribute it once; order follows first use across the selection.
    """
    cfg = config or PaperConfig()
    artifacts = select_artifacts(only)
    wspec = cfg.workload_spec()
    cells: List[CampaignCell] = []
    keys: List[str] = []
    cell_keys: Dict[str, Dict[str, str]] = {}
    seen: Dict[str, int] = {}
    for art in artifacts:
        by_policy = cell_keys.setdefault(art.id, {})
        for policy in art.policies:
            cell = CampaignCell(
                workload=wspec, seed=cfg.seed, policy=policy,
                options=art.options,
            )
            key = cell_key(cell)
            if key not in seen:
                seen[key] = len(cells)
                cells.append(cell)
                keys.append(key)
            by_policy[policy] = key
    return BuildPlan(
        config=cfg,
        artifacts=artifacts,
        cells=cells,
        keys=keys,
        cell_keys=cell_keys,
        needs_workload=any(a.needs_workload for a in artifacts),
    )


@dataclass
class ArtifactOutput:
    """One rendered artifact: where it landed and what it hashed to."""

    artifact: Artifact
    path: Path
    sha256: str


@dataclass
class BuildResult:
    """Everything a ``repro paper build`` produced."""

    plan: BuildPlan
    outputs: List[ArtifactOutput]
    manifest_path: Path
    n_simulated: int = 0
    n_cached: int = 0
    elapsed: float = 0.0
    texts: Dict[str, str] = field(default_factory=dict)
    stats: Optional[CampaignRunStats] = None
    stats_path: Optional[Path] = None


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def build_artifacts(
    only: Optional[Sequence[str]] = None,
    config: Optional[PaperConfig] = None,
    out_dir: PathLike = "paper-artifacts",
    jobs: int = 1,
    cache: Optional[CampaignCache] = None,
    force: bool = False,
    check: bool = False,
    progress: Optional[ProgressFn] = None,
    retry: Optional[RetryPolicy] = None,
    resume: bool = False,
) -> BuildResult:
    """Build a selection of paper artifacts end to end.

    Missing cells are simulated (in parallel for ``jobs > 1``) and
    cached; renders fan out over a thread pool; the manifest is written
    last so a manifest on disk always describes completed outputs.
    With ``check=True`` each artifact's qualitative shape check runs
    against the freshly built data (shape assertions only engage when
    the trace has at least ``SHAPE_MIN_JOBS`` jobs).

    Every run journals its completions next to the cache, so an
    interrupted build continues with ``resume=True`` (``repro paper
    build --resume``); cell failures follow ``retry`` (default:
    :class:`RetryPolicy`).  Recovery accounting lands in the
    ``build-stats.json`` sidecar, never the manifest.
    """
    t0 = time.perf_counter()
    plan = plan_build(only, config)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    journal = None
    journal_dir = default_journal_dir(cache)
    if journal_dir is not None:
        journal = RunJournal.at(journal_dir, plan.keys, name="paper-build")
    stats_base = cache.stats.snapshot() if cache is not None else None
    report = RunReport()
    results = run_cells(
        plan.cells, jobs=jobs, cache=cache, force=force, progress=progress,
        retry=retry, journal=journal, resume=resume, report=report,
    )
    cell_wall = time.perf_counter() - t0
    # the same policy may appear under different options across artifacts,
    # so suites are assembled per artifact from the content-addressed keys
    by_key = {r.key: r.metrics for r in results}

    workload = plan.config.build_workload() if (plan.needs_workload or check) else None
    shape = workload is not None and len(workload) >= SHAPE_MIN_JOBS
    wl_digest = workload.content_digest() if plan.needs_workload else None

    def _render(art: Artifact) -> Tuple[ArtifactOutput, str]:
        suite = {
            policy: RecordRun(policy, by_key[key])
            for policy, key in plan.cell_keys[art.id].items()
        }
        inputs = ArtifactInputs(
            suite=suite_subset(suite, art.policies),
            workload=workload if art.needs_workload else None,
        )
        text = art.build_text(inputs, check=check, shape=shape)
        blob = (text + "\n").encode()
        path = out / art.output
        path.write_bytes(blob)
        return ArtifactOutput(artifact=art, path=path, sha256=_sha256(blob)), text

    outputs: List[ArtifactOutput] = []
    texts: Dict[str, str] = {}
    with ThreadPoolExecutor(max_workers=min(8, max(1, len(plan.artifacts)))) as pool:
        futures = [pool.submit(_render, art) for art in plan.artifacts]
        for fut in futures:
            rendered, text = fut.result()
            outputs.append(rendered)
            texts[rendered.artifact.id] = text

    doc = manifest_doc(plan, outputs, wl_digest)
    manifest_path = out / MANIFEST_NAME
    manifest_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    stats = campaign_stats(
        results, cell_wall, max(1, jobs),
        cache.stats.since(stats_base) if stats_base is not None else None,
        report=report,
    )
    stats_path = out / STATS_NAME
    stats_path.write_text(json.dumps(stats.as_dict(), indent=2,
                                     sort_keys=True) + "\n")
    return BuildResult(
        plan=plan,
        outputs=outputs,
        manifest_path=manifest_path,
        n_simulated=sum(1 for r in results if not r.cached),
        n_cached=sum(1 for r in results if r.cached),
        elapsed=time.perf_counter() - t0,
        texts=texts,
        stats=stats,
        stats_path=stats_path,
    )


def manifest_doc(
    plan: BuildPlan,
    outputs: Sequence[ArtifactOutput],
    workload_digest: Optional[str],
) -> Dict[str, object]:
    """The deterministic manifest document (no timings, no paths outside
    the output directory, sorted on serialization)."""
    artifacts: Dict[str, object] = {}
    for rendered in outputs:
        art = rendered.artifact
        inputs: Dict[str, object] = {
            "cells": {p: plan.cell_keys[art.id][p] for p in art.policies}
        }
        if art.needs_workload:
            inputs["workload"] = workload_digest
        artifacts[art.id] = {
            "kind": art.kind,
            "title": art.title,
            "output": art.output,
            "sha256": rendered.sha256,
            "inputs": inputs,
        }
    return {
        "schema": MANIFEST_SCHEMA,
        "code": code_version(),
        "config": {"scale": plan.config.scale, "seed": plan.config.seed},
        "artifacts": artifacts,
        # deterministic plan-shape stats only: anything run-dependent
        # (timings, cache hits) lives in the build-stats.json sidecar so
        # rebuilds stay byte-identical
        "stats": {
            "n_artifacts": len(plan.artifacts),
            "n_cells": len(plan.cells),
            "n_shared": plan.n_shared,
        },
    }


def load_manifest(out_dir: PathLike) -> Dict[str, object]:
    return json.loads((Path(out_dir) / MANIFEST_NAME).read_text())


def verify_outputs(out_dir: PathLike) -> List[str]:
    """Check the outputs on disk against their manifest digests.

    Returns a list of problems (missing files, digest mismatches, or a
    missing manifest); empty means the directory is exactly what the
    manifest says it is.
    """
    out = Path(out_dir)
    try:
        doc = load_manifest(out)
    except OSError:
        return [f"missing {MANIFEST_NAME} in {out}"]
    except ValueError:
        return [f"unreadable {MANIFEST_NAME} in {out}"]
    problems: List[str] = []
    for art_id, entry in sorted(doc.get("artifacts", {}).items()):
        path = out / str(entry["output"])
        if not path.is_file():
            problems.append(f"{art_id}: missing output {entry['output']}")
            continue
        digest = _sha256(path.read_bytes())
        if digest != entry["sha256"]:
            problems.append(
                f"{art_id}: {entry['output']} digest {digest[:12]} != "
                f"manifest {str(entry['sha256'])[:12]} (stale or edited)"
            )
    return problems


def diff_manifests(
    ours: Dict[str, object], theirs: Dict[str, object]
) -> List[str]:
    """Human-readable differences between two manifest documents."""
    diffs: List[str] = []
    for key in ("schema", "code", "config"):
        if ours.get(key) != theirs.get(key):
            diffs.append(f"{key}: {ours.get(key)!r} != {theirs.get(key)!r}")
    a = dict(ours.get("artifacts", {}))
    b = dict(theirs.get("artifacts", {}))
    for art_id in sorted(set(a) | set(b)):
        if art_id not in b:
            diffs.append(f"{art_id}: only in first manifest")
        elif art_id not in a:
            diffs.append(f"{art_id}: only in second manifest")
        elif a[art_id] != b[art_id]:
            ea, eb = a[art_id], b[art_id]
            keys = set(ea) | set(eb)
            changed = sorted(k for k in keys if ea.get(k) != eb.get(k))
            diffs.append(f"{art_id}: differs in {', '.join(changed)}")
    return diffs
