"""Content-addressed on-disk cache for campaign cells.

A cell's key is the SHA-256 of its canonical JSON identity — workload
identity (generator parameters + seed, or trace-file content hash),
policy key, scheduler overrides, engine options — salted with a code
version, so re-running a campaign after editing a spec only simulates
the cells that actually changed, and upgrading the package invalidates
stale metrics wholesale.

Entries are small JSON documents (the flattened metric record, not the
job lists), stored two-level fanned-out under the cache root and written
atomically (``os.replace``) so concurrent workers and concurrent
campaigns can share one cache directory safely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from .spec import CampaignCell

PathLike = Union[str, Path]

#: bump to invalidate every cached cell after a metrics-affecting change
#: (2: metric records gained the Figure 3 "weekly" series)
CACHE_SCHEMA = 2

#: environment override for the default cache root
CACHE_DIR_ENV = "REPRO_CAMPAIGN_CACHE"


def code_version() -> str:
    """Package version + cache schema: the cache key's code component."""
    from .. import __version__  # deferred: package init imports this module

    return f"{__version__}+schema{CACHE_SCHEMA}"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-campaign"


def cell_key(cell: CampaignCell) -> str:
    """Stable content hash of everything that determines a cell's result."""
    doc = {"cell": cell.identity(), "code": code_version()}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CampaignCache:
    """Get/put of metric records keyed by :func:`cell_key`.

    Misses are silent (corrupt or truncated entries read as misses and are
    overwritten on the next put); hits return the stored metrics dict.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("key") != key or doc.get("schema") != CACHE_SCHEMA:
            return None
        metrics = doc.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def put(self, key: str, cell: CampaignCell, metrics: Dict[str, object]) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "cell": cell.identity(),
            "metrics": metrics,
        }
        blob = json.dumps(doc, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in list(self.root.glob("??/*.json")):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
