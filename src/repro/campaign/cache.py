"""Content-addressed on-disk cache for campaign cells.

A cell's key is the SHA-256 of its canonical JSON identity — workload
identity (generator parameters + seed, or trace-file content hash),
policy key, scheduler overrides, engine options — salted with a code
version, so re-running a campaign after editing a spec only simulates
the cells that actually changed, and upgrading the package invalidates
stale metrics wholesale.

Entries are small JSON documents (the flattened metric record, not the
job lists), stored two-level fanned-out under the cache root and written
atomically (``os.replace``) so concurrent workers and concurrent
campaigns can share one cache directory safely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs.log import get_logger
from .spec import CampaignCell

PathLike = Union[str, Path]

log = get_logger("repro.campaign.cache")

#: bump to invalidate every cached cell after a metrics-affecting change
#: (2: metric records gained the Figure 3 "weekly" series)
CACHE_SCHEMA = 2

#: environment override for the default cache root
CACHE_DIR_ENV = "REPRO_CAMPAIGN_CACHE"


def code_version() -> str:
    """Package version + cache schema: the cache key's code component."""
    from .. import __version__  # deferred: package init imports this module

    return f"{__version__}+schema{CACHE_SCHEMA}"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-campaign"


def cell_key(cell: CampaignCell) -> str:
    """Stable content hash of everything that determines a cell's result."""
    doc = {"cell": cell.identity(), "code": code_version()}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Lookup accounting for one :class:`CampaignCache` instance.

    ``corrupt`` counts entries that *existed* but could not be used —
    truncated/non-JSON files, key mismatches, malformed metric blocks —
    as opposed to plain misses (absent, or invalidated by a schema bump).
    Corrupt entries still read as misses to callers; the stats exist so a
    sweep can warn about them instead of silently re-simulating forever.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    corrupt_keys: List[str] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.corrupt

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.corrupt,
                          list(self.corrupt_keys))

    def since(self, base: "CacheStats") -> "CacheStats":
        """Delta relative to an earlier :meth:`snapshot` (caches are
        long-lived; per-run stats need a window, not lifetime totals)."""
        return CacheStats(
            self.hits - base.hits,
            self.misses - base.misses,
            self.corrupt - base.corrupt,
            self.corrupt_keys[len(base.corrupt_keys):],
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "corrupt_keys": list(self.corrupt_keys),
        }


class CampaignCache:
    """Get/put of metric records keyed by :func:`cell_key`.

    Misses are silent (corrupt or truncated entries read as misses and are
    overwritten on the next put); hits return the stored metrics dict.
    ``stats`` tallies hit/miss/corrupt outcomes per instance.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _corrupt(self, key: str, why: str) -> None:
        self.stats.corrupt += 1
        self.stats.corrupt_keys.append(key)
        log.debug("corrupt cache entry %s (%s): treating as miss", key, why)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1  # absent: the ordinary cold-cache case
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            self._corrupt(key, "not JSON")
            return None
        if not isinstance(doc, dict) or doc.get("key") != key:
            self._corrupt(key, "key mismatch")
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            self.stats.misses += 1  # deliberate invalidation, not damage
            return None
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            self._corrupt(key, "malformed metrics block")
            return None
        self.stats.hits += 1
        return metrics

    def put(self, key: str, cell: CampaignCell, metrics: Dict[str, object]) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "cell": cell.identity(),
            "metrics": metrics,
        }
        blob = json.dumps(doc, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in list(self.root.glob("??/*.json")):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n
