"""Content-addressed on-disk cache for campaign cells.

A cell's key is the SHA-256 of its canonical JSON identity — workload
identity (generator parameters + seed, or trace-file content hash),
policy key, scheduler overrides, engine options — salted with a code
version, so re-running a campaign after editing a spec only simulates
the cells that actually changed, and upgrading the package invalidates
stale metrics wholesale.

Entries are small JSON documents (the flattened metric record, not the
job lists), stored two-level fanned-out under the cache root and written
atomically (``os.replace``) so concurrent workers and concurrent
campaigns can share one cache directory safely.  Each entry carries an
integrity digest of its metrics block; :meth:`CampaignCache.get`
verifies it on every hit, and :meth:`CampaignCache.verify` /
:meth:`CampaignCache.prune` (CLI: ``repro cache verify|prune``) audit
the whole store.  Writers that died between ``mkstemp`` and
``os.replace`` leave ``*.tmp`` orphans; the cache sweeps stale ones on
open.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..obs.log import get_logger
from . import faults
from .spec import CampaignCell

PathLike = Union[str, Path]

log = get_logger("repro.campaign.cache")

#: bump to invalidate every cached cell after a metrics-affecting change
#: (2: metric records gained the Figure 3 "weekly" series;
#:  3: entries carry an integrity digest of the metrics block)
CACHE_SCHEMA = 3

#: environment override for the default cache root
CACHE_DIR_ENV = "REPRO_CAMPAIGN_CACHE"

#: tmp orphans younger than this are presumed owned by a live writer
DEFAULT_TMP_GRACE = 3600.0


def code_version() -> str:
    """Package version + cache schema: the cache key's code component."""
    from .. import __version__  # deferred: package init imports this module

    return f"{__version__}+schema{CACHE_SCHEMA}"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-campaign"


def cell_key(cell: CampaignCell) -> str:
    """Stable content hash of everything that determines a cell's result."""
    doc = {"cell": cell.identity(), "code": code_version()}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def metrics_digest(metrics: Dict[str, object]) -> str:
    """Integrity digest of a metrics block (canonical-JSON SHA-256)."""
    blob = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Lookup accounting for one :class:`CampaignCache` instance.

    ``corrupt`` counts entries that *existed* but could not be used —
    truncated/non-JSON files, key mismatches, malformed metric blocks,
    integrity-digest mismatches — as opposed to plain misses (absent, or
    invalidated by a schema bump).  Corrupt entries still read as misses
    to callers; the stats exist so a sweep can warn about them instead of
    silently re-simulating forever.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    corrupt_keys: List[str] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.corrupt

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.corrupt,
                          list(self.corrupt_keys))

    def since(self, base: "CacheStats") -> "CacheStats":
        """Delta relative to an earlier :meth:`snapshot` (caches are
        long-lived; per-run stats need a window, not lifetime totals)."""
        return CacheStats(
            self.hits - base.hits,
            self.misses - base.misses,
            self.corrupt - base.corrupt,
            self.corrupt_keys[len(base.corrupt_keys):],
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "corrupt_keys": list(self.corrupt_keys),
        }


@dataclass
class CacheAudit:
    """Result of a full-store :meth:`CampaignCache.verify` walk."""

    n_entries: int = 0
    n_ok: int = 0
    #: (key, why) for every unusable entry
    corrupt: List[Tuple[str, str]] = field(default_factory=list)
    #: entries from another cache schema (valid, just not ours)
    n_other_schema: int = 0
    #: stale ``*.tmp`` orphans found (not removed by verify)
    n_tmp: int = 0

    @property
    def n_corrupt(self) -> int:
        return len(self.corrupt)

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_entries": self.n_entries,
            "n_ok": self.n_ok,
            "n_corrupt": self.n_corrupt,
            "n_other_schema": self.n_other_schema,
            "n_tmp": self.n_tmp,
            "corrupt": [{"key": k, "why": w} for k, w in self.corrupt],
        }


def _check_entry(key: str, text: str) -> Optional[str]:
    """Why a stored entry is unusable, or ``None`` if it is sound.

    Schema-mismatched entries return ``"other-schema"`` — structurally
    fine, just written by a different code version.
    """
    try:
        doc = json.loads(text)
    except ValueError:
        return "not JSON"
    if not isinstance(doc, dict) or doc.get("key") != key:
        return "key mismatch"
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return "malformed metrics block"
    if doc.get("schema") != CACHE_SCHEMA:
        return "other-schema"
    want = doc.get("integrity")
    if want is not None and want != metrics_digest(metrics):
        return "integrity digest mismatch"
    return None


class CampaignCache:
    """Get/put of metric records keyed by :func:`cell_key`.

    Misses are silent (corrupt or truncated entries read as misses and are
    overwritten on the next put); hits return the stored metrics dict.
    ``stats`` tallies hit/miss/corrupt outcomes per instance.

    Opening the cache sweeps ``*.tmp`` orphans older than
    ``tmp_grace`` seconds — debris of writers that died between
    ``mkstemp`` and the atomic rename.  The grace window keeps a
    concurrent campaign's in-flight writes (lifetime: milliseconds) safe.
    """

    def __init__(self, root: Optional[PathLike] = None,
                 tmp_grace: float = DEFAULT_TMP_GRACE) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        swept = self.sweep_tmp(grace=tmp_grace)
        if swept:
            log.info("swept %d stale cache tmp file(s) under %s",
                     swept, self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _corrupt(self, key: str, why: str) -> None:
        self.stats.corrupt += 1
        self.stats.corrupt_keys.append(key)
        log.debug("corrupt cache entry %s (%s): treating as miss", key, why)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1  # absent: the ordinary cold-cache case
            return None
        why = _check_entry(key, text)
        if why == "other-schema":
            self.stats.misses += 1  # deliberate invalidation, not damage
            return None
        if why is not None:
            self._corrupt(key, why)
            return None
        self.stats.hits += 1
        return json.loads(text)["metrics"]

    def put(self, key: str, cell: CampaignCell,
            metrics: Dict[str, object]) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "cell": cell.identity(),
            "integrity": metrics_digest(metrics),
            "metrics": metrics,
        }
        blob = json.dumps(doc, sort_keys=True) + "\n"

        fault = None
        plan = faults.active_plan()
        if plan is not None:
            fault = plan.check("cache.put", key)
        if fault is not None and fault.kind == "corrupt":
            # cooperative damage: land a truncated record where the entry
            # should be, as an interrupted non-atomic writer would
            blob = faults.corrupt_blob(blob)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        if fault is not None and fault.kind == "crash":
            # simulate the writer dying mid-write: half a record in the
            # tmp file, no rename, no cleanup — exactly the orphan the
            # open-time sweep exists for
            with os.fdopen(fd, "w") as fh:
                fh.write(faults.corrupt_blob(blob))
            raise faults.InjectedCrashError(
                f"injected crash in cache.put [{key[:12]}]"
            )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if fault is not None and fault.kind not in ("corrupt", "crash"):
            fault.fire()
        return path

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in list(self.root.glob("??/*.json")):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    # -- maintenance -----------------------------------------------------------

    def sweep_tmp(self, grace: float = 0.0) -> int:
        """Remove ``*.tmp`` orphans older than ``grace`` seconds.

        Returns how many were removed.  Runs automatically on open; call
        with ``grace=0`` (``repro cache prune``) to reap everything.
        """
        if not self.root.is_dir():
            return 0
        now = time.time()
        n = 0
        for tmp in list(self.root.glob("??/*.tmp")):
            try:
                if grace > 0 and now - tmp.stat().st_mtime < grace:
                    continue
                tmp.unlink()
                n += 1
            except OSError:
                continue  # raced with its owner or another sweeper
        return n

    def _entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def verify(self) -> CacheAudit:
        """Checksum-verify every stored entry (read-only)."""
        audit = CacheAudit()
        for path in self._entries():
            audit.n_entries += 1
            key = path.stem
            try:
                text = path.read_text()
            except OSError as exc:
                audit.corrupt.append((key, f"unreadable: {exc}"))
                continue
            why = _check_entry(key, text)
            if why is None:
                audit.n_ok += 1
            elif why == "other-schema":
                audit.n_other_schema += 1
            else:
                audit.corrupt.append((key, why))
        if self.root.is_dir():
            audit.n_tmp = sum(1 for _ in self.root.glob("??/*.tmp"))
        return audit

    def prune(self, quarantine: bool = False) -> CacheAudit:
        """Remove (or quarantine) corrupt entries and reap tmp orphans.

        With ``quarantine`` corrupt entries move to
        ``<root>/quarantine/`` for post-mortem instead of being deleted.
        Entries from other cache schemas are left alone — another code
        version owns them.  Returns the pre-removal audit.
        """
        audit = self.verify()
        qdir = self.root / "quarantine"
        for key, why in audit.corrupt:
            path = self.path_for(key)
            try:
                if quarantine:
                    qdir.mkdir(parents=True, exist_ok=True)
                    os.replace(path, qdir / path.name)
                else:
                    path.unlink()
                log.info("pruned corrupt cache entry %s (%s)", key, why)
            except OSError:
                continue
        audit.n_tmp = self.sweep_tmp(grace=0.0)
        return audit
