"""Retry policy and failure classification for the campaign runtime.

A campaign cell is a pure function of its spec, so a failure is either
*transient* (the environment hiccuped: a worker was OOM-killed, a pipe
closed, an injected chaos fault fired) or *deterministic* (the simulation
itself raises, and will raise identically on every attempt).  The
executor cannot know which a priori; this module encodes the operational
rule it uses instead:

* transient-typed errors (:class:`TransientError`, ``OSError`` and
  friends) are retried with capped exponential backoff up to
  ``max_attempts``;
* any cell that fails twice with an *identical* signature (same
  exception type and message) is **quarantined** — retrying a pure
  deterministic failure forever only burns the pool;
* a cell whose execution repeatedly coincides with worker death is
  quarantined after ``max_worker_kills`` charged kills (worker-loss
  blame is conservative — every in-flight cell at a pool break is
  charged — so the threshold must exceed the number of breaks an
  innocent bystander can witness).

Backoff is deterministic (no jitter): campaign results must be
byte-identical across runs, and the backoff schedule is observational
only, but determinism keeps chaos tests exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "CellFailure",
    "CellTimeout",
    "RetryPolicy",
    "RunReport",
    "TransientError",
    "WorkerLost",
    "failure_signature",
    "is_transient",
]


class TransientError(Exception):
    """Marker base: failures of this type are presumed retry-worthy."""


class WorkerLost(TransientError):
    """A worker process died while (possibly) executing this cell."""


class CellTimeout(Exception):
    """The per-cell wall-clock watchdog fired.

    Deliberately *not* transient: a pathological cell usually hangs the
    same way every time, so the identical-signature rule quarantines it
    on the second timeout instead of burning ``timeout`` seconds per
    attempt forever.
    """


#: exception types treated as transient even without the marker base
_TRANSIENT_TYPES = (TransientError, OSError, ConnectionError)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` looks environmental rather than deterministic."""
    return isinstance(exc, _TRANSIENT_TYPES)


def failure_signature(exc: BaseException) -> str:
    """The identity used by the fails-identically-twice quarantine rule."""
    return f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the fault-tolerant executor.

    ``max_attempts`` counts *total* tries per cell (1 = never retry).
    ``timeout`` is the per-cell wall-clock budget enforced by the pool
    watchdog; ``None`` disables it, and the inline (``--jobs 1``) path
    cannot preempt a running simulation so it ignores timeouts entirely.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_worker_kills: int = 2
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")

    def backoff(self, attempt: int) -> float:
        """Deterministic capped exponential delay before retry ``attempt``
        (1-based: the delay taken after the ``attempt``-th failure)."""
        if attempt < 1 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


@dataclass
class CellFailure:
    """One cell the run could not complete, with why and how hard it tried.

    ``kind`` is ``"error"`` (the cell raised), ``"timeout"`` (the
    watchdog fired), or ``"worker-loss"`` (the cell was quarantined for
    repeatedly killing its worker).  ``exc`` keeps the last exception
    object for ``raise ... from`` chaining; ``error`` is its rendered
    signature (JSON-safe, journaled).
    """

    cell: object
    key: str
    kind: str
    error: str
    attempts: int
    quarantined: bool
    exc: Optional[BaseException] = None


@dataclass
class RunReport:
    """Recovery accounting for one ``run_cells`` execution.

    Filled in place (pass one in to keep it across an aborted run), so a
    driver that dies mid-campaign still leaves its counts observable.
    """

    failures: List[CellFailure] = field(default_factory=list)
    retries: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    quarantined: int = 0
    journal_cells: int = 0

    def merge(self, other: "RunReport") -> None:
        self.failures.extend(other.failures)
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds
        self.timeouts += other.timeouts
        self.quarantined += other.quarantined
        self.journal_cells += other.journal_cells

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "journal_cells": self.journal_cells,
            "n_failed": len(self.failures),
        }


class CellState:
    """Per-cell retry bookkeeping inside one ``run_cells`` execution."""

    __slots__ = ("attempts", "signatures", "worker_kills")

    def __init__(self) -> None:
        self.attempts = 0          # completed (failed) tries so far
        self.signatures: List[str] = []
        self.worker_kills = 0      # charged pool-break blames

    def classify(self, exc: BaseException, policy: RetryPolicy) -> str:
        """Record a failed attempt and decide what happens next.

        Returns ``"retry"``, ``"quarantine"`` (failed identically twice —
        deterministic), or ``"fail"`` (attempts exhausted).  Worker-loss
        failures do not come through here: they neither consume attempts
        nor leave signatures (see the executor's blame model).
        """
        self.attempts += 1
        sig = failure_signature(exc)
        repeated = sig in self.signatures
        self.signatures.append(sig)
        if repeated and not is_transient(exc):
            return "quarantine"
        if self.attempts >= policy.max_attempts:
            return "fail"
        return "retry"
