"""Declarative campaign specifications.

A :class:`CampaignSpec` names a sweep grid — policies x workload sources
(each with a list of generator seeds) x scheduler-parameter override
variants — plus the engine options shared by every run.  ``expand()``
turns it into independent :class:`CampaignCell` objects, each a frozen,
picklable value that *fully determines* one simulation: the cache key is
a hash of the cell's :meth:`~CampaignCell.identity` and nothing else, so
a cell computed in a worker process yesterday satisfies the same cell
requested today.

Specs load from JSON (``CampaignSpec.from_json``) or plain dicts; see the
repository README for the schema.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments.runner import RunOptions
from ..scenarios import get_scenario
from ..sched.registry import get_policy, validate_overrides
from ..workload.generator import (
    GeneratorConfig,
    generate_cplant_workload,
    random_workload,
    replication_seeds,
)
from ..workload.model import Workload
from ..workload.swf import read_swf

#: workload kinds a spec may name
WORKLOAD_KINDS = ("cplant", "random", "swf", "scenario")


def _canonical_pairs(d: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((d or {}).items()))


@lru_cache(maxsize=None)
def _swf_digest_at(path: str, mtime_ns: int, size: int) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _swf_digest(path: str) -> str:
    """Content hash of an SWF trace (workload identity for cache keys).

    Memoized per (path, mtime, size) so repeated identity computations in
    one campaign don't re-read the file, while an edit to the trace during
    the process lifetime still invalidates the digest.
    """
    st = Path(path).stat()
    return _swf_digest_at(path, st.st_mtime_ns, st.st_size)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload *family*: a generator configuration or a trace file.

    Generator kinds (``cplant``, ``random``, ``scenario``) become one grid
    cell per seed; ``seeds`` wins when given, otherwise ``seed`` is spawned
    into the campaign's ``replications`` independent seeds.  ``swf`` reads
    a fixed trace, so it contributes exactly one seedless instance whose
    identity is the file's content hash (edit the trace and the cache
    misses).  ``scenario`` names a registered scenario recipe; its params
    are scenario parameters and its identity carries the *resolved*
    parameter set, so an explicit default and an omitted one cache as the
    same cell.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    path: Optional[str] = None
    scenario: Optional[str] = None
    seed: int = 0
    seeds: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known: {WORKLOAD_KINDS}"
            )
        if self.kind == "swf" and not self.path:
            raise ValueError("swf workload needs a 'path'")
        if self.kind == "scenario" and not self.scenario:
            raise ValueError("scenario workload needs a 'scenario' name")
        params = dict(self.params)
        bad = sorted(
            k for k, v in params.items()
            if not isinstance(v, (str, int, float, bool, type(None)))
        )
        if bad:
            # non-scalars would also make the spec unhashable (it keys the
            # worker-side workload memo); workload params sweep via separate
            # workload entries, not in-param lists
            raise ValueError(
                f"workload params must be scalars, got non-scalar {bad} "
                f"(to sweep a workload parameter, list one workload per value)"
            )
        object.__setattr__(self, "params", _canonical_pairs(params))
        if self.seeds is not None:
            # order-preserving dedup: duplicate seeds would simulate the
            # same cell twice and inflate the replication count n
            object.__setattr__(
                self, "seeds", tuple(dict.fromkeys(int(s) for s in self.seeds))
            )

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "WorkloadSpec":
        d = dict(d)
        scenario = d.pop("scenario", None)
        kind = str(d.pop("kind", "scenario" if scenario is not None else "cplant"))
        path = d.pop("path", None)
        seed = int(d.pop("seed", 0))
        seeds = d.pop("seeds", None)
        # remaining keys are generator/scenario parameters (scale, alpha, ...)
        return cls(
            kind=kind,
            params=_canonical_pairs(d),
            path=str(path) if path is not None else None,
            scenario=str(scenario) if scenario is not None else None,
            seed=seed,
            seeds=tuple(int(s) for s in seeds) if seeds is not None else None,
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, **dict(self.params)}
        if self.path is not None:
            out["path"] = self.path
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.seeds is not None:
            out["seeds"] = list(self.seeds)
        elif self.kind != "swf":
            out["seed"] = self.seed
        return out

    def validate(self) -> None:
        """Fail fast on parameters the workload source cannot accept, so a
        typo'd spec dies with the workload named instead of a raw
        ``TypeError`` surfacing from inside a worker process."""
        params = dict(self.params)
        if self.kind == "swf":
            if not Path(str(self.path)).is_file():
                raise ValueError(f"swf workload trace not found: {self.path}")
            if params:
                raise ValueError(
                    f"swf workload takes no generator params, got {sorted(params)}"
                )
        elif self.kind == "scenario":
            try:
                sc = get_scenario(str(self.scenario))
            except KeyError as exc:
                raise ValueError(str(exc.args[0])) from None
            sc.resolve_params(params)  # unknown parameter names fail here
        elif self.kind == "cplant":
            try:
                GeneratorConfig(**params)
            except TypeError as exc:
                raise ValueError(
                    f"cplant workload rejects params {params!r}: {exc}"
                ) from None
        else:
            try:
                inspect.signature(random_workload).bind(seed=0, **params)
            except TypeError as exc:
                raise ValueError(
                    f"random workload rejects params {params!r}: {exc}"
                ) from None

    def effective_seeds(self, replications: int) -> Tuple[Optional[int], ...]:
        if self.kind == "swf":
            return (None,)
        if self.seeds is not None:
            return self.seeds
        if replications <= 1:
            return (self.seed,)
        return tuple(replication_seeds(self.seed, replications))

    def family_identity(self) -> Dict[str, object]:
        """Seed-free canonical identity (the aggregation group key)."""
        if self.kind == "swf":
            assert self.path is not None
            return {
                "kind": "swf",
                "path": str(self.path),
                "sha256": _swf_digest(str(self.path)),
            }
        if self.kind == "scenario":
            # resolved (defaults filled in): a spec naming the default value
            # explicitly is the same family as one omitting it
            resolved = get_scenario(str(self.scenario)).resolve_params(dict(self.params))
            return {
                "kind": "scenario",
                "scenario": str(self.scenario),
                "params": resolved,
            }
        return {"kind": self.kind, "params": dict(self.params)}

    def build(self, seed: Optional[int]) -> Workload:
        params = dict(self.params)
        if self.kind == "swf":
            assert self.path is not None
            return read_swf(self.path)
        if self.kind == "scenario":
            return get_scenario(str(self.scenario)).build(seed=int(seed or 0), **params)
        if self.kind == "cplant":
            return generate_cplant_workload(GeneratorConfig(**params), seed=int(seed or 0))
        return random_workload(seed=int(seed or 0), **params)

    def label(self, seed: Optional[int]) -> str:
        if self.kind == "swf":
            return f"swf:{Path(str(self.path)).name}"
        head = self.scenario if self.kind == "scenario" else self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{head}({inner},seed={seed})" if inner else f"{head}(seed={seed})"


@dataclass(frozen=True)
class CampaignCell:
    """One independent simulation of the grid: workload instance + policy +
    engine options.  Frozen and built from primitives so it pickles across
    process boundaries and hashes into a stable cache key."""

    workload: WorkloadSpec
    seed: Optional[int]
    policy: str
    options: RunOptions

    def identity(self) -> Dict[str, object]:
        """Everything that determines this cell's result, JSON-safe."""
        return {
            "workload": self.workload.family_identity(),
            "seed": self.seed,
            "policy": self.policy,
            "options": self.options.identity(),
        }

    def group_identity(self) -> Dict[str, object]:
        """Identity minus the seed: cells sharing it are replications."""
        return {
            "workload": self.workload.family_identity(),
            "policy": self.policy,
            "overrides": dict(self.options.scheduler_overrides),
        }

    def label(self) -> str:
        ov = ",".join(f"{k}={v}" for k, v in self.options.scheduler_overrides)
        tail = f" [{ov}]" if ov else ""
        return f"{self.policy} on {self.workload.label(self.seed)}{tail}"


def _expand_sweep(sweep: Mapping[str, Sequence[object]]) -> List[Dict[str, object]]:
    """Cartesian product of a {param: [values]} shorthand, in stable order."""
    if not sweep:
        return [{}]
    keys = sorted(sweep)
    combos = itertools.product(*(sweep[k] for k in keys))
    return [dict(zip(keys, c)) for c in combos]


@dataclass
class CampaignSpec:
    """A declarative sweep grid.

    ``overrides`` lists explicit scheduler-parameter variants;  ``sweep``
    is the {param: [values]} cartesian shorthand — the two compose (each
    explicit variant is crossed with each sweep combination).  Cells =
    workloads x seeds x variants x policies.
    """

    name: str
    policies: Tuple[str, ...]
    workloads: Tuple[WorkloadSpec, ...]
    overrides: Tuple[Tuple[Tuple[str, object], ...], ...] = ((),)
    sweep: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    replications: int = 1
    estimate_mode: str = "perfect"
    epsilon: float = 1.0
    kill_policy: str = "IF_NEEDED"
    validate_engine: bool = False

    def __post_init__(self) -> None:
        if not self.policies:
            raise ValueError("campaign needs at least one policy")
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        # the shared option parser rejects bad values with structured
        # errors naming the key (same messages on every surface)
        self._options(variant={})
        self.policies = tuple(self.policies)
        self.workloads = tuple(self.workloads)
        self.overrides = tuple(
            _canonical_pairs(dict(v)) for v in (self.overrides or ((),))
        )
        self.sweep = tuple(
            (str(k), tuple(vs)) for k, vs in sorted(dict(self.sweep).items())
        )

    # -- construction ----------------------------------------------------------

    #: keys :meth:`from_dict` understands — anything else is a typo
    _SPEC_KEYS = frozenset({
        "name", "policies", "workloads", "scenarios", "overrides", "sweep",
        "replications", "estimate_mode", "epsilon", "kill_policy",
        "validate_engine",
    })

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "CampaignSpec":
        d = dict(d)
        unknown = sorted(set(d) - cls._SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown campaign spec keys {unknown}; "
                f"known: {sorted(cls._SPEC_KEYS)}"
            )
        workloads = tuple(
            WorkloadSpec.from_dict(w) for w in d.get("workloads", ())
        )
        # "scenarios" is workload shorthand: a name string, or a dict with
        # "scenario" plus parameters/seeds, each one workload family
        workloads += tuple(
            WorkloadSpec.from_dict(
                {"scenario": s} if isinstance(s, str) else {"kind": "scenario", **s}
            )
            for s in d.get("scenarios", ())
        )
        overrides = tuple(
            tuple(dict(v).items()) for v in d.get("overrides", [{}])
        )
        sweep = tuple(
            (str(k), tuple(vs)) for k, vs in dict(d.get("sweep", {})).items()
        )
        return cls(
            name=str(d.get("name", "campaign")),
            policies=tuple(d.get("policies", ())),
            workloads=workloads,
            overrides=overrides,
            sweep=sweep,
            replications=int(d.get("replications", 1)),
            estimate_mode=str(d.get("estimate_mode", "perfect")),
            epsilon=float(d.get("epsilon", 1.0)),
            kill_policy=str(d.get("kill_policy", "IF_NEEDED")),
            validate_engine=bool(d.get("validate_engine", False)),
        )

    @classmethod
    def from_json(cls, path) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "policies": list(self.policies),
            "workloads": [w.to_dict() for w in self.workloads],
            "replications": self.replications,
            "estimate_mode": self.estimate_mode,
            "epsilon": self.epsilon,
            "kill_policy": self.kill_policy,
        }
        if self.overrides != ((),):
            out["overrides"] = [dict(v) for v in self.overrides]
        if self.sweep:
            out["sweep"] = {k: list(vs) for k, vs in self.sweep}
        if self.validate_engine:
            out["validate_engine"] = True
        return out

    # -- grid expansion --------------------------------------------------------

    def variants(self) -> List[Dict[str, object]]:
        """Scheduler-override variants: explicit list x sweep cartesian."""
        sweep_combos = _expand_sweep(dict(self.sweep))
        out: List[Dict[str, object]] = []
        for base in self.overrides:
            for combo in sweep_combos:
                out.append({**dict(base), **combo})
        # drop duplicates while preserving order
        seen = set()
        uniq = []
        for v in out:
            key = tuple(sorted(v.items()))
            if key not in seen:
                seen.add(key)
                uniq.append(v)
        return uniq

    def validate(self) -> None:
        """Check workload params, policy keys, and override variants."""
        self._validate(self.variants())

    def _validate(self, variants: Sequence[Mapping[str, object]]) -> None:
        for wspec in self.workloads:
            wspec.validate()
        for key in self.policies:
            get_policy(key)
            for variant in variants:
                if variant:
                    validate_overrides(key, variant)

    def _options(self, variant: Mapping[str, object]) -> RunOptions:
        """The engine options of one grid cell, via the shared parser."""
        return RunOptions.from_mapping({
            "estimate_mode": self.estimate_mode,
            "epsilon": self.epsilon,
            "kill_policy": self.kill_policy,
            "scheduler_overrides": dict(variant),
            "validate": self.validate_engine,
        })

    def expand(self) -> List[CampaignCell]:
        """The full grid as independent cells, in deterministic order."""
        variants = self.variants()
        self._validate(variants)
        cells: List[CampaignCell] = []
        for wspec in self.workloads:
            for seed in wspec.effective_seeds(self.replications):
                for variant in variants:
                    options = self._options(variant)
                    for policy in self.policies:
                        cells.append(
                            CampaignCell(
                                workload=wspec,
                                seed=seed,
                                policy=policy,
                                options=options,
                            )
                        )
        return cells
