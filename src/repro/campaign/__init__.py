"""Campaign subsystem: declarative parallel parameter sweeps.

A campaign is a grid of (workload x policy x scheduler-parameter)
simulations declared as data (:class:`CampaignSpec`), executed across
worker processes (:func:`run_campaign`), memoized in a content-addressed
on-disk cache (:class:`CampaignCache`), and collapsed into per-group
mean/std/95%-CI statistics (:func:`aggregate_cells`).  The CLI front end
is ``repro sweep <spec.json>``.

The executor is a fault-tolerant runtime (see ``docs/ROBUSTNESS.md``):
failed cells retry under a :class:`RetryPolicy`, worker loss rebuilds
the pool, a watchdog bounds per-cell wall clock, completions journal to
a crash-safe :class:`RunJournal` for ``--resume``, and every failure
path is exercisable deterministically through :mod:`.faults`.
"""

from .aggregate import (
    aggregate_cells,
    aggregate_rows,
    flatten_metrics,
    t_critical_95,
)
from .cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    CacheAudit,
    CacheStats,
    CampaignCache,
    cell_key,
    code_version,
    default_cache_dir,
    metrics_digest,
)
from .executor import (
    CampaignResult,
    CampaignRunStats,
    CellResult,
    campaign_stats,
    default_journal_dir,
    run_campaign,
    run_cell,
    run_cells,
)
from .faults import FaultPlan, FaultRule
from .journal import JOURNAL_SCHEMA, RunJournal
from .retry import (
    CellFailure,
    CellTimeout,
    RetryPolicy,
    RunReport,
    TransientError,
    WorkerLost,
)
from .spec import CampaignCell, CampaignSpec, WorkloadSpec

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CacheAudit",
    "CacheStats",
    "CampaignCache",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunStats",
    "CampaignSpec",
    "CellFailure",
    "CellResult",
    "CellTimeout",
    "FaultPlan",
    "FaultRule",
    "JOURNAL_SCHEMA",
    "RetryPolicy",
    "RunJournal",
    "RunReport",
    "TransientError",
    "WorkerLost",
    "WorkloadSpec",
    "aggregate_cells",
    "aggregate_rows",
    "campaign_stats",
    "cell_key",
    "code_version",
    "default_cache_dir",
    "default_journal_dir",
    "flatten_metrics",
    "metrics_digest",
    "run_campaign",
    "run_cell",
    "run_cells",
    "t_critical_95",
]
