"""Campaign subsystem: declarative parallel parameter sweeps.

A campaign is a grid of (workload x policy x scheduler-parameter)
simulations declared as data (:class:`CampaignSpec`), executed across
worker processes (:func:`run_campaign`), memoized in a content-addressed
on-disk cache (:class:`CampaignCache`), and collapsed into per-group
mean/std/95%-CI statistics (:func:`aggregate_cells`).  The CLI front end
is ``repro sweep <spec.json>``.
"""

from .aggregate import (
    aggregate_cells,
    aggregate_rows,
    flatten_metrics,
    t_critical_95,
)
from .cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    CacheStats,
    CampaignCache,
    cell_key,
    code_version,
    default_cache_dir,
)
from .executor import (
    CampaignResult,
    CampaignRunStats,
    CellResult,
    campaign_stats,
    run_campaign,
    run_cell,
    run_cells,
)
from .spec import CampaignCell, CampaignSpec, WorkloadSpec

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CacheStats",
    "CampaignCache",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunStats",
    "CampaignSpec",
    "CellResult",
    "WorkloadSpec",
    "aggregate_cells",
    "aggregate_rows",
    "campaign_stats",
    "cell_key",
    "code_version",
    "default_cache_dir",
    "flatten_metrics",
    "run_campaign",
    "run_cell",
    "run_cells",
    "t_critical_95",
]
