"""Parallel campaign execution.

Grid cells are embarrassingly parallel (each is one full simulation), so
the executor fans missing cells out over a :class:`ProcessPoolExecutor`
and streams completions back in arbitrary order; determinism lives in the
cells themselves (pure worker + seeded generators), not in scheduling, so
``--jobs 4`` and ``--jobs 1`` produce bit-identical metrics.

The worker, :func:`run_cell`, is a pure top-level function: it builds the
cell's workload (memoized per worker process — one trace typically feeds
many policy cells) and delegates to the same
:func:`repro.experiments.runner.run_policy` the serial path uses, then
flattens the result into the JSON-safe metric record the cache stores.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.export import policy_run_record
from ..experiments.runner import run_policy_with_options
from ..obs.log import get_logger
from ..obs.stats import timing_summary, utilization
from ..workload.model import Workload
from .aggregate import aggregate_cells
from .cache import CacheStats, CampaignCache, cell_key
from .spec import CampaignCell, CampaignSpec, _swf_digest

log = get_logger("repro.campaign")

#: progress callback: (done, total, cell, source, elapsed) with source in
#: {"cache", "run"}; ``elapsed`` is the cell's in-worker execution time in
#: seconds (0.0 for cache hits, which complete instantly)
ProgressFn = Callable[[int, int, CampaignCell, str, float], None]

# per-process workload memo: many cells share one (workload, seed) instance.
# LRU eviction (not clear-all): a policy sweep interleaving a handful of
# workloads must not flush the whole set when one extra workload appears.
_WL_CACHE: "OrderedDict[Tuple, Workload]" = OrderedDict()
_WL_CACHE_MAX = 8


def _workload_key(cell: CampaignCell) -> Tuple:
    """Identity of the generated workload a cell simulates (cells differing
    only in policy/options share it — and share the built object)."""
    key: Tuple = (cell.workload, cell.seed)
    if cell.workload.kind == "swf":
        # the spec compares equal across a trace edit; the content digest
        # doesn't — without it an in-process edit would serve the stale
        # workload and poison the cache under the new content hash
        key += (_swf_digest(str(cell.workload.path)),)
    return key


def _cell_workload(cell: CampaignCell) -> Workload:
    key = _workload_key(cell)
    wl = _WL_CACHE.get(key)
    if wl is None:
        wl = cell.workload.build(cell.seed)
        _WL_CACHE[key] = wl
        if len(_WL_CACHE) > _WL_CACHE_MAX:
            _WL_CACHE.popitem(last=False)
    else:
        _WL_CACHE.move_to_end(key)
    return wl


def run_cell(cell: CampaignCell) -> Dict[str, object]:
    """Simulate one grid cell and return its JSON-safe metric record.

    Pure top-level function — picklable for process pools, and the single
    implementation behind both ``--jobs 1`` and ``--jobs N``.
    """
    wl = _cell_workload(cell)
    run = run_policy_with_options(wl, cell.policy, cell.options)
    return policy_run_record(run)


def _run_cell_timed(cell: CampaignCell) -> Tuple[Dict[str, object], float]:
    """Worker entry: metrics plus execution time measured *in* the worker
    (a submit-to-completion clock would fold in pool queue wait)."""
    t0 = time.perf_counter()
    metrics = run_cell(cell)
    return metrics, time.perf_counter() - t0


@dataclass
class CellResult:
    """One cell's metrics plus where they came from."""

    cell: CampaignCell
    key: str
    metrics: Dict[str, object]
    cached: bool
    elapsed: float = 0.0


@dataclass
class CampaignRunStats:
    """Execution accounting for one campaign run: where the cells came
    from, how long simulation took (per-cell percentiles over in-worker
    time), and how busy the worker pool was.  Rendered by ``repro sweep
    --stats``; the numbers are observational and never feed back into
    metrics or cache keys."""

    n_cells: int
    n_cached: int
    n_simulated: int
    wall: float
    workers: int
    #: p50/p95/max/total over per-cell in-worker simulation seconds
    cell_seconds: Dict[str, float]
    #: fraction of worker capacity spent simulating (None when all cached)
    pool_utilization: Optional[float]
    cache: Optional[CacheStats] = None

    @property
    def rate(self) -> float:
        """Cells per wall-clock second."""
        return self.n_cells / self.wall if self.wall > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_cells": self.n_cells,
            "n_cached": self.n_cached,
            "n_simulated": self.n_simulated,
            "wall": round(self.wall, 4),
            "workers": self.workers,
            "cell_seconds": dict(self.cell_seconds),
            "pool_utilization": (
                round(self.pool_utilization, 4)
                if self.pool_utilization is not None else None
            ),
            "cache": self.cache.as_dict() if self.cache is not None else None,
        }

    def render(self) -> str:
        """Human-readable stats block (one fact per line, greppable)."""
        cs = self.cell_seconds
        lines = [
            f"cells   : {self.n_cells} in {self.wall:.2f}s "
            f"({self.rate:.1f} cells/s) — "
            f"{self.n_simulated} simulated, {self.n_cached} cached",
            f"cell time : p50 {cs['p50']:.3f}s, p95 {cs['p95']:.3f}s, "
            f"max {cs['max']:.3f}s (sim total {cs['total']:.2f}s)",
        ]
        if self.pool_utilization is not None:
            lines.append(
                f"workers : {self.workers}, "
                f"utilization {100 * self.pool_utilization:.0f}%"
            )
        if self.cache is not None:
            s = self.cache
            lines.append(
                f"cache   : {s.hits} hits, {s.misses} misses, "
                f"{s.corrupt} corrupt"
            )
        return "\n".join(lines)


def campaign_stats(
    results: Sequence[CellResult],
    wall: float,
    workers: int,
    cache_stats: Optional[CacheStats] = None,
) -> CampaignRunStats:
    """Compute the run-stats block from finished cell results."""
    sim_times = [r.elapsed for r in results if not r.cached]
    return CampaignRunStats(
        n_cells=len(results),
        n_cached=sum(1 for r in results if r.cached),
        n_simulated=len(sim_times),
        wall=wall,
        workers=workers,
        cell_seconds=timing_summary(sim_times),
        pool_utilization=utilization(sum(sim_times), wall, workers),
        cache=cache_stats,
    )


@dataclass
class CampaignResult:
    """Every cell's outcome, in grid order, plus execution accounting."""

    spec: CampaignSpec
    results: List[CellResult] = field(default_factory=list)
    elapsed: float = 0.0
    stats: Optional[CampaignRunStats] = None

    @property
    def n_cells(self) -> int:
        return len(self.results)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_simulated(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    def aggregate(self) -> Dict[str, object]:
        """Per-group statistics across seeds (see :mod:`.aggregate`)."""
        return aggregate_cells(self.results, campaign=self.spec.name)


def run_cells(
    cells: Sequence[CampaignCell],
    jobs: int = 1,
    cache: Optional[CampaignCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
) -> List[CellResult]:
    """Execute an explicit cell list: cache lookups first, then the
    missing cells — inline for ``jobs <= 1``, else across a process pool
    — with results streamed back (and cached) as they complete.

    Results come back aligned with the input order regardless of
    completion order.  This is the shared execution core: campaign
    sweeps call it on an expanded grid, the paper-artifact builder on a
    deduplicated union of artifact requirements.
    """
    cells = list(cells)
    keys = [cell_key(c) for c in cells]
    slots: List[Optional[CellResult]] = [None] * len(cells)
    done = 0
    progress_ok = True
    stats_base = cache.stats.snapshot() if cache is not None else None

    def _note(i: int, res: CellResult, source: str) -> None:
        # progress is advisory: a callback blowing up (closed pipe, UI gone)
        # must not abort the campaign or skip caching the remaining cells
        nonlocal done, progress_ok
        slots[i] = res
        done += 1
        if progress is not None and progress_ok:
            try:
                progress(done, len(cells), cells[i], source, res.elapsed)
            except Exception:
                progress_ok = False

    todo: List[int] = []
    for i, (c, k) in enumerate(zip(cells, keys)):
        rec = cache.get(k) if (cache is not None and not force) else None
        if rec is not None:
            _note(i, CellResult(cell=c, key=k, metrics=rec, cached=True), "cache")
        else:
            todo.append(i)

    def _finish(i: int, metrics: Dict[str, object], dt: float) -> None:
        if cache is not None:
            cache.put(keys[i], cells[i], metrics)
        _note(
            i,
            CellResult(cell=cells[i], key=keys[i], metrics=metrics,
                       cached=False, elapsed=dt),
            "run",
        )

    # a failing cell must not discard the rest of the campaign: every other
    # cell still completes and is cached, then one error names the culprits
    failures: List[Tuple[CampaignCell, BaseException]] = []

    if todo and (jobs <= 1 or len(todo) == 1):
        for i in todo:
            try:
                metrics, dt = _run_cell_timed(cells[i])
            except Exception as exc:
                failures.append((cells[i], exc))
                continue
            _finish(i, metrics, dt)
    elif todo:
        # submit cells grouped by workload identity: the pool hands out
        # tasks in submission order, so each worker sees long runs of the
        # same workload and its per-process memo regenerates far fewer
        # traces (policy grids share one workload across many cells)
        todo = sorted(todo, key=lambda i: (repr(cells[i].workload),
                                           cells[i].seed, i))
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            submitted = {pool.submit(_run_cell_timed, cells[i]): i
                         for i in todo}
            pending = set(submitted)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = submitted[fut]
                    try:
                        metrics, dt = fut.result()
                    except Exception as exc:
                        failures.append((cells[i], exc))
                        continue
                    _finish(i, metrics, dt)

    if stats_base is not None:
        window = cache.stats.since(stats_base)
        if window.corrupt:
            shown = ", ".join(window.corrupt_keys[:3])
            more = ("" if window.corrupt <= 3
                    else f" (+{window.corrupt - 3} more)")
            log.warning(
                "%d corrupt cache entr%s re-simulated: %s%s",
                window.corrupt, "y" if window.corrupt == 1 else "ies",
                shown, more,
            )

    if failures:
        completed = sum(1 for r in slots if r is not None)
        detail = "; ".join(f"{c.label()}: {exc!r}" for c, exc in failures[:5])
        more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
        raise RuntimeError(
            f"{len(failures)}/{len(cells)} campaign cells failed "
            f"({completed} completed and cached): {detail}{more}"
        ) from failures[0][1]

    assert all(r is not None for r in slots)
    return [r for r in slots if r is not None]


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: Optional[CampaignCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Expand a spec and run its grid through :func:`run_cells`."""
    t0 = time.perf_counter()
    stats_base = cache.stats.snapshot() if cache is not None else None
    results = run_cells(
        spec.expand(), jobs=jobs, cache=cache, force=force, progress=progress
    )
    elapsed = time.perf_counter() - t0
    return CampaignResult(
        spec=spec,
        results=results,
        elapsed=elapsed,
        stats=campaign_stats(
            results, elapsed, max(1, jobs),
            cache.stats.since(stats_base) if stats_base is not None else None,
        ),
    )
