"""Fault-tolerant parallel campaign execution.

Grid cells are embarrassingly parallel (each is one full simulation), so
the executor fans missing cells out over a :class:`ProcessPoolExecutor`
and streams completions back in arbitrary order; determinism lives in the
cells themselves (pure worker + seeded generators), not in scheduling, so
``--jobs 4`` and ``--jobs 1`` produce bit-identical metrics.

The worker, :func:`run_cell`, is a pure top-level function: it builds the
cell's workload (memoized per worker process — one trace typically feeds
many policy cells) and delegates to the same
:func:`repro.experiments.runner.run_policy` the serial path uses, then
flattens the result into the JSON-safe metric record the cache stores.

Because a 10k-cell sweep will meet real failures, the executor is a
*runtime*, not a loop (semantics in ``docs/ROBUSTNESS.md``):

* failed cells retry with capped exponential backoff
  (:class:`~.retry.RetryPolicy`); a cell that fails identically twice is
  quarantined instead of retried forever;
* worker loss (``BrokenProcessPool``) rebuilds the pool and resubmits
  the in-flight cells, charging each a conservative "kill" — a cell
  charged more than ``max_worker_kills`` is quarantined;
* a per-cell wall-clock watchdog (``RetryPolicy.timeout``) kills and
  rebuilds the pool under a hung simulation instead of hanging the
  campaign (pool mode only — inline execution cannot preempt);
* every completion is journaled (:class:`~.journal.RunJournal`) so an
  interrupted run resumes exactly; ``keep_going`` converts terminal
  failures into an explicit accounting instead of an exception.

All recovery events are counted in a :class:`~.retry.RunReport`, echoed
into the obs counters (``campaign.retry``, ``campaign.pool_rebuild``,
``campaign.timeout``, ``campaign.quarantined``) and rendered by
``--stats``; fault-free runs take none of these paths and stay
byte-identical to the pre-hardening executor.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..experiments.export import policy_run_record
from ..obs import counters as _counters
from ..obs.log import get_logger
from ..obs.stats import timing_summary, utilization
from ..workload.model import Workload
from . import faults
from .aggregate import aggregate_cells
from .cache import CacheStats, CampaignCache, cell_key
from .journal import JOURNAL_DIR_NAME, RunJournal
from .retry import (
    CellFailure,
    CellState,
    CellTimeout,
    RetryPolicy,
    RunReport,
    WorkerLost,
    failure_signature,
)
from .spec import CampaignCell, CampaignSpec, _swf_digest

log = get_logger("repro.campaign")

#: progress callback: (done, total, cell, source, elapsed) with source in
#: {"cache", "run", "journal"}; ``elapsed`` is the cell's in-worker
#: execution time in seconds (0.0 for cache/journal hits, which complete
#: instantly)
ProgressFn = Callable[[int, int, CampaignCell, str, float], None]

# per-process workload memo: many cells share one (workload, seed) instance.
# LRU eviction (not clear-all): a policy sweep interleaving a handful of
# workloads must not flush the whole set when one extra workload appears.
_WL_CACHE: "OrderedDict[Tuple, Workload]" = OrderedDict()
_WL_CACHE_MAX = 8


def _workload_key(cell: CampaignCell) -> Tuple:
    """Identity of the generated workload a cell simulates (cells differing
    only in policy/options share it — and share the built object)."""
    key: Tuple = (cell.workload, cell.seed)
    if cell.workload.kind == "swf":
        # the spec compares equal across a trace edit; the content digest
        # doesn't — without it an in-process edit would serve the stale
        # workload and poison the cache under the new content hash
        key += (_swf_digest(str(cell.workload.path)),)
    return key


def _cell_workload(cell: CampaignCell) -> Workload:
    key = _workload_key(cell)
    wl = _WL_CACHE.get(key)
    if wl is None:
        wl = cell.workload.build(cell.seed)
        _WL_CACHE[key] = wl
        if len(_WL_CACHE) > _WL_CACHE_MAX:
            _WL_CACHE.popitem(last=False)
    else:
        _WL_CACHE.move_to_end(key)
    return wl


def run_cell(cell: CampaignCell) -> Dict[str, object]:
    """Simulate one grid cell and return its JSON-safe metric record.

    Pure top-level function — picklable for process pools, and the single
    implementation behind both ``--jobs 1`` and ``--jobs N``.
    """
    from .. import api  # deferred: the facade imports campaign lazily too

    wl = _cell_workload(cell)
    handle = api.run(api.SimulationRequest(
        policy=cell.policy, workload=wl, options=cell.options,
    ))
    return policy_run_record(handle.run)


def _run_cell_timed(
    cell: CampaignCell,
    key: Optional[str] = None,
    attempt: int = 0,
    inline: bool = True,
) -> Tuple[Dict[str, object], float]:
    """Worker entry: metrics plus execution time measured *in* the worker
    (a submit-to-completion clock would fold in pool queue wait).

    ``attempt`` is tracked by the parent so the deterministic fault layer
    sees a count that survives worker death; ``inline`` degrades
    worker-kill faults to a raise when there is no worker to kill.
    """
    plan = faults.active_plan()
    if plan is not None:
        fault = plan.check("cell.run", key if key is not None
                           else cell_key(cell), attempt)
        if fault is not None:
            fault.fire(inline=inline)
    t0 = time.perf_counter()
    metrics = run_cell(cell)
    return metrics, time.perf_counter() - t0


@dataclass
class CellResult:
    """One cell's metrics plus where they came from."""

    cell: CampaignCell
    key: str
    metrics: Dict[str, object]
    cached: bool
    elapsed: float = 0.0


@dataclass
class CampaignRunStats:
    """Execution accounting for one campaign run: where the cells came
    from, how long simulation took (per-cell percentiles over in-worker
    time), how busy the worker pool was, and what the recovery machinery
    had to do.  Rendered by ``repro sweep --stats``; the numbers are
    observational and never feed back into metrics or cache keys."""

    n_cells: int
    n_cached: int
    n_simulated: int
    wall: float
    workers: int
    #: p50/p95/max/total over per-cell in-worker simulation seconds
    cell_seconds: Dict[str, float]
    #: fraction of worker capacity spent simulating (None when all cached)
    pool_utilization: Optional[float]
    cache: Optional[CacheStats] = None
    #: recovery accounting (zeros on a fault-free run)
    retries: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    quarantined: int = 0
    n_failed: int = 0
    n_journal: int = 0

    @property
    def rate(self) -> float:
        """Cells per wall-clock second."""
        return self.n_cells / self.wall if self.wall > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_cells": self.n_cells,
            "n_cached": self.n_cached,
            "n_simulated": self.n_simulated,
            "wall": round(self.wall, 4),
            "workers": self.workers,
            "cell_seconds": dict(self.cell_seconds),
            "pool_utilization": (
                round(self.pool_utilization, 4)
                if self.pool_utilization is not None else None
            ),
            "cache": self.cache.as_dict() if self.cache is not None else None,
            "recovery": {
                "retries": self.retries,
                "pool_rebuilds": self.pool_rebuilds,
                "timeouts": self.timeouts,
                "quarantined": self.quarantined,
                "n_failed": self.n_failed,
                "n_journal": self.n_journal,
            },
        }

    def render(self) -> str:
        """Human-readable stats block (one fact per line, greppable)."""
        cs = self.cell_seconds
        lines = [
            f"cells   : {self.n_cells} in {self.wall:.2f}s "
            f"({self.rate:.1f} cells/s) — "
            f"{self.n_simulated} simulated, {self.n_cached} cached",
            f"cell time : p50 {cs['p50']:.3f}s, p95 {cs['p95']:.3f}s, "
            f"max {cs['max']:.3f}s (sim total {cs['total']:.2f}s)",
        ]
        if self.pool_utilization is not None:
            lines.append(
                f"workers : {self.workers}, "
                f"utilization {100 * self.pool_utilization:.0f}%"
            )
        if self.cache is not None:
            s = self.cache
            lines.append(
                f"cache   : {s.hits} hits, {s.misses} misses, "
                f"{s.corrupt} corrupt"
            )
        lines.append(
            f"recovery: {self.retries} retries, "
            f"{self.pool_rebuilds} pool rebuilds, "
            f"{self.timeouts} timeouts, {self.quarantined} quarantined"
        )
        if self.n_journal:
            lines.append(f"resume  : {self.n_journal} cells replayed "
                         f"from the run journal")
        if self.n_failed:
            lines.append(f"failed  : {self.n_failed} cells missing "
                         f"from aggregates (see --keep-going report)")
        return "\n".join(lines)


def campaign_stats(
    results: Sequence[CellResult],
    wall: float,
    workers: int,
    cache_stats: Optional[CacheStats] = None,
    report: Optional[RunReport] = None,
) -> CampaignRunStats:
    """Compute the run-stats block from finished cell results."""
    sim_times = [r.elapsed for r in results if not r.cached]
    rep = report or RunReport()
    return CampaignRunStats(
        n_cells=len(results),
        n_cached=sum(1 for r in results if r.cached),
        n_simulated=len(sim_times),
        wall=wall,
        workers=workers,
        cell_seconds=timing_summary(sim_times),
        pool_utilization=utilization(sum(sim_times), wall, workers),
        cache=cache_stats,
        retries=rep.retries,
        pool_rebuilds=rep.pool_rebuilds,
        timeouts=rep.timeouts,
        quarantined=rep.quarantined,
        n_failed=len(rep.failures),
        n_journal=rep.journal_cells,
    )


@dataclass
class CampaignResult:
    """Every completed cell's outcome, in grid order, plus execution
    accounting.  With ``keep_going`` the result may be partial —
    ``report.failures`` lists what is missing, and :meth:`aggregate`
    carries an explicit ``incomplete`` block."""

    spec: CampaignSpec
    results: List[CellResult] = field(default_factory=list)
    elapsed: float = 0.0
    stats: Optional[CampaignRunStats] = None
    report: Optional[RunReport] = None

    @property
    def n_cells(self) -> int:
        return len(self.results)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_simulated(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def n_failed(self) -> int:
        return len(self.report.failures) if self.report is not None else 0

    def aggregate(self) -> Dict[str, object]:
        """Per-group statistics across seeds (see :mod:`.aggregate`).

        A partial (``keep_going``) result aggregates what completed and
        accounts for the rest in an ``incomplete`` block, so a consumer
        can never mistake a survivor-only mean for a full one.
        """
        doc = aggregate_cells(self.results, campaign=self.spec.name)
        if self.report is not None and self.report.failures:
            doc["incomplete"] = {
                "n_failed": len(self.report.failures),
                "failed": [
                    {
                        "key": f.key,
                        "cell": f.cell.label() if isinstance(
                            f.cell, CampaignCell) else str(f.cell),
                        "kind": f.kind,
                        "error": f.error,
                        "attempts": f.attempts,
                        "quarantined": f.quarantined,
                    }
                    for f in sorted(self.report.failures, key=lambda f: f.key)
                ],
            }
        return doc


def _counter_hit(name: str) -> None:
    c = _counters.ACTIVE
    if c is not None:
        c.hit(name)


def run_cells(
    cells: Sequence[CampaignCell],
    jobs: int = 1,
    cache: Optional[CampaignCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    keep_going: bool = False,
    report: Optional[RunReport] = None,
) -> List[CellResult]:
    """Execute an explicit cell list: journal replays and cache lookups
    first, then the missing cells — inline for ``jobs <= 1``, else across
    a self-healing process pool — with results streamed back (journaled
    and cached) as they complete.

    Results come back aligned with the input order regardless of
    completion order.  This is the shared execution core: campaign
    sweeps call it on an expanded grid, the paper-artifact builder on a
    deduplicated union of artifact requirements.

    ``retry`` defaults to :class:`RetryPolicy` (retries on, watchdog
    off); pass ``RetryPolicy(max_attempts=1)`` to restore fail-fast.
    With ``keep_going`` terminal failures are recorded in ``report``
    instead of raised, and the returned list simply omits the failed
    cells.  ``report`` (if given) is filled in place, so recovery counts
    survive even a run that dies mid-flight.
    """
    cells = list(cells)
    keys = [cell_key(c) for c in cells]
    policy = retry if retry is not None else RetryPolicy()
    rep = report if report is not None else RunReport()
    plan = faults.active_plan()
    slots: List[Optional[CellResult]] = [None] * len(cells)
    done = 0
    progress_ok = True
    stats_base = cache.stats.snapshot() if cache is not None else None
    failures: List[CellFailure] = []

    replayed: Dict[str, Dict[str, object]] = {}
    if journal is not None:
        if resume and not force:
            replayed = journal.completed_cells(keys)
        journal.begin(keys, resuming=resume)

    def _note(i: int, res: CellResult, source: str) -> None:
        # progress is advisory: a callback blowing up (closed pipe, UI gone)
        # must not abort the campaign or skip caching the remaining cells
        nonlocal done, progress_ok
        slots[i] = res
        done += 1
        if journal is not None and source != "journal":
            journal.record(keys[i], res.metrics, source)
        if progress is not None and progress_ok:
            try:
                progress(done, len(cells), cells[i], source, res.elapsed)
            except Exception as exc:
                progress_ok = False
                log.warning(
                    "progress callback raised %r; suppressing further "
                    "progress reports for this run", exc,
                )
        if plan is not None:
            fault = plan.check("driver.tick", str(done))
            if fault is not None:
                fault.fire()

    def _fail(i: int, state: CellState, exc: BaseException, kind: str,
              quarantined: bool) -> None:
        failures.append(CellFailure(
            cell=cells[i], key=keys[i], kind=kind,
            error=failure_signature(exc), attempts=state.attempts,
            quarantined=quarantined, exc=exc,
        ))
        if quarantined:
            rep.quarantined += 1
            _counter_hit("campaign.quarantined")
        if journal is not None:
            journal.record_failure(keys[i], kind, failure_signature(exc),
                                   state.attempts, quarantined)
        log.warning("cell %s %s after %d attempt(s): %s",
                    cells[i].label(),
                    "quarantined" if quarantined else "failed",
                    state.attempts, failure_signature(exc))

    def _note_retry(i: int, state: CellState, exc: BaseException) -> None:
        rep.retries += 1
        _counter_hit("campaign.retry")
        log.info("retrying cell %s (attempt %d/%d) after %s",
                 cells[i].label(), state.attempts + 1, policy.max_attempts,
                 failure_signature(exc))

    todo: List[int] = []
    for i, (c, k) in enumerate(zip(cells, keys)):
        if not force and k in replayed:
            rep.journal_cells += 1
            _note(i, CellResult(cell=c, key=k, metrics=replayed[k],
                                cached=True), "journal")
            continue
        rec = cache.get(k) if (cache is not None and not force) else None
        if rec is not None:
            _note(i, CellResult(cell=c, key=k, metrics=rec, cached=True),
                  "cache")
        else:
            todo.append(i)

    def _finish(i: int, metrics: Dict[str, object], dt: float) -> None:
        if cache is not None:
            cache.put(keys[i], cells[i], metrics)
        _note(
            i,
            CellResult(cell=cells[i], key=keys[i], metrics=metrics,
                       cached=False, elapsed=dt),
            "run",
        )

    try:
        if todo and (jobs <= 1 or len(todo) == 1):
            _run_inline(cells, keys, todo, policy, _finish, _fail,
                        _note_retry)
        elif todo:
            _run_pool(cells, keys, todo, jobs, policy, rep, _finish, _fail,
                      _note_retry)
        if journal is not None:
            journal.end(completed=done, failed=len(failures))
    finally:
        if journal is not None:
            journal.close()

    if stats_base is not None:
        window = cache.stats.since(stats_base)
        if window.corrupt:
            shown = ", ".join(window.corrupt_keys[:3])
            more = ("" if window.corrupt <= 3
                    else f" (+{window.corrupt - 3} more)")
            log.warning(
                "%d corrupt cache entr%s re-simulated: %s%s",
                window.corrupt, "y" if window.corrupt == 1 else "ies",
                shown, more,
            )

    if failures:
        rep.failures.extend(failures)
        if not keep_going:
            completed = sum(1 for r in slots if r is not None)
            detail = "; ".join(f"{f.cell.label()}: {f.error}"
                               for f in failures[:5])
            more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
            quarantined = sum(1 for f in failures if f.quarantined)
            qnote = f", {quarantined} quarantined" if quarantined else ""
            err = RuntimeError(
                f"{len(failures)}/{len(cells)} campaign cells failed"
                f"{qnote} ({completed} completed and cached): {detail}{more}"
            )
            err.failures = list(failures)  # type: ignore[attr-defined]
            raise err from failures[0].exc

    return [r for r in slots if r is not None]


def _run_inline(
    cells: Sequence[CampaignCell],
    keys: Sequence[str],
    todo: Sequence[int],
    policy: RetryPolicy,
    _finish: Callable[[int, Dict[str, object], float], None],
    _fail: Callable[[int, CellState, BaseException, str, bool], None],
    _note_retry: Callable[[int, CellState, BaseException], None],
) -> None:
    """The ``--jobs 1`` path: same retry semantics, no watchdog (a
    single-process driver cannot preempt its own simulation)."""
    for i in todo:
        state = CellState()
        while True:
            try:
                metrics, dt = _run_cell_timed(cells[i], keys[i],
                                              state.attempts, inline=True)
            except Exception as exc:
                action = state.classify(exc, policy)
                if action == "retry":
                    _note_retry(i, state, exc)
                    delay = policy.backoff(state.attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                _fail(i, state, exc, "error", action == "quarantine")
                break
            else:
                _finish(i, metrics, dt)
                break


def _run_pool(
    cells: Sequence[CampaignCell],
    keys: Sequence[str],
    todo: Sequence[int],
    jobs: int,
    policy: RetryPolicy,
    rep: RunReport,
    _finish: Callable[[int, Dict[str, object], float], None],
    _fail: Callable[[int, CellState, BaseException, str, bool], None],
    _note_retry: Callable[[int, CellState, BaseException], None],
) -> None:
    """The self-healing process-pool path.

    Submission is bounded at ``max_workers`` outstanding futures — this
    keeps each worker fed (the loop refills on every completion) while
    keeping worker-loss *blame* tight: when the pool breaks, every
    in-flight cell is charged one kill, and with bounded submission
    "in-flight" means "actually running", not "queued behind 500 others".
    """
    # submit cells grouped by workload identity: tasks go out in order,
    # so each worker sees long runs of the same workload and its
    # per-process memo regenerates far fewer traces (policy grids share
    # one workload across many cells)
    order = sorted(todo, key=lambda i: (repr(cells[i].workload),
                                        cells[i].seed, i))
    max_workers = min(jobs, len(order))
    unsubmitted: "deque[int]" = deque(order)
    pending_retry: List[Tuple[float, int]] = []  # (ready time, cell index)
    states: Dict[int, CellState] = {}
    futures: Dict[object, int] = {}
    deadlines: Dict[object, float] = {}
    pool = ProcessPoolExecutor(max_workers=max_workers)

    def _state(i: int) -> CellState:
        st = states.get(i)
        if st is None:
            st = states[i] = CellState()
        return st

    def _submit(i: int) -> bool:
        st = _state(i)
        # the fault-layer occurrence number counts charged kills too:
        # worker-loss resubmission does not consume a retry attempt, but a
        # `times: 1` kill rule must not re-fire on the resubmitted cell
        try:
            fut = pool.submit(_run_cell_timed, cells[i], keys[i],
                              st.attempts + st.worker_kills, False)
        except BrokenProcessPool:
            # the pool broke while idle (e.g. an OOM-killed worker between
            # tasks); push the cell back and let the caller rebuild
            unsubmitted.appendleft(i)
            return False
        futures[fut] = i
        if policy.timeout is not None:
            deadlines[fut] = time.monotonic() + policy.timeout
        return True

    def _on_failure(i: int, exc: BaseException) -> None:
        state = _state(i)
        action = state.classify(exc, policy)
        if action == "retry":
            _note_retry(i, state, exc)
            pending_retry.append(
                (time.monotonic() + policy.backoff(state.attempts), i))
        else:
            kind = "timeout" if isinstance(exc, CellTimeout) else "error"
            _fail(i, state, exc, kind, action == "quarantine")

    def _rebuild(charge_kills: bool, spare: Set[int]) -> None:
        """Tear the pool down, salvage finished futures, requeue the rest.

        ``charge_kills`` charges every unfinished in-flight cell one
        worker kill (the worker-loss blame model); cells in ``spare``
        are never charged (e.g. bystanders of a watchdog teardown, which
        was our own kill, not theirs).
        """
        nonlocal pool
        rep.pool_rebuilds += 1
        _counter_hit("campaign.pool_rebuild")
        victims: List[int] = []
        salvaged: List[Tuple[int, Dict[str, object], float]] = []
        for fut in list(futures):
            i = futures.pop(fut)
            deadlines.pop(fut, None)
            if fut.done():
                try:
                    metrics, dt = fut.result()
                except Exception:
                    victims.append(i)
                else:
                    salvaged.append((i, metrics, dt))
            else:
                fut.cancel()
                victims.append(i)
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        pool = ProcessPoolExecutor(max_workers=max_workers)
        log.warning(
            "worker pool rebuilt (%d in-flight cells resubmitted)",
            len(victims),
        )
        for i in victims:
            state = _state(i)
            if charge_kills and i not in spare:
                state.worker_kills += 1
                if state.worker_kills > policy.max_worker_kills:
                    exc = WorkerLost(
                        f"cell killed its worker {state.worker_kills} times"
                    )
                    # worker-loss failures never consumed attempts, so the
                    # failure record carries the kill count instead
                    state.attempts = max(state.attempts, state.worker_kills)
                    _fail(i, state, exc, "worker-loss", True)
                    continue
            unsubmitted.appendleft(i)
        # salvage last: _finish may raise an injected driver abort, and
        # by now every victim is safely requeued (nothing is lost even
        # if this propagates)
        for i, metrics, dt in salvaged:
            _finish(i, metrics, dt)

    try:
        while unsubmitted or pending_retry or futures:
            now = time.monotonic()
            if pending_retry:
                ready = [i for t, i in pending_retry if t <= now]
                if ready:
                    pending_retry = [(t, i) for t, i in pending_retry
                                     if t > now]
                    unsubmitted.extendleft(reversed(ready))
            while unsubmitted and len(futures) < max_workers:
                if not _submit(unsubmitted.popleft()):
                    _rebuild(charge_kills=True, spare=set())
            if not futures:
                if pending_retry:
                    time.sleep(max(0.0, min(t for t, _ in pending_retry)
                                   - time.monotonic()))
                continue

            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - now)
            if pending_retry:
                t_retry = max(0.0, min(t for t, _ in pending_retry) - now)
                timeout = t_retry if timeout is None else min(timeout, t_retry)

            finished, _ = wait(set(futures), timeout=timeout,
                               return_when=FIRST_COMPLETED)

            broken = False
            for fut in finished:
                i = futures.pop(fut, None)
                if i is None:
                    continue
                deadlines.pop(fut, None)
                try:
                    metrics, dt = fut.result()
                except BrokenProcessPool:
                    # this cell was in flight when a worker died; requeue
                    # via the rebuild so every in-flight cell is blamed
                    # exactly once
                    futures[fut] = i
                    broken = True
                    break
                except Exception as exc:
                    _on_failure(i, exc)
                else:
                    _finish(i, metrics, dt)
            if broken:
                _rebuild(charge_kills=True, spare=set())
                continue

            if policy.timeout is not None:
                now = time.monotonic()
                expired = [fut for fut, dl in deadlines.items()
                           if dl <= now and not fut.done()]
                if expired:
                    spare: Set[int] = set()
                    for fut in expired:
                        i = futures.pop(fut)
                        deadlines.pop(fut, None)
                        fut.cancel()
                        rep.timeouts += 1
                        _counter_hit("campaign.timeout")
                        spare.add(i)
                        _on_failure(i, CellTimeout(
                            f"cell exceeded the {policy.timeout:g}s "
                            f"wall-clock budget"
                        ))
                    # the hung workers must die: terminate the pool's
                    # processes, then rebuild; surviving in-flight cells
                    # are requeued without blame (our kill, not theirs)
                    procs = getattr(pool, "_processes", None) or {}
                    for p in list(procs.values()):
                        try:
                            p.terminate()
                        except Exception:
                            pass
                    _rebuild(charge_kills=False, spare=spare)
    finally:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: Optional[CampaignCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    resume: bool = False,
    journal: Optional[RunJournal] = None,
    journal_dir: Optional[Union[str, Path]] = None,
    report: Optional[RunReport] = None,
) -> CampaignResult:
    """Expand a spec and run its grid through :func:`run_cells`.

    With ``journal_dir`` (typically ``<cache root>/journals``) the run
    writes — and with ``resume=True`` replays — an auto-named crash-safe
    journal, so the same spec always maps to the same resume point.
    """
    t0 = time.perf_counter()
    stats_base = cache.stats.snapshot() if cache is not None else None
    cells = spec.expand()
    if journal is None and journal_dir is not None:
        journal = RunJournal.at(journal_dir, [cell_key(c) for c in cells],
                                name=spec.name)
    rep = report if report is not None else RunReport()
    results = run_cells(
        cells, jobs=jobs, cache=cache, force=force, progress=progress,
        retry=retry, journal=journal, resume=resume, keep_going=keep_going,
        report=rep,
    )
    elapsed = time.perf_counter() - t0
    return CampaignResult(
        spec=spec,
        results=results,
        elapsed=elapsed,
        stats=campaign_stats(
            results, elapsed, max(1, jobs),
            cache.stats.since(stats_base) if stats_base is not None else None,
            report=rep,
        ),
        report=rep,
    )


def default_journal_dir(cache: Optional[CampaignCache]) -> Optional[Path]:
    """Where auto-named run journals live for a given cache (its root's
    ``journals/`` subdirectory), or ``None`` without a cache."""
    if cache is None:
        return None
    return cache.root / JOURNAL_DIR_NAME
