"""Crash-safe run journal: append-only JSONL making campaigns resumable.

The content-addressed cache already makes re-runs cheap, but it is a
*cache*: entries can be evicted, corrupted, or disabled (``--no-cache``),
and it records nothing about which run produced what.  The journal is the
executor's write-ahead completion log — one flushed JSON line per
finished cell, metrics embedded — so ``repro sweep --resume`` continues
an interrupted run *exactly*: completed cells replay from the journal
(source ``"journal"``), everything else executes as usual.

Records (schema 1):

* ``{"ev": "header", "schema": 1, "run": <run id>, "name": ...,
  "n_cells": N, "resumed": bool}`` — written on every (re)open;
* ``{"ev": "cell", "key": ..., "source": "run"|"cache",
  "metrics": {...}}`` — one completed cell (the resume unit);
* ``{"ev": "fail", "key": ..., "kind": ..., "error": ...,
  "attempts": N, "quarantined": bool}`` — informational: failed cells
  are re-attempted on resume;
* ``{"ev": "end", "completed": N, "failed": M}`` — a run that finished.

Crash safety is per line: every record is written and flushed atomically
from one ``write`` call, and the reader skips a torn trailing line (the
driver died mid-write), so a journal is never unreadable.  The run id is
the SHA-256 of the sorted cell-key set — the same grid always maps to
the same journal file under ``<cache root>/journals/``, which is how
``--resume`` finds the right log without extra bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..obs.log import get_logger

PathLike = Union[str, Path]

log = get_logger("repro.campaign.journal")

#: bump when the journal record layout changes
JOURNAL_SCHEMA = 1

#: subdirectory of the cache root holding auto-named journals
JOURNAL_DIR_NAME = "journals"


@dataclass
class JournalState:
    """A parsed journal: headers seen, completed cells, failure records."""

    headers: List[Dict[str, object]] = field(default_factory=list)
    cells: Dict[str, Dict[str, object]] = field(default_factory=dict)
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    ended: bool = False
    torn_lines: int = 0

    @property
    def run_id(self) -> Optional[str]:
        return str(self.headers[0]["run"]) if self.headers else None


class RunJournal:
    """Append-only JSONL journal for one campaign grid."""

    def __init__(self, path: PathLike, name: str = "campaign") -> None:
        self.path = Path(path)
        self.name = name
        self._fh = None

    # -- identity --------------------------------------------------------------

    @staticmethod
    def run_id(keys: Sequence[str]) -> str:
        """Identity of a grid: the hash of its sorted cell-key set."""
        blob = json.dumps(sorted(keys), separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @classmethod
    def at(cls, journal_dir: PathLike, keys: Sequence[str],
           name: str = "campaign") -> "RunJournal":
        """The auto-named journal for a grid under ``journal_dir``."""
        rid = cls.run_id(keys)
        return cls(Path(journal_dir) / f"{rid[:16]}.jsonl", name=name)

    # -- writing ---------------------------------------------------------------

    def begin(self, keys: Sequence[str], resuming: bool = False) -> None:
        """Open for appending (resume) or truncate (fresh run) and write
        the header record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if (resuming and self.path.exists()) else "w"
        self._fh = open(self.path, mode)
        self._write({
            "ev": "header",
            "schema": JOURNAL_SCHEMA,
            "run": self.run_id(keys),
            "name": self.name,
            "n_cells": len(keys),
            "resumed": bool(resuming),
        })

    def record(self, key: str, metrics: Dict[str, object],
               source: str) -> None:
        """Journal one completed cell (the crash-safe resume unit)."""
        self._write({"ev": "cell", "key": key, "source": source,
                     "metrics": metrics})

    def record_failure(self, key: str, kind: str, error: str,
                       attempts: int, quarantined: bool) -> None:
        self._write({"ev": "fail", "key": key, "kind": kind, "error": error,
                     "attempts": attempts, "quarantined": quarantined})

    def end(self, completed: int, failed: int) -> None:
        self._write({"ev": "end", "completed": completed, "failed": failed})

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def _write(self, doc: Dict[str, object]) -> None:
        if self._fh is None:
            raise RuntimeError("journal not opened; call begin() first")
        # one write + flush per record: a crash between records loses
        # nothing, a crash inside one loses only the torn trailing line
        self._fh.write(json.dumps(doc, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def read(path: PathLike) -> JournalState:
        """Parse a journal, tolerating a torn trailing line."""
        state = JournalState()
        try:
            text = Path(path).read_text()
        except OSError:
            return state
        lines = text.split("\n")
        for n, line in enumerate(lines):
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                # a torn line is expected only at the tail (the writer
                # died mid-record); anything else is still skipped, but
                # counted so callers can warn
                state.torn_lines += 1
                continue
            ev = doc.get("ev")
            if ev == "header":
                state.headers.append(doc)
            elif ev == "cell":
                key, metrics = doc.get("key"), doc.get("metrics")
                if isinstance(key, str) and isinstance(metrics, dict):
                    state.cells[key] = metrics
                    state.failures.pop(key, None)
                else:
                    state.torn_lines += 1
            elif ev == "fail":
                key = doc.get("key")
                if isinstance(key, str):
                    state.failures[key] = doc
            elif ev == "end":
                state.ended = True
        return state

    def completed_cells(self, keys: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Metrics for already-completed cells of *this* grid.

        Keys are content-addressed, so replaying a record can never serve
        stale data — but a journal written by a different grid is almost
        certainly operator error, so a run-id mismatch warns (and still
        reuses any exact-key matches it finds).
        """
        state = self.read(self.path)
        if not state.headers:
            return {}
        rid = self.run_id(keys)
        if state.run_id != rid:
            log.warning(
                "journal %s was written by a different grid "
                "(run %s != %s); reusing exact-key matches only",
                self.path, str(state.run_id)[:12], rid[:12],
            )
        if state.torn_lines:
            log.warning("journal %s: skipped %d torn line(s)",
                        self.path, state.torn_lines)
        wanted = set(keys)
        return {k: m for k, m in state.cells.items() if k in wanted}
