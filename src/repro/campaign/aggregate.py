"""Statistical aggregation of campaign cells.

Cells sharing (workload family, policy, overrides) but differing in seed
are replications; this module collapses each such group into mean / std /
95% confidence interval for every numeric metric a
:class:`~repro.experiments.runner.PolicyRun` record exposes (nested
summary and fairness stats, loss of capacity, the per-width arrays —
anything :func:`flatten_metrics` can reduce to scalars).

CIs use the two-sided Student-t critical value (normal approximation
above 30 degrees of freedom) — the replication-with-confidence-intervals
presentation related work uses to compare policies.  Everything is
deterministically ordered (groups by canonical identity, cells by seed,
metrics by name) so aggregate documents are byte-identical regardless of
worker completion order or job count.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .executor import CellResult

#: two-sided 95% Student-t critical values by degrees of freedom
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value; 1.96 beyond the tabulated range."""
    if df < 1:
        raise ValueError("need at least 1 degree of freedom")
    return _T95.get(df, 1.960)


def flatten_metrics(record: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Reduce a nested metric record to dotted-path scalars.

    Dicts recurse (``summary.avg_wait``), numeric lists index
    (``miss_by_width.3``), numbers pass through as floats; strings and
    other non-numeric leaves (labels, policy names) are dropped.  NaNs
    (empty width buckets) are kept — aggregation treats them as missing.
    """
    out: Dict[str, float] = {}
    for name, value in record.items():
        path = f"{prefix}{name}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, (list, tuple)):
            for i, v in enumerate(value):
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    out[f"{path}.{i}"] = float(v)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = float(value)
    return out


def _stats(values: Sequence[float]) -> Dict[str, object]:
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
        ci95 = t_critical_95(n - 1) * std / math.sqrt(n)
    else:
        std = 0.0
        ci95 = 0.0
    return {
        "n": n,
        "mean": mean,
        "std": std,
        "ci95": ci95,
        "min": min(values),
        "max": max(values),
    }


def aggregate_cells(
    results: Sequence["CellResult"],
    campaign: str = "campaign",
) -> Dict[str, object]:
    """Collapse cell results into per-group statistics across seeds.

    Returns a JSON-safe document: one group per (workload family, policy,
    overrides) with every flattened metric's n/mean/std/ci95/min/max.
    """
    groups: Dict[str, Dict[str, object]] = {}
    for res in results:
        gid = json.dumps(res.cell.group_identity(), sort_keys=True)
        bucket = groups.setdefault(
            gid,
            {"identity": res.cell.group_identity(), "cells": []},
        )
        bucket["cells"].append(res)  # type: ignore[union-attr]

    out_groups: List[Dict[str, object]] = []
    for gid in sorted(groups):
        identity = groups[gid]["identity"]
        cells: List["CellResult"] = sorted(
            groups[gid]["cells"],  # type: ignore[arg-type]
            key=lambda r: json.dumps(r.cell.identity(), sort_keys=True),
        )
        flat = [flatten_metrics(r.metrics) for r in cells]
        names = sorted(set().union(*flat)) if flat else []
        metrics: Dict[str, object] = {}
        for name in names:
            values = [
                f[name] for f in flat
                if name in f and not math.isnan(f[name])
            ]
            if values:
                metrics[name] = _stats(values)
        out_groups.append(
            {
                "workload": identity["workload"],
                "policy": identity["policy"],
                "overrides": identity["overrides"],
                "n_cells": len(cells),
                "seeds": [r.cell.seed for r in cells],
                "metrics": metrics,
            }
        )
    return {
        "campaign": campaign,
        "n_cells": len(results),
        "n_groups": len(out_groups),
        "groups": out_groups,
    }


def aggregate_rows(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Long-format rows (one per group x metric) for CSV export."""
    rows: List[Dict[str, object]] = []
    for group in doc["groups"]:  # type: ignore[union-attr]
        wl = json.dumps(group["workload"], sort_keys=True)
        ov = json.dumps(group["overrides"], sort_keys=True)
        for name, st in group["metrics"].items():
            rows.append(
                {
                    "campaign": doc["campaign"],
                    "workload": wl,
                    "policy": group["policy"],
                    "overrides": ov,
                    "metric": name,
                    "n": st["n"],
                    "mean": st["mean"],
                    "std": st["std"],
                    "ci95": st["ci95"],
                    "min": st["min"],
                    "max": st["max"],
                }
            )
    return rows
