"""Deterministic fault injection for the campaign runtime.

Every recovery path in the executor (retry, pool rebuild, timeout,
corrupt-cache repair, resume) must be exercisable in CI without flaky
sleeps or real OOM kills.  A :class:`FaultPlan` is a seeded, declarative
list of rules that fire at *named sites* in the runtime:

=============  ======================================================
site           where it is checked
=============  ======================================================
``cell.run``   in the worker, before a cell simulates (token: cell key,
               occurrence: the parent-tracked attempt number)
``cache.put``  in :meth:`CampaignCache.put` (token: cell key)
``driver.tick``in the parent loop after each cell completes
               (token: the completion count, as a string)
=============  ======================================================

Rules select tokens either explicitly (``tokens``: prefix match) or by a
seeded hash of ``(seed, site, kind, token)`` against ``rate`` — both are
pure functions, so a plan fires on exactly the same cells in every run.
``times`` bounds how many occurrences fire per token (default 1): a
transient rule with ``times: 1`` fails a cell's first attempt and lets
the retry succeed.

Fault kinds:

* ``transient`` — raise :class:`InjectedTransientError` (retried)
* ``error`` — raise :class:`InjectedError` (deterministic: identical
  on every attempt, so the quarantine rule catches it)
* ``worker_kill`` — ``os._exit`` the worker process (the parent sees
  ``BrokenProcessPool``); inline execution degrades it to a transient
  raise so ``--jobs 1`` chaos runs don't kill the driver
* ``delay`` — sleep ``seconds`` in the worker (drives the watchdog)
* ``corrupt`` — cooperative: ``cache.put`` writes a truncated entry
* ``crash`` — cooperative: ``cache.put`` dies mid-write, leaving a
  ``*.tmp`` orphan and the old entry intact
* ``abort`` — raise :class:`InjectedAbortError` in the driver
  (simulates the sweep process being interrupted)

Plans install in-process (:func:`install`) or through the
``REPRO_FAULT_PLAN`` environment variable (a path to a plan JSON file,
or inline JSON), which worker processes inherit.  With no plan active
the per-site cost is one function call returning ``None``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .retry import TransientError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedAbortError",
    "InjectedCrashError",
    "InjectedError",
    "InjectedTransientError",
    "PLAN_ENV",
    "active_plan",
    "clear",
    "install",
]

#: environment variable naming a plan JSON file (or holding inline JSON)
PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_SITES = ("cell.run", "cache.put", "driver.tick")
FAULT_KINDS = (
    "transient", "error", "worker_kill", "delay", "corrupt", "crash", "abort",
)


class InjectedTransientError(TransientError):
    """A chaos-injected transient failure (retried by the executor)."""


class InjectedError(Exception):
    """A chaos-injected deterministic failure (quarantined on repeat)."""


class InjectedCrashError(Exception):
    """A chaos-injected crash mid-operation (no cleanup runs)."""


class InjectedAbortError(Exception):
    """A chaos-injected driver interrupt (the sweep process 'dies')."""


def _hash01(seed: int, site: str, kind: str, token: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (rule, token)."""
    blob = f"{seed}\x00{site}\x00{kind}\x00{token}".encode()
    digest = hashlib.sha256(blob).hexdigest()
    return int(digest[:12], 16) / float(16 ** 12)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic rule: fire ``kind`` at ``site`` for selected
    tokens, on their first ``times`` occurrences."""

    site: str
    kind: str
    rate: float = 0.0
    tokens: Tuple[str, ...] = ()
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        object.__setattr__(self, "tokens", tuple(str(t) for t in self.tokens))

    def selects(self, seed: int, token: str) -> bool:
        if self.tokens:
            return any(token.startswith(t) for t in self.tokens)
        return self.rate > 0.0 and _hash01(seed, self.site, self.kind,
                                           token) < self.rate

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.tokens:
            out["tokens"] = list(self.tokens)
        else:
            out["rate"] = self.rate
        if self.times != 1:
            out["times"] = self.times
        if self.seconds:
            out["seconds"] = self.seconds
        return out


@dataclass(frozen=True)
class Fault:
    """One fired rule, ready to act.  ``corrupt``/``crash`` are
    cooperative — the call site inspects ``kind`` instead of calling
    :meth:`fire`."""

    site: str
    kind: str
    token: str
    seconds: float = 0.0

    def fire(self, inline: bool = False) -> None:
        tag = f"injected {self.kind} at {self.site} [{self.token[:12]}]"
        if self.kind == "transient":
            raise InjectedTransientError(tag)
        if self.kind == "error":
            raise InjectedError(tag)
        if self.kind == "abort":
            raise InjectedAbortError(tag)
        if self.kind == "worker_kill":
            if inline:
                # killing the only process would kill the driver; degrade
                # to a transient raise so inline chaos runs stay survivable
                raise InjectedTransientError(tag + " (inline, degraded)")
            os._exit(86)
        if self.kind == "delay":
            time.sleep(self.seconds)
            return
        # corrupt/crash: cooperative kinds are no-ops here by design —
        # the owning site (cache.put) implements the damage itself
        return


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule` plus per-token occurrence
    counters (used when the caller cannot supply an attempt number)."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    _counts: Dict[Tuple[str, str], int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)

    def check(self, site: str, token: str,
              attempt: Optional[int] = None) -> Optional[Fault]:
        """The fault to apply at (site, token) for this occurrence, if any.

        ``attempt`` is the occurrence index; when ``None`` the plan
        counts occurrences itself (process-local).  Pure given
        (site, token, attempt): the executor passes its parent-tracked
        attempt number so worker death cannot reset the count.
        """
        token = str(token)
        if attempt is None:
            attempt = self._counts.get((site, token), 0)
            self._counts[(site, token)] = attempt + 1
        for rule in self.rules:
            if rule.site != site or attempt >= rule.times:
                continue
            if rule.selects(self.seed, token):
                return Fault(site=site, kind=rule.kind, token=token,
                             seconds=rule.seconds)
        return None

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "FaultPlan":
        d = dict(d)
        rules_raw = d.pop("faults", d.pop("rules", ()))
        seed = int(d.pop("seed", 0))
        unknown = sorted(d)
        if unknown:
            raise ValueError(
                f"unknown fault plan keys {unknown}; known: seed, faults"
            )
        rules = tuple(
            FaultRule(
                site=str(r["site"]),
                kind=str(r["kind"]),
                rate=float(r.get("rate", 0.0)),
                tokens=tuple(r.get("tokens", ())),
                times=int(r.get("times", 1)),
                seconds=float(r.get("seconds", 0.0)),
            )
            for r in rules_raw  # type: ignore[union-attr]
        )
        return cls(seed=seed, rules=rules)

    @classmethod
    def from_json(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "faults": [r.to_dict() for r in self.rules]}


# -- activation ---------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
#: (env value, parsed plan) memo so workers don't re-read the file per cell
_ENV_CACHE: Optional[Tuple[str, FaultPlan]] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide (forked pool workers inherit it)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear() -> None:
    """Remove any installed plan and forget the env memo."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: the installed one, else ``REPRO_FAULT_PLAN``.

    The env variable names a JSON file (or carries inline JSON starting
    with ``{``), which lets chaos CI drive an unmodified ``repro sweep``
    and lets spawned (non-forked) workers find the plan.
    """
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get(PLAN_ENV)
    if not spec:
        return None
    if _ENV_CACHE is not None and _ENV_CACHE[0] == spec:
        return _ENV_CACHE[1]
    if spec.lstrip().startswith("{"):
        plan = FaultPlan.from_dict(json.loads(spec))
    else:
        plan = FaultPlan.from_json(spec)
    _ENV_CACHE = (spec, plan)
    return plan


def corrupt_blob(blob: str) -> str:
    """The canonical damage ``cache.put`` applies for a ``corrupt`` fault:
    a truncated record, as an interrupted non-atomic writer would leave."""
    return blob[: max(1, len(blob) // 2)]
