"""A minimal asyncio client for the scheduler server.

One :class:`ServiceClient` is one tenant connection; the convenience
methods mirror the protocol ops one-to-one.  Tests and the CI smoke
driver use it; it is also the reference implementation for anyone
speaking the line-JSON protocol from another language.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Mapping, Optional, Sequence


class ServiceError(RuntimeError):
    """The server answered ``ok: false``; carries the error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceClient:
    """Line-JSON request/response over one TCP connection."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one op; return the response body or raise ServiceError."""
        self._writer.write(
            json.dumps({"op": op, **fields}).encode() + b"\n"
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        resp = json.loads(line)
        if not resp.get("ok"):
            err = resp.get("error", {})
            raise ServiceError(err.get("code", "unknown"),
                               err.get("message", "unknown error"))
        return resp

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- protocol ops ------------------------------------------------------------

    async def hello(self, tenant: str,
                    user: Optional[int] = None) -> Dict[str, object]:
        fields: Dict[str, object] = {"tenant": tenant}
        if user is not None:
            fields["user"] = user
        return await self.request("hello", **fields)

    async def submit(
        self, jobs: Sequence[Mapping[str, object]]
    ) -> Dict[str, object]:
        return await self.request("submit", jobs=list(jobs))

    async def drain(self) -> Dict[str, object]:
        return await self.request("drain")

    async def status(self) -> Dict[str, object]:
        return await self.request("status")

    async def metrics(self) -> Dict[str, object]:
        return await self.request("metrics")

    async def whatif(
        self, overrides: Mapping[str, object]
    ) -> Dict[str, object]:
        return await self.request("whatif", overrides=dict(overrides))

    async def result(self) -> Dict[str, object]:
        return await self.request("result")

    async def shutdown(self) -> Dict[str, object]:
        return await self.request("shutdown")
